//! A small, dependency-free, offline stand-in for the parts of `proptest`
//! this workspace uses: the [`proptest!`] macro, range/tuple/`prop_oneof!`/
//! `collection::vec` strategies with [`strategy::Strategy::prop_map`], and the
//! `prop_assert*` family.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic, no persistence file) and failing
//! cases are reported with their generated inputs but **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing: RNG, config, and the error type.
pub mod test_runner {
    use core::fmt;

    /// Deterministic RNG handed to strategies (xoshiro256++ style).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator from a seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed ^ 0x6a09e667f3bcc908;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Deterministic per-test seed from the test's name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::seed_from_u64(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// The failure reason.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (only `cases` is honoured here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! of nothing");
            let i = rng.usize_in(0, self.0.len());
            self.0[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size` elements (half-open range) drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.usize_in(self.size.start, self.size.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Uniform random choice between several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let mut inputs = ::std::string::String::new();
                    $(
                        let generated =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                        inputs.push_str(&format!(
                            concat!("  ", stringify!($arg), " = {:?}\n"),
                            &generated
                        ));
                        let $arg = generated;
                    )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in -5.0f64..5.0, (a, b) in (0i32..10, 0u32..4)) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((0..10).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![0i32..3, 10i32..13], 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in &v {
                prop_assert!((0..3).contains(x) || (10..13).contains(x), "x = {x}");
            }
        }
    }

    #[test]
    fn prop_assert_returns_err() {
        fn inner(x: i32) -> TestCaseResult {
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        }
        assert!(inner(5).is_err());
        assert!(inner(101).is_ok());
    }
}
