//! A tiny, dependency-free, offline stand-in for the parts of the `rand`
//! crate this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over `f64` and
//! integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! and deterministic, though the exact value sequence differs from the real
//! `rand::rngs::StdRng` (callers here only rely on determinism per seed,
//! never on specific values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Core random-number generation: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-level sampling helpers on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample a value of type `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(i32, u32, i64, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the real
    /// `StdRng`; same trait surface, different value sequence).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = r.gen_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&v));
            let w: f64 = r.gen_range(0.5..0.75);
            assert!((0.5..0.75).contains(&w));
            let i: i32 = r.gen_range(-4..4);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
