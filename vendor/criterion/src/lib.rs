//! A small, dependency-free, offline stand-in for the parts of `criterion`
//! this workspace's benches use: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs `sample_size` timed iterations (after one warm-up)
//! and prints the mean wall-clock time per iteration — no statistical
//! analysis, outlier detection, or report generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Measured throughput label attached to a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also forces lazy setup
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(full_name: &str, samples: usize, thr: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.last_mean;
    let rate = match thr {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {full_name:<60} {per_iter:>12.2?}/iter{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; warm-up is always one iteration.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; measurement is `sample_size` runs.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Runs a parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&id.id, self.sample_size, None, |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// No-op (reports print as they run).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput label.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{name}", self.name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn runs_groups() {
        benches();
    }
}
