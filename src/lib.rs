//! # streamhull
//!
//! A single-pass, small-space summary library for two-dimensional point
//! streams, implementing Hershberger & Suri, *"Adaptive sampling for
//! geometric problems over data streams"* (PODS 2004 / Computational
//! Geometry 39 (2008) 191–208).
//!
//! The headline structure is [`AdaptiveHull`]: it retains at most `2r + 1`
//! stream points yet keeps its convex hull within `O(D/r²)` of the true
//! convex hull of *everything seen*, where `D` is the diameter — provably
//! optimal, and an order of magnitude better than uniform direction
//! sampling at equal space. Updates cost `O(log r)` amortized for typical
//! streams.
//!
//! ## Quick start
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let mut hull = AdaptiveHull::with_r(32);
//! for i in 0..10_000 {
//!     let t = i as f64 * 0.01;
//!     hull.insert(Point2::new(16.0 * t.cos(), t.sin()));
//! }
//!
//! // ≤ 2r + 1 points stored, answers extremal queries about the stream:
//! assert!(hull.sample_size() <= 65);
//! let poly = hull.hull();
//! let (_, _, diameter) = streamhull::queries::diameter(&poly).unwrap();
//! assert!((diameter - 32.0).abs() < 0.05);
//! ```
//!
//! ## Crate map
//!
//! * [`geom`] — planar geometry substrate (robust predicates, hulls,
//!   calipers, tangent searches, polygon clipping);
//! * [`streamgen`] — synthetic stream workloads (the paper's disk / square
//!   / ellipse / changing-distribution experiments, plus adversarial ones);
//! * [`adaptive_hull`] — the summaries: exact, uniform, radial, frozen,
//!   and the static/streaming/fixed-budget adaptive samplers, with the §6
//!   query layer and error metrics.

pub use adaptive_hull;
pub use geom;
pub use streamgen;

pub use adaptive_hull::{metrics, queries, viz};
pub use adaptive_hull::{
    AdaptiveHull, AdaptiveHullConfig, ClusterHull, ClusterHullConfig, ExactHull,
    FixedBudgetAdaptiveHull, FrozenHull, HullSummary, NaiveUniformHull, RadialHull, UniformHull,
};
pub use geom::{ConvexPolygon, Point2, Vec2};

/// Everything most applications need.
pub mod prelude {
    pub use crate::{
        AdaptiveHull, AdaptiveHullConfig, ClusterHull, ClusterHullConfig, ConvexPolygon, ExactHull,
        FixedBudgetAdaptiveHull, FrozenHull, HullSummary, NaiveUniformHull, Point2, RadialHull,
        UniformHull, Vec2,
    };
    pub use adaptive_hull::queries::{MultiStreamTracker, PairEvent, PairState};
}
