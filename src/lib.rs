//! # streamhull
//!
//! A single-pass, small-space summary library for two-dimensional point
//! streams, implementing Hershberger & Suri, *"Adaptive sampling for
//! geometric problems over data streams"* (PODS 2004 / Computational
//! Geometry 39 (2008) 191–208).
//!
//! The headline structure is [`AdaptiveHull`]: it retains at most `2r + 1`
//! stream points yet keeps its convex hull within `O(D/r²)` of the true
//! convex hull of *everything seen*, where `D` is the diameter — provably
//! optimal, and an order of magnitude better than uniform direction
//! sampling at equal space. Updates cost `O(log r)` amortized for typical
//! streams.
//!
//! ## Quick start
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let mut hull = AdaptiveHull::with_r(32);
//! for i in 0..10_000 {
//!     let t = i as f64 * 0.01;
//!     hull.insert(Point2::new(16.0 * t.cos(), t.sin()));
//! }
//!
//! // ≤ 2r + 1 points stored, answers extremal queries about the stream:
//! assert!(hull.sample_size() <= 65);
//! let poly = hull.hull_ref(); // cached: repeated queries don't rebuild
//! let (_, _, diameter) = streamhull::queries::diameter(poly).unwrap();
//! assert!((diameter - 32.0).abs() < 0.05);
//! ```
//!
//! ## Any summary, chosen at runtime
//!
//! Every backend — exact, uniform (naive and searchable), radial, frozen,
//! adaptive (threshold- and budget-driven), cluster — implements the
//! object-safe [`HullSummary`] trait and is constructible through
//! [`SummaryBuilder`], so harnesses, services, and ablations drive all of
//! them through one code path:
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let kind: SummaryKind = "adaptive".parse().unwrap(); // e.g. from a CLI flag
//! let mut summary = SummaryBuilder::new(kind).with_r(32).build();
//! summary.insert_batch(&[Point2::new(0.0, 0.0), Point2::new(4.0, 3.0)]);
//! assert_eq!(summary.points_seen(), 2);
//! // The live guarantee, straight from the summary:
//! assert!(summary.error_bound().is_some());
//! ```
//!
//! ## Sharded ingestion and merging
//!
//! Every summary is [`Mergeable`]: shard a stream across workers or
//! gateways, summarise each shard independently (summaries are `Send +
//! Sync`), then merge at a collector. The merged hull's error against the
//! union stream is at most the sum of the shards' errors plus the
//! collector's own `O(D/r²)` bound — verified by the shard-merge property
//! tests.
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let builder = SummaryBuilder::new(SummaryKind::Adaptive).with_r(16);
//! let (mut a, mut b) = (builder.build_mergeable(), builder.build_mergeable());
//! a.insert_batch(&[Point2::new(0.0, 0.0), Point2::new(1.0, 2.0)]); // shard 1
//! b.insert_batch(&[Point2::new(5.0, 1.0), Point2::new(3.0, 4.0)]); // shard 2
//! a.merge_from(&b);
//! assert_eq!(a.points_seen(), 4);
//! ```
//!
//! ## Sliding windows: summaries that forget
//!
//! Production traffic mostly asks about the *recent* stream — "extent of
//! the last `N` points / last `T` seconds". [`WindowedSummary`] wraps any
//! backend in an exponential-histogram chain of buckets that expire as
//! the window slides; [`query_window`](WindowedSummary::query_window)
//! reports the window hull together with a composed error bound and an
//! explicit **staleness bound** (at most `stale_points` points older than
//! the window may be included — a window answer is approximate only at
//! its oldest edge, and the slack shrinks as you refine the chain):
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let mut w = SummaryBuilder::new(SummaryKind::Adaptive)
//!     .with_r(16)
//!     .windowed(WindowConfig::last_n(500).with_granularity(50));
//! for i in 0..5000 {
//!     let t = i as f64 * 0.02;
//!     w.insert(Point2::new(t.cos() + i as f64 * 0.01, t.sin()));
//! }
//! let ans = w.query_window();
//! assert!(ans.merged_points >= 500); // the whole window is covered …
//! assert!(ans.stale_points < 500);   // … plus bounded staleness
//! assert!(ans.error_bound().is_some());
//! ```
//!
//! Windows compose with sharding:
//! [`ShardedIngest::run_stream_windowed`] keeps one windowed summary per
//! shard on a shared clock and merges live buckets in deterministic shard
//! order at query time.
//!
//! ## Fault-tolerant ingestion
//!
//! [`SupervisedIngest`] wraps the sharded engine with per-shard
//! checkpointing (via the snapshot codec), fault detection (worker
//! panics, stalls, corrupt checkpoints, non-finite floods), and
//! checkpoint-replay recovery under a deterministic [`RetryPolicy`] —
//! when retries exhaust, the run completes *degraded* with an exact
//! [`RecoveryReport`] of what was lost instead of panicking. Faults are
//! injected deterministically through a [`FaultPlan`] so the whole chaos
//! matrix replays in CI:
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let pts: Vec<Point2> = (0..20_000)
//!     .map(|i| {
//!         let t = i as f64 * 0.01;
//!         Point2::new(t.cos() * 3.0, t.sin())
//!     })
//!     .collect();
//! let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Exact), 4);
//! let run = SupervisedIngest::new(engine)
//!     .with_checkpoint_interval(2048)
//!     .with_fault_plan(FaultPlan::new().crash(2, 6)) // deterministic chaos (chunk 6 -> shard 2)
//!     .run_stream(pts.iter().copied());
//! assert!(!run.is_degraded()); // recovered: bit-identical to fault-free
//! assert_eq!(run.report.total_retries(), 1);
//! ```
//!
//! ## Multi-tenant operation under a memory budget
//!
//! A service holds one summary per user or sensor — millions of them.
//! [`TenantEngine`] governs that fleet: per-tenant quotas and a global
//! byte budget (every summary reports
//! [`approx_bytes`](HullSummary::approx_bytes)), typed [`AdmissionError`]s
//! instead of panics, an explicit [`OverloadPolicy`] (reject / shed
//! oldest / degrade to a coarser backend with the error bound honestly
//! widened), idle-stream spill to snapshot envelopes with bit-exact
//! restore, per-tenant quarantine of corrupt spills, and an exact
//! [`PressureReport`] ledger — the resource-pressure mirror of
//! [`RecoveryReport`]:
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16))
//!     .with_budget_bytes(64 * 1024)
//!     .with_policy(OverloadPolicy::DegradeToCoarser);
//! let mut engine = TenantEngine::new(config);
//! for i in 0..200u64 {
//!     let pts: Vec<Point2> = (0..50)
//!         .map(|j| {
//!             let t = j as f64 * 0.13;
//!             Point2::new(i as f64 + t.cos(), t.sin())
//!         })
//!         .collect();
//!     engine.insert_batch(StreamId(i), &pts).unwrap(); // shedding/degrading engines never abort
//! }
//! let report = engine.pressure_report();
//! assert!(report.bytes_in_use <= 64 * 1024); // the budget holds at every call boundary
//! assert_eq!(report.points_seen, report.points_ingested + report.points_shed);
//! ```
//!
//! ## Observability
//!
//! [`Telemetry`] is a zero-dependency metrics registry — striped relaxed
//! counters, gauges, log-scale histograms, and a deterministic trace ring
//! — threaded through every engine above. Attach one handle and scrape a
//! consistent snapshot mid-run, as Prometheus text or JSON lines; a
//! detached handle ([`Telemetry::disabled`]) makes every instrument a
//! single-branch no-op, so uninstrumented hot paths pay nothing:
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let tel = Telemetry::new();
//! let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16))
//!     .with_telemetry(tel);
//! let mut engine = TenantEngine::new(config);
//! engine.insert(StreamId(1), Point2::new(1.0, 2.0)).unwrap();
//! let scrape = tel.scrape(); // exactly equals engine.pressure_report()
//! assert_eq!(
//!     scrape.counter_total("streamhull_tenant_points_ingested_total"),
//!     engine.pressure_report().points_ingested,
//! );
//! assert!(scrape.to_prometheus_text().contains("streamhull_tenant_points_ingested_total 1"));
//! ```
//!
//! ## Querying: the serving layer
//!
//! [`QueryEngine`] wraps a [`TenantEngine`] and answers dashboard-grade
//! analytics — width, diameter, farthest pair, directional extent — by
//! rotating calipers on each stream's cached hull. Every answer is an
//! [`Estimate`] whose interval `[lo, hi]` contains the exact-stream truth
//! (`lo` is the computed value — the sample hull sits *inside* the true
//! hull — and `hi` adds twice the summary's live error bound). Answers are
//! memoised under `(stream, hull generation, kind, quantized direction)`,
//! so ingestion invalidates the cache for free and a repeated query is one
//! hash lookup:
//!
//! ```
//! use streamhull::prelude::*;
//!
//! let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(32));
//! let mut q = QueryEngine::new(TenantEngine::new(config));
//! for i in 0..1000u64 {
//!     let t = i as f64 * 0.013;
//!     q.tenants_mut()
//!         .insert(StreamId(i % 4), Point2::new(8.0 * t.cos(), t.sin()))
//!         .unwrap();
//! }
//!
//! // Per-stream analytics with error bars:
//! let d = q.diameter(StreamId(0)).unwrap().unwrap();
//! assert!(d.estimate.lo <= d.estimate.value && d.estimate.value <= d.estimate.hi);
//! let w = q.width(StreamId(0)).unwrap();
//! assert!(w.value <= d.estimate.value, "width never exceeds diameter");
//! let pair = q.farthest_pair(StreamId(0)).unwrap().unwrap();
//! assert_eq!(pair.estimate.value, d.estimate.value);
//!
//! // The generation-keyed cache: a repeated query is a hit, and the
//! // answer is bit-identical to the fresh computation.
//! let again = q.diameter(StreamId(0)).unwrap().unwrap();
//! assert_eq!(again, d);
//! assert!(q.cache_stats().hits >= 1);
//!
//! // Fleet analytics: top-k by extent (bbox-pruned) and separation joins
//! // (bbox/incircle certificates before any exact polygon distance).
//! let top = q.top_k_extent(Vec2::new(1.0, 0.0), 2).unwrap();
//! assert_eq!(top.entries.len(), 2);
//! let join = q.separation_join(1.0).unwrap();
//! assert_eq!(join.pairs.len(), 6, "all four interleaved streams overlap");
//! ```
//!
//! ## Crate map
//!
//! * [`geom`] — planar geometry substrate (robust predicates, hulls,
//!   calipers, tangent searches, polygon clipping);
//! * [`streamgen`] — synthetic stream workloads (the paper's disk / square
//!   / ellipse / changing-distribution experiments, plus adversarial ones);
//! * [`adaptive_hull`] — the summaries: exact, uniform, radial, frozen,
//!   cluster, and the static/streaming/fixed-budget adaptive samplers,
//!   with the [`SummaryBuilder`] registry, the §6 query layer
//!   ([`queries`], including the backend-agnostic
//!   [`MultiStreamTracker`](queries::MultiStreamTracker)), and error
//!   metrics ([`metrics`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adaptive_hull;
pub use geom;
pub use streamgen;

pub use adaptive_hull::window::WindowedRun;
pub use adaptive_hull::{metrics, queries, recovery, snapshot, telemetry, tenant, viz, window};
pub use adaptive_hull::{
    AdaptiveHull, AdaptiveHullConfig, AdmissionError, CheckpointEnvelope, CheckpointedRun,
    ClusterHull, ClusterHullConfig, DetectedFault, Estimate, ExactHull, Fault, FaultEvent,
    FaultPlan, FixedBudgetAdaptiveHull, FrozenHull, HullCache, HullSummary, HullSummaryExt,
    JoinAnswer, JoinCertificate, JoinPair, Mergeable, NaiveUniformHull, NonFiniteInput,
    OverloadPolicy, PairAnswer, PressureAction, PressureEvent, PressureReport, QDir,
    QueryCacheStats, QueryEngine, QueryError, RadialHull, RecoveryAction, RecoveryReport,
    RetryPolicy, ShardCheckpoint, ShardHealth, ShardRun, ShardStats, ShardStatus, ShardedIngest,
    ShardedTenants, Snapshot, SnapshotError, StreamId, SummaryBuilder, SummaryKind,
    SupervisedIngest, SupervisedRun, SupervisedWindowedRun, Telemetry, TenantConfig, TenantEngine,
    TenantStats, Tier, TopKAnswer, TopKEntry, UniformHull, WindowAnswer, WindowConfig,
    WindowPolicy, WindowedSummary,
};
pub use adaptive_hull::{Counter, Gauge, Histogram, Scrape, Span, TraceEvent};
pub use geom::{ConvexPolygon, Point2, Vec2};

/// Everything most applications need.
pub mod prelude {
    pub use crate::{
        AdaptiveHull, AdaptiveHullConfig, AdmissionError, CheckpointedRun, ClusterHull,
        ClusterHullConfig, ConvexPolygon, Estimate, ExactHull, Fault, FaultPlan,
        FixedBudgetAdaptiveHull, FrozenHull, HullSummary, HullSummaryExt, JoinAnswer,
        JoinCertificate, JoinPair, Mergeable, NaiveUniformHull, NonFiniteInput, OverloadPolicy,
        PairAnswer, Point2, PressureAction, PressureEvent, PressureReport, QDir, QueryCacheStats,
        QueryEngine, QueryError, RadialHull, RecoveryReport, RetryPolicy, Scrape, ShardCheckpoint,
        ShardRun, ShardStats, ShardedIngest, ShardedTenants, Snapshot, SnapshotError, StreamId,
        SummaryBuilder, SummaryKind, SupervisedIngest, SupervisedRun, SupervisedWindowedRun,
        Telemetry, TenantConfig, TenantEngine, TenantStats, Tier, TopKAnswer, TopKEntry,
        UniformHull, Vec2, WindowAnswer, WindowConfig, WindowPolicy, WindowedRun, WindowedSummary,
    };
    pub use adaptive_hull::queries::{MultiStreamTracker, PairEvent, PairState};
}
