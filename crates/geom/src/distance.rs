//! Distance and separation between convex polygons (paper §6: "Linear
//! Separation", "Containment").

use crate::clip;
use crate::line::{Line, Segment};
use crate::point::{Point2, Vec2};
use crate::polygon::ConvexPolygon;

/// Result of a separation query between two convex polygons.
#[derive(Clone, Debug, PartialEq)]
pub enum Separation {
    /// The polygons are disjoint: minimum distance and a separating line
    /// (all of `a` on the negative side, all of `b` on the positive side).
    Separated {
        /// Minimum distance between the two polygons.
        distance: f64,
        /// A separating line placed halfway between the closest features.
        line: Line,
    },
    /// The polygons share at least one point; `witness` is a common point
    /// (a certificate of non-separation, cf. paper §6).
    Intersecting {
        /// A point contained in both polygons.
        witness: Point2,
    },
}

impl Separation {
    /// Minimum distance (0 when intersecting).
    pub fn distance(&self) -> f64 {
        match self {
            Separation::Separated { distance, .. } => *distance,
            Separation::Intersecting { .. } => 0.0,
        }
    }

    /// `true` iff the polygons are linearly separable (disjoint).
    pub fn is_separated(&self) -> bool {
        matches!(self, Separation::Separated { .. })
    }
}

/// Minimum distance between two convex polygons, `O(n·m)` over boundary
/// feature pairs (plus an exact intersection test). The summaries keep
/// `O(r)` vertices so this is plenty fast; an `O(n + m)` rotating-caliper
/// variant would change nothing observable for the library's workloads.
///
/// Returns `None` when either polygon is empty.
pub fn separation(a: &ConvexPolygon, b: &ConvexPolygon) -> Option<Separation> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    // Intersection (including containment and touching) first.
    let common = clip::intersect(a, b);
    if !common.is_empty() {
        let witness = common.centroid().unwrap_or(common.vertex(0));
        return Some(Separation::Intersecting { witness });
    }

    // Disjoint: the closest pair of points lies on the boundaries; scan
    // segment pairs (degenerate polygons contribute their points/segments).
    let segs = |p: &ConvexPolygon| -> Vec<Segment> {
        match p.len() {
            0 => vec![],
            1 => vec![Segment::new(p.vertex(0), p.vertex(0))],
            2 => vec![Segment::new(p.vertex(0), p.vertex(1))],
            _ => p.edges().map(|(s, t)| Segment::new(s, t)).collect(),
        }
    };
    let ea = segs(a);
    let eb = segs(b);
    let mut best = f64::INFINITY;
    let mut pa = ea[0].a;
    let mut pb = eb[0].a;
    for sa in &ea {
        for sb in &eb {
            // Closest points between two segments via the four
            // point-segment projections (segments are disjoint here).
            for (p, s, a_side) in [
                (sb.closest_point(sa.a), sa.a, true),
                (sb.closest_point(sa.b), sa.b, true),
                (sa.closest_point(sb.a), sb.a, false),
                (sa.closest_point(sb.b), sb.b, false),
            ] {
                let d = p.distance(s);
                if d < best {
                    best = d;
                    if a_side {
                        pa = s;
                        pb = p;
                    } else {
                        pa = p;
                        pb = s;
                    }
                }
            }
        }
    }
    // Separating line: perpendicular bisector direction of the closest pair.
    let dir = (pb - pa).normalized().unwrap_or(Vec2::new(1.0, 0.0));
    let mid = pa.midpoint(pb);
    Some(Separation::Separated {
        distance: best,
        line: Line::supporting(mid, dir),
    })
}

/// Minimum distance between two convex polygons (0 when intersecting,
/// infinite when either is empty).
pub fn min_distance(a: &ConvexPolygon, b: &ConvexPolygon) -> f64 {
    match separation(a, b) {
        None => f64::INFINITY,
        Some(s) => s.distance(),
    }
}

/// `true` iff `inner` lies entirely inside `outer` (boundary allowed):
/// the "surrounded by" predicate of the paper's introduction.
pub fn contains_polygon(outer: &ConvexPolygon, inner: &ConvexPolygon) -> bool {
    if inner.is_empty() {
        return true;
    }
    inner
        .vertices()
        .iter()
        .all(|&v| crate::locate::contains(outer, v))
}

/// How far `inner` sticks out of `outer`: the maximum distance from a vertex
/// of `inner` to `outer` (0 when contained). This is the natural "containment
/// margin" for approximate hulls with `O(D/r²)` error.
pub fn containment_violation(outer: &ConvexPolygon, inner: &ConvexPolygon) -> f64 {
    inner
        .vertices()
        .iter()
        .map(|&v| outer.distance_to_point(v))
        .fold(0.0, f64::max)
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn square(x0: f64, y0: f64, s: f64) -> ConvexPolygon {
        ConvexPolygon::from_ccw(vec![
            p(x0, y0),
            p(x0 + s, y0),
            p(x0 + s, y0 + s),
            p(x0, y0 + s),
        ])
        .unwrap()
    }

    #[test]
    fn parallel_squares() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(3.0, 0.0, 1.0);
        let s = separation(&a, &b).unwrap();
        assert!(s.is_separated());
        assert!((s.distance() - 2.0).abs() < 1e-12);
        if let Separation::Separated { line, .. } = &s {
            // All of a strictly negative side, all of b strictly positive.
            for &v in a.vertices() {
                assert!(line.signed_distance(v) < 0.0);
            }
            for &v in b.vertices() {
                assert!(line.signed_distance(v) > 0.0);
            }
        }
    }

    #[test]
    fn corner_to_corner() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(2.0, 2.0, 1.0);
        let d = min_distance(&a, &b);
        assert!((d - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn intersecting_and_nested() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let s = separation(&a, &b).unwrap();
        assert!(!s.is_separated());
        assert_eq!(s.distance(), 0.0);
        if let Separation::Intersecting { witness } = s {
            assert!(a.contains_linear(witness));
            assert!(b.contains_linear(witness));
        }
        let inner = square(0.5, 0.5, 0.5);
        assert_eq!(min_distance(&a, &inner), 0.0);
    }

    #[test]
    fn touching_is_not_separated() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 0.0, 1.0);
        let s = separation(&a, &b).unwrap();
        assert!(!s.is_separated(), "shared edge means no strict separation");
    }

    #[test]
    fn point_and_segment_polygons() {
        let a = ConvexPolygon::hull_of(&[p(0.0, 0.0)]);
        let b = ConvexPolygon::hull_of(&[p(3.0, 4.0)]);
        assert!((min_distance(&a, &b) - 5.0).abs() < 1e-12);
        let seg = ConvexPolygon::hull_of(&[p(0.0, 1.0), p(10.0, 1.0)]);
        assert!((min_distance(&a, &seg) - 1.0).abs() < 1e-12);
        assert_eq!(min_distance(&ConvexPolygon::empty(), &a), f64::INFINITY);
    }

    #[test]
    fn containment_predicates() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(2.0, 2.0, 3.0);
        assert!(contains_polygon(&outer, &inner));
        assert!(!contains_polygon(&inner, &outer));
        assert_eq!(containment_violation(&outer, &inner), 0.0);
        let poking = square(8.0, 8.0, 4.0);
        assert!(!contains_polygon(&outer, &poking));
        let v = containment_violation(&outer, &poking);
        assert!(
            (v - 2.0f64.sqrt() * 2.0).abs() < 1e-12,
            "corner (12,12) is 2*sqrt2 out"
        );
        assert!(contains_polygon(&outer, &ConvexPolygon::empty()));
    }

    #[test]
    fn distance_symmetry() {
        let mut seed = 5u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..30 {
            let a = ConvexPolygon::hull_of(
                &(0..8)
                    .map(|_| p(next() * 3.0, next() * 3.0))
                    .collect::<Vec<_>>(),
            );
            let b = ConvexPolygon::hull_of(
                &(0..8)
                    .map(|_| p(next() * 3.0 + 5.0, next() * 3.0))
                    .collect::<Vec<_>>(),
            );
            let dab = min_distance(&a, &b);
            let dba = min_distance(&b, &a);
            assert!((dab - dba).abs() < 1e-9);
            assert!(dab > 0.0, "x-ranges are disjoint by construction");
            // Sanity lower bound: gap between x-extents.
            let ax = a
                .vertices()
                .iter()
                .map(|v| v.x)
                .fold(f64::NEG_INFINITY, f64::max);
            let bx = b
                .vertices()
                .iter()
                .map(|v| v.x)
                .fold(f64::INFINITY, f64::min);
            assert!(dab >= (bx - ax) - 1e-9 || bx < ax);
        }
    }
}
