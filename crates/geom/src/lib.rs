//! # sh-geom — planar geometry substrate for `streamhull`
//!
//! Self-contained 2-D computational geometry with the exact pieces the
//! Hershberger–Suri stream summaries need:
//!
//! * [`point`] — points and vectors;
//! * [`predicates`] / [`expansion`] — exact orientation tests with a
//!   floating-point filter and Shewchuk-style expansion fallback;
//! * [`dyadic`] — exact integer arithmetic on bisection sample directions;
//! * [`hull`] / [`polygon`] — static hulls and the validated
//!   validated [`polygon::ConvexPolygon`] type;
//! * [`locate`] / [`tangent`] — the `O(log n)` searches behind the paper's
//!   per-point cost;
//! * [`line`](mod@line) — segments, supporting lines, uncertainty triangles (§2);
//! * [`calipers`] / [`clip`] / [`distance`] — the extremal queries (§6).
//!
//! Everything is deterministic and allocation-light; no external geometry
//! crates are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calipers;
pub mod circle;
pub mod clip;
pub mod distance;
pub mod dyadic;
pub mod expansion;
pub mod hull;
pub mod line;
pub mod locate;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod tangent;

pub use circle::{min_enclosing_circle, Circle};
pub use dyadic::{Dir, DirGrid, DirRange};
pub use line::{Line, Segment, UncertaintyTriangle};
pub use point::{Point2, Vec2};
pub use polygon::ConvexPolygon;
pub use predicates::{orient2d, orient2d_sign, Orientation};
