//! Lines, segments, and the distance/intersection computations the hull
//! summaries need (supporting lines, uncertainty-triangle apexes,
//! point-to-segment distances).

use crate::point::{Point2, Vec2};

/// A line in implicit normal form: all `x` with `x · normal == offset`.
///
/// For a *supporting line* of a point set in direction `θ`, `normal` is the
/// unit vector of `θ` and `offset` is the support value — every point of the
/// set satisfies `x · normal <= offset`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line {
    /// Line normal (need not be unit length unless stated).
    pub normal: Vec2,
    /// Offset such that the line is `{x : x·normal = offset}`.
    pub offset: f64,
}

impl Line {
    /// The supporting line through `p` with outward normal `normal`.
    #[inline]
    pub fn supporting(p: Point2, normal: Vec2) -> Line {
        Line {
            normal,
            offset: p.dot(normal),
        }
    }

    /// Line through two distinct points, with the normal pointing to the
    /// *left* of the direction `a -> b`.
    pub fn through(a: Point2, b: Point2) -> Line {
        let n = (b - a).perp();
        Line {
            normal: n,
            offset: a.dot(n),
        }
    }

    /// Signed distance from `p` to the line, positive on the normal side,
    /// in units of `|normal|` (true distance when the normal is unit).
    #[inline]
    pub fn signed_distance(&self, p: Point2) -> f64 {
        (p.dot(self.normal) - self.offset) / self.normal.norm()
    }

    /// How far `p` violates the half-plane `{x·normal <= offset}` (0 when
    /// inside), in true distance units.
    #[inline]
    pub fn violation(&self, p: Point2) -> f64 {
        self.signed_distance(p).max(0.0)
    }

    /// Intersection point of two lines, or `None` if (nearly) parallel.
    ///
    /// "Nearly" means the determinant of the normals is smaller than
    /// `eps · |n1| · |n2|` — callers that need exact parallelism tests should
    /// use the predicates module instead; the summaries only use this for
    /// uncertainty-triangle apexes where a far-away apex is handled by the
    /// caller.
    pub fn intersect(&self, other: &Line) -> Option<Point2> {
        let det = self.normal.cross(other.normal);
        let scale = self.normal.norm() * other.normal.norm();
        if det.abs() <= 1e-14 * scale {
            return None;
        }
        // Solve [n1; n2] x = [o1; o2] by Cramer's rule.
        let x = (self.offset * other.normal.y - other.offset * self.normal.y) / det;
        let y = (self.normal.x * other.offset - other.normal.x * self.offset) / det;
        let p = Point2::new(x, y);
        p.is_finite().then_some(p)
    }

    /// Translates the line by `delta` along its (unit-scaled) normal.
    #[inline]
    pub fn translated(&self, delta: f64) -> Line {
        Line {
            normal: self.normal,
            offset: self.offset + delta * self.normal.norm(),
        }
    }
}

/// A closed segment between two points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point2,
    /// Second endpoint.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(a: Point2, b: Point2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point2 {
        self.a.midpoint(self.b)
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point2) -> Point2 {
        let d = self.b - self.a;
        let len2 = d.norm_sq();
        if crate::predicates::degenerate_norm(len2) {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len2).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Euclidean distance from `p` to the segment.
    #[inline]
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// Minimum distance between two segments (0 if they intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.distance_to_point(other.a)
            .min(self.distance_to_point(other.b))
            .min(other.distance_to_point(self.a))
            .min(other.distance_to_point(self.b))
    }

    /// Exact test: do the two closed segments share a point?
    pub fn intersects(&self, other: &Segment) -> bool {
        use crate::predicates::{on_segment, orient2d_sign};
        use core::cmp::Ordering::Equal;
        let (p1, p2, p3, p4) = (self.a, self.b, other.a, other.b);
        let d1 = orient2d_sign(p3, p4, p1);
        let d2 = orient2d_sign(p3, p4, p2);
        let d3 = orient2d_sign(p1, p2, p3);
        let d4 = orient2d_sign(p1, p2, p4);
        if d1 != Equal && d2 != Equal && d3 != Equal && d4 != Equal {
            return d1 != d2 && d3 != d4;
        }
        (d1 == Equal && on_segment(p3, p4, p1))
            || (d2 == Equal && on_segment(p3, p4, p2))
            || (d3 == Equal && on_segment(p1, p2, p3))
            || (d4 == Equal && on_segment(p1, p2, p4))
    }
}

/// The *uncertainty triangle* of a sampled-hull edge (paper §2).
///
/// For an edge `a -> b` whose endpoints are extreme in directions with unit
/// normals `na` (at `a`) and `nb` (at `b`), the triangle is bounded by the
/// segment `ab` and the two supporting lines. All true-hull vertices hidden
/// by the edge lie inside it.
#[derive(Clone, Copy, Debug)]
pub struct UncertaintyTriangle {
    /// The sampled edge.
    pub base: Segment,
    /// Apex: intersection of the two supporting lines (`None` when the edge
    /// is degenerate or the supporting lines are parallel/divergent).
    pub apex: Option<Point2>,
}

impl UncertaintyTriangle {
    /// Builds the uncertainty triangle for edge `(a, b)` with outward unit
    /// normals `na`, `nb` at the endpoints.
    ///
    /// When the apex would fall on the inner side of `ab` (possible with a
    /// degenerate edge or numerically inconsistent inputs) the apex is
    /// clamped to `None`, making the triangle trivially flat.
    pub fn new(a: Point2, b: Point2, na: Vec2, nb: Vec2) -> Self {
        let base = Segment::new(a, b);
        if a == b {
            return UncertaintyTriangle { base, apex: None };
        }
        let la = Line::supporting(a, na);
        let lb = Line::supporting(b, nb);
        let apex = la.intersect(&lb).filter(|&t| {
            // Keep only apexes on the outer (left-of-ab in ccw hulls or
            // right) side — i.e. strictly off the base on the side the
            // normals point to. We accept either side here and let the
            // height computation measure the bulge; reject only
            // non-finite/absurd intersections.
            t.is_finite()
        });
        UncertaintyTriangle { base, apex }
    }

    /// Height of the triangle: max distance from the apex to the base
    /// segment. Zero for flat/degenerate triangles.
    pub fn height(&self) -> f64 {
        match self.apex {
            Some(t) => self.base.distance_to_point(t),
            None => 0.0,
        }
    }

    /// Total length of the two non-base sides (`ℓ̃(e)` in the paper), used
    /// by the sample-weight function. Falls back to the base length when the
    /// apex is missing.
    pub fn slant_length(&self) -> f64 {
        match self.apex {
            Some(t) => self.base.a.distance(t) + t.distance(self.base.b),
            None => self.base.length(),
        }
    }

    /// `true` iff `p` lies inside the triangle region between the base and
    /// the two slant sides (closed). Flat triangles contain only base points.
    pub fn contains(&self, p: Point2) -> bool {
        use crate::predicates::{on_segment, orient2d_sign};
        let (a, b) = (self.base.a, self.base.b);
        match self.apex {
            None => on_segment(a, b, p),
            Some(t) => {
                // Triangle a, b, t — orientation-agnostic containment.
                let s1 = orient2d_sign(a, b, p);
                let s2 = orient2d_sign(b, t, p);
                let s3 = orient2d_sign(t, a, p);
                use core::cmp::Ordering::*;
                let has_pos = [s1, s2, s3].contains(&Greater);
                let has_neg = [s1, s2, s3].contains(&Less);
                !(has_pos && has_neg)
            }
        }
    }
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use core::f64::consts::FRAC_PI_4;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn supporting_line_contains_point() {
        let n = Vec2::from_angle(1.1);
        let q = p(3.0, -2.0);
        let l = Line::supporting(q, n);
        assert!(l.signed_distance(q).abs() < 1e-12);
        // Points further along the normal violate; opposite side does not.
        assert!(l.signed_distance(q + n) > 0.9);
        assert!(l.violation(q - n) == 0.0);
    }

    #[test]
    fn line_through_two_points() {
        let l = Line::through(p(0.0, 0.0), p(2.0, 0.0));
        // Normal points left of a->b, i.e. +y.
        assert!(l.signed_distance(p(1.0, 1.0)) > 0.0);
        assert!(l.signed_distance(p(1.0, -1.0)) < 0.0);
        assert!(l.signed_distance(p(5.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn intersect_basic_and_parallel() {
        let l1 = Line::supporting(p(0.0, 0.0), Vec2::new(1.0, 0.0));
        let l2 = Line::supporting(p(0.0, 0.0), Vec2::new(0.0, 1.0));
        assert_eq!(l1.intersect(&l2), Some(p(0.0, 0.0)));
        let l3 = Line::supporting(p(1.0, 5.0), Vec2::new(1.0, 0.0));
        assert_eq!(l1.intersect(&l3), None, "parallel lines");
    }

    #[test]
    fn translated_moves_along_normal() {
        let l = Line::supporting(p(0.0, 0.0), Vec2::new(0.0, 2.0)); // non-unit normal
        let l2 = l.translated(1.5);
        assert!((l2.signed_distance(p(7.0, 1.5))).abs() < 1e-12);
    }

    #[test]
    fn segment_distance() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert_eq!(s.distance_to_point(p(2.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(p(-3.0, 4.0)), 5.0);
        assert_eq!(s.distance_to_point(p(7.0, 4.0)), 5.0);
        assert_eq!(s.closest_point(p(2.0, 3.0)), p(2.0, 0.0));
        // Degenerate segment.
        let d = Segment::new(p(1.0, 1.0), p(1.0, 1.0));
        assert_eq!(d.distance_to_point(p(4.0, 5.0)), 5.0);
    }

    #[test]
    fn segment_intersection() {
        let s1 = Segment::new(p(0.0, 0.0), p(4.0, 4.0));
        let s2 = Segment::new(p(0.0, 4.0), p(4.0, 0.0));
        assert!(s1.intersects(&s2));
        let s3 = Segment::new(p(5.0, 5.0), p(6.0, 6.0));
        assert!(!s1.intersects(&s3), "collinear, disjoint");
        let s4 = Segment::new(p(4.0, 4.0), p(6.0, 6.0));
        assert!(s1.intersects(&s4), "touching at an endpoint");
        assert_eq!(s1.distance_to_segment(&s2), 0.0);
        assert!((s1.distance_to_segment(&s3) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn uncertainty_triangle_symmetric_case() {
        // Edge from (-1,0) to (1,0), normals at +/-45 degrees from +y:
        // apex at (0,1), height 1.
        let a = p(-1.0, 0.0);
        let b = p(1.0, 0.0);
        let na = Vec2::from_angle(FRAC_PI_4 * 3.0); // up-left
        let nb = Vec2::from_angle(FRAC_PI_4); // up-right
        let t = UncertaintyTriangle::new(a, b, na, nb);
        let apex = t.apex.unwrap();
        assert!(apex.distance(p(0.0, 1.0)) < 1e-12);
        assert!((t.height() - 1.0).abs() < 1e-12);
        assert!((t.slant_length() - 2.0 * 2.0f64.sqrt()).abs() < 1e-12);
        assert!(t.contains(p(0.0, 0.5)));
        assert!(t.contains(a) && t.contains(b));
        assert!(!t.contains(p(0.0, 1.5)));
        assert!(!t.contains(p(0.0, -0.1)));
    }

    #[test]
    fn uncertainty_triangle_formula_matches_paper() {
        // Paper Eq. (1): height <= len(pq) * tan(theta/2) when the two
        // supporting-line angles split theta evenly.
        let theta: f64 = 0.3;
        let a = p(0.0, 0.0);
        let b = p(2.0, 0.0);
        let na = Vec2::from_angle(core::f64::consts::FRAC_PI_2 + theta / 2.0);
        let nb = Vec2::from_angle(core::f64::consts::FRAC_PI_2 - theta / 2.0);
        let t = UncertaintyTriangle::new(a, b, na, nb);
        let expect = 1.0 * (theta / 2.0).tan(); // half-length * tan(theta/2)
        assert!(
            (t.height() - expect).abs() < 1e-12,
            "{} vs {}",
            t.height(),
            expect
        );
    }

    #[test]
    fn degenerate_uncertainty_triangle() {
        let a = p(1.0, 1.0);
        let t = UncertaintyTriangle::new(a, a, Vec2::new(0.0, 1.0), Vec2::new(1.0, 0.0));
        assert_eq!(t.height(), 0.0);
        assert_eq!(t.slant_length(), 0.0);
        assert!(t.contains(a));
        assert!(!t.contains(p(1.0, 1.1)));
    }

    #[test]
    fn parallel_supporting_lines_give_flat_triangle() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        let n = Vec2::new(0.0, 1.0);
        let t = UncertaintyTriangle::new(a, b, n, n);
        assert!(t.apex.is_none());
        assert_eq!(t.height(), 0.0);
        assert_eq!(t.slant_length(), 1.0);
    }
}
