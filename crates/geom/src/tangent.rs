//! Tangents from an exterior point to a convex polygon, and the *visible
//! chain* they delimit.
//!
//! When a new stream point `q` falls outside the current sampled hull, the
//! hull update replaces the chain of vertices visible from `q` by `q`
//! itself (paper §3.1, Fig. 5). [`visible_chain`] computes that chain in
//! `O(log n)` expected (fan point-location + galloping + two binary
//! searches), with an `O(n)` reference implementation
//! ([`visible_chain_linear`]) used for cross-validation and as a safety
//! fallback in pathological wrap-around cases.

use crate::point::Point2;
use crate::polygon::ConvexPolygon;
use crate::predicates::orient2d_sign;
use core::cmp::Ordering;

/// The contiguous run of edges of a convex polygon visible from an exterior
/// point `q`, described by its bounding vertices.
///
/// Walking counterclockwise, the visible run starts at vertex `start` and
/// ends at vertex `end`: edges `start, start+1, ..., end-1` (cyclic indices)
/// are *weakly visible* from `q` (i.e. `q` is not strictly left of them),
/// and inserting `q` into the hull replaces the open chain strictly between
/// `start` and `end` with `q`. `start` and `end` are the tangent vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VisibleChain {
    /// First tangent vertex (kept in the new hull).
    pub start: usize,
    /// Second tangent vertex (kept in the new hull).
    pub end: usize,
}

#[inline]
fn weakly_visible(v: &[Point2], i: usize, q: Point2) -> bool {
    let n = v.len();
    orient2d_sign(v[i % n], v[(i + 1) % n], q) != Ordering::Greater
}

#[inline]
fn strictly_visible(v: &[Point2], i: usize, q: Point2) -> bool {
    let n = v.len();
    orient2d_sign(v[i % n], v[(i + 1) % n], q) == Ordering::Less
}

/// Reference `O(n)` implementation of [`visible_chain`].
///
/// Returns `None` when `q` is (weakly) inside the polygon, when the polygon
/// has fewer than 3 vertices, or when no edge is strictly visible (which
/// cannot happen for a strictly exterior point and a valid polygon).
pub fn visible_chain_linear(poly: &ConvexPolygon, q: Point2) -> Option<VisibleChain> {
    let v = poly.vertices();
    let n = v.len();
    if n < 3 || poly.contains_linear(q) {
        return None;
    }
    // Find a strictly visible edge, then expand to the weakly visible run.
    let m = (0..n).find(|&i| strictly_visible(v, i, q))?;
    let mut start = m;
    while weakly_visible(v, (start + n - 1) % n, q) {
        start = (start + n - 1) % n;
        debug_assert_ne!(start, m, "all edges visible — invalid polygon");
    }
    let mut last = m;
    while weakly_visible(v, (last + 1) % n, q) {
        last = (last + 1) % n;
    }
    Some(VisibleChain {
        start,
        end: (last + 1) % n,
    })
}

/// Visible chain from exterior point `q`, `O(log n)` expected.
///
/// Same contract as [`visible_chain_linear`] (and tested equal to it).
pub fn visible_chain(poly: &ConvexPolygon, q: Point2) -> Option<VisibleChain> {
    let v = poly.vertices();
    let n = v.len();
    if n < 3 {
        return None;
    }

    // --- Locate a strictly visible edge (or detect containment) by fan
    // binary search around v[0]. ---
    let m: usize = match orient2d_sign(v[0], v[1], q) {
        Ordering::Less => 0, // edge (v0, v1) strictly visible
        Ordering::Equal => {
            if crate::predicates::on_segment(v[0], v[1], q) {
                return None; // on the boundary counts as inside
            }
            // Collinear beyond edge 0: one of the neighbouring edges must be
            // strictly visible.
            if strictly_visible(v, n - 1, q) {
                n - 1
            } else if strictly_visible(v, 1, q) {
                1
            } else {
                return None;
            }
        }
        Ordering::Greater => match orient2d_sign(v[0], v[n - 1], q) {
            Ordering::Greater => n - 1, // edge (v_{n-1}, v0) strictly visible
            Ordering::Equal => {
                if crate::predicates::on_segment(v[0], v[n - 1], q) {
                    return None;
                }
                if strictly_visible(v, n - 2, q) {
                    n - 2
                } else if strictly_visible(v, 0, q) {
                    0
                } else {
                    return None;
                }
            }
            Ordering::Less => {
                // q inside the fan: binary search its wedge.
                let mut lo = 1usize;
                let mut hi = n - 1;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if orient2d_sign(v[0], v[mid], q) != Ordering::Less {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                if orient2d_sign(v[lo], v[hi], q) != Ordering::Less {
                    return None; // inside the polygon
                }
                lo
            }
        },
    };
    debug_assert!(strictly_visible(v, m, q));

    // --- Find an invisible edge by galloping forward from m. The weakly
    // visible edges form one contiguous cyclic run containing m, so the
    // first invisible probe bounds it; if galloping wraps without finding
    // one (possible only when the invisible run is very short), fall back to
    // the linear reference. ---
    let mut step = 1usize;
    let mut u = None;
    while step < 2 * n {
        let cand = (m + step) % n;
        if !weakly_visible(v, cand, q) {
            u = Some(cand);
            break;
        }
        step *= 2;
    }
    let u = match u {
        Some(u) => u,
        None => return visible_chain_linear(poly, q),
    };

    // --- Binary search the two visibility boundaries. Walking ccw from m
    // towards u, edges go visible -> invisible exactly once; walking ccw
    // from u towards m (+n), they go invisible -> visible exactly once. ---
    let dist = |a: usize, b: usize| (b + n - a) % n; // ccw steps a -> b

    // Last weakly visible edge in [m, u): binary search on t in
    // [0, dist(m, u)) where pred(t) = visible(m + t).
    let (mut lo, mut hi) = (0usize, dist(m, u));
    // invariant: visible(m + lo), !visible(m + hi)
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if weakly_visible(v, (m + mid) % n, q) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let last_visible = (m + lo) % n;

    // First weakly visible edge in (u, m]: binary search on t in
    // (0, dist(u, m)] where pred(t) = visible(u + t); find smallest true.
    let (mut lo2, mut hi2) = (0usize, dist(u, m));
    // invariant: !visible(u + lo2), visible(u + hi2)
    while hi2 - lo2 > 1 {
        let mid = (lo2 + hi2) / 2;
        if weakly_visible(v, (u + mid) % n, q) {
            hi2 = mid;
        } else {
            lo2 = mid;
        }
    }
    let first_visible = (u + hi2) % n;

    Some(VisibleChain {
        start: first_visible,
        end: (last_visible + 1) % n,
    })
}

/// Tangent vertices from exterior `q`: `(right, left)` such that the whole
/// polygon lies left of `q -> right` and right of `q -> left`. Thin wrapper
/// over [`visible_chain`]; `None` when `q` is inside or the polygon is
/// degenerate.
pub fn tangent_vertices(poly: &ConvexPolygon, q: Point2) -> Option<(usize, usize)> {
    visible_chain(poly, q).map(|c| (c.start, c.end))
}

/// Inserts `q` into the hull represented by `poly`, returning the new hull.
/// Falls back to a full hull computation for degenerate polygons. Intended
/// for moderate sizes (the summaries keep `O(r)` vertices).
pub fn insert_point(poly: &ConvexPolygon, q: Point2) -> ConvexPolygon {
    let v = poly.vertices();
    let n = v.len();
    if n < 3 {
        let mut pts = v.to_vec();
        pts.push(q);
        return ConvexPolygon::hull_of(&pts);
    }
    match visible_chain(poly, q) {
        None => poly.clone(),
        Some(VisibleChain { start, end }) => {
            // Keep v[end], ..., v[start] (ccw through the invisible side),
            // then q.
            let mut out = Vec::with_capacity(n + 1);
            let mut i = end;
            loop {
                out.push(v[i]);
                if i == start {
                    break;
                }
                i = (i + 1) % n;
            }
            out.push(q);
            crate::hull::canonicalize_ccw(&mut out);
            ConvexPolygon::from_ccw_unchecked(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Vec2;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn regular_ngon(n: usize, radius: f64) -> ConvexPolygon {
        let verts: Vec<Point2> = (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / n as f64;
                p(radius * t.cos(), radius * t.sin())
            })
            .collect();
        ConvexPolygon::from_ccw(verts).unwrap()
    }

    #[test]
    fn square_cardinal_directions() {
        let sq = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)])
            .unwrap();
        // Point to the right: sees edge 1 only; tangents at v1=(2,0), v2=(2,2).
        let c = visible_chain(&sq, p(5.0, 1.0)).unwrap();
        assert_eq!(c, VisibleChain { start: 1, end: 2 });
        // Point below: sees edge 0.
        let c = visible_chain(&sq, p(1.0, -3.0)).unwrap();
        assert_eq!(c, VisibleChain { start: 0, end: 1 });
        // Corner region: sees edges 1 and 2.
        let c = visible_chain(&sq, p(5.0, 5.0)).unwrap();
        assert_eq!(c, VisibleChain { start: 1, end: 3 });
        // Inside: none.
        assert_eq!(visible_chain(&sq, p(1.0, 1.0)), None);
        // On boundary: none.
        assert_eq!(visible_chain(&sq, p(1.0, 0.0)), None);
        assert_eq!(visible_chain(&sq, p(0.0, 0.0)), None);
    }

    #[test]
    fn collinear_beyond_edge() {
        let sq = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)])
            .unwrap();
        // q collinear with bottom edge, beyond v1: bottom edge is weakly
        // visible, right edge strictly visible.
        let c = visible_chain(&sq, p(5.0, 0.0)).unwrap();
        assert_eq!(c, VisibleChain { start: 0, end: 2 });
        let lin = visible_chain_linear(&sq, p(5.0, 0.0)).unwrap();
        assert_eq!(c, lin);
        // Beyond v0 going the other way.
        let c = visible_chain(&sq, p(-5.0, 0.0)).unwrap();
        let lin = visible_chain_linear(&sq, p(-5.0, 0.0)).unwrap();
        assert_eq!(c, lin);
    }

    #[test]
    fn fast_matches_linear_on_random_points() {
        let mut seed = 0xdeadbeefu64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for &n in &[3usize, 4, 5, 7, 16, 33, 128] {
            let poly = regular_ngon(n, 1.0);
            for _ in 0..500 {
                let q = p(next() * 6.0 - 3.0, next() * 6.0 - 3.0);
                let fast = visible_chain(&poly, q);
                let lin = visible_chain_linear(&poly, q);
                assert_eq!(fast, lin, "n={n} q={q:?}");
            }
        }
    }

    #[test]
    fn tangent_lines_have_polygon_on_one_side() {
        let poly = regular_ngon(31, 2.0);
        for k in 0..64 {
            let theta = core::f64::consts::TAU * k as f64 / 64.0;
            let q = Point2::ORIGIN + Vec2::from_angle(theta) * 5.0;
            let (start, end) = tangent_vertices(&poly, q).unwrap();
            let vs = poly.vertex(start);
            let ve = poly.vertex(end);
            // The whole polygon lies weakly right of q->v_start and weakly
            // left of q->v_end (start/end delimit the visible chain walking
            // ccw).
            for &w in poly.vertices() {
                assert_ne!(
                    orient2d_sign(q, vs, w),
                    Ordering::Greater,
                    "start tangent, w={w:?}"
                );
                assert_ne!(
                    orient2d_sign(q, ve, w),
                    Ordering::Less,
                    "end tangent, w={w:?}"
                );
            }
        }
    }

    #[test]
    fn insert_point_grows_hull_correctly() {
        let mut poly = ConvexPolygon::hull_of(&[p(0.0, 0.0), p(1.0, 0.0), p(0.5, 1.0)]);
        let stream = [
            p(2.0, 0.5),
            p(-1.0, 0.5),
            p(0.5, -1.0),
            p(0.5, 2.0),
            p(0.5, 0.5), // interior, no-op
            p(3.0, 3.0),
        ];
        let mut all: Vec<Point2> = poly.vertices().to_vec();
        for &q in &stream {
            poly = insert_point(&poly, q);
            all.push(q);
            let want = ConvexPolygon::hull_of(&all);
            assert_eq!(poly.vertices(), want.vertices(), "after inserting {q:?}");
        }
    }

    #[test]
    fn insert_into_degenerate() {
        let empty = ConvexPolygon::empty();
        let one = insert_point(&empty, p(0.0, 0.0));
        assert_eq!(one.len(), 1);
        let seg = insert_point(&one, p(1.0, 0.0));
        assert_eq!(seg.len(), 2);
        let dup = insert_point(&seg, p(0.5, 0.0));
        assert_eq!(dup.len(), 2, "collinear point does not grow the hull");
        let tri = insert_point(&seg, p(0.0, 1.0));
        assert_eq!(tri.len(), 3);
    }

    #[test]
    fn incremental_matches_batch_on_pseudorandom_stream() {
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point2> = (0..400).map(|_| p(next() * 10.0, next() * 10.0)).collect();
        let mut poly = ConvexPolygon::empty();
        for (i, &q) in pts.iter().enumerate() {
            poly = insert_point(&poly, q);
            if i % 37 == 0 {
                let want = ConvexPolygon::hull_of(&pts[..=i]);
                assert_eq!(poly.vertices(), want.vertices(), "after {} points", i + 1);
            }
        }
        let want = ConvexPolygon::hull_of(&pts);
        assert_eq!(poly.vertices(), want.vertices());
    }
}
