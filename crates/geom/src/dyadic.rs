//! Exact dyadic direction arithmetic.
//!
//! The adaptive sampling scheme of Hershberger–Suri only ever uses sample
//! directions of the form `θ = j·θ0 + m·θ0/2^d` with `θ0 = 2π/r` — i.e.
//! bisections of the `r` uniform sectors down to a depth limit `k`. Rather
//! than juggling floating-point angles (where `a/2 + b/2` may not equal the
//! true bisector and equality tests rot), we index every expressible
//! direction by an integer on a circle of resolution `R = r·2^k`.
//!
//! [`DirGrid`] owns the parameters; [`Dir`] is an index on that circle; and
//! [`DirRange`] is a closed angular interval with exact midpoint bisection.
//! Unit vectors are derived on demand (and are the *only* place floating
//! point enters).

use crate::point::Vec2;
use core::f64::consts::TAU;

/// A direction index on a circle subdivided into `resolution` equal parts.
///
/// `Dir(n)` denotes the angle `2π·n / resolution` for the grid it belongs
/// to. Wrap-around is handled by the grid's arithmetic helpers, never by the
/// raw index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dir(pub u64);

/// The set of directions expressible as depth-`<= k` dyadic refinements of
/// `r` uniform directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirGrid {
    /// Number of uniform (top-level) directions; must be a power of two >= 4.
    r: u32,
    /// Maximum refinement depth `k`.
    depth: u32,
    /// `r << depth`: number of grid steps around the full circle.
    resolution: u64,
}

impl DirGrid {
    /// Creates a grid with `r` uniform directions and refinement depth
    /// limit `depth`.
    ///
    /// # Panics
    /// Panics unless `r` is a power of two with `8 <= r <= 2^20` and
    /// `depth <= 32`. Powers of two keep sector bisection exact; `r >= 8`
    /// keeps each sector's angular span below `π/4`, which the streaming
    /// update's pruning proof (see `sh-core`) relies on.
    pub fn new(r: u32, depth: u32) -> Self {
        assert!(r.is_power_of_two(), "r must be a power of two, got {r}");
        assert!(
            (8..=1 << 20).contains(&r),
            "r must be in [8, 2^20], got {r}"
        );
        assert!(depth <= 32, "depth must be <= 32, got {depth}");
        DirGrid {
            r,
            depth,
            resolution: (r as u64) << depth,
        }
    }

    /// Grid with the paper's recommended depth `k = log2 r`.
    pub fn with_default_depth(r: u32) -> Self {
        Self::new(r, r.trailing_zeros())
    }

    /// Number of uniform directions `r`.
    #[inline]
    pub fn r(&self) -> u32 {
        self.r
    }

    /// Refinement depth limit `k`.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Total number of grid steps on the circle (`r · 2^depth`).
    #[inline]
    pub fn resolution(&self) -> u64 {
        self.resolution
    }

    /// Number of grid steps per uniform sector (`2^depth`).
    #[inline]
    pub fn sector_steps(&self) -> u64 {
        1u64 << self.depth
    }

    /// The `j`-th uniform direction (`j·θ0`), for `j < r`.
    #[inline]
    pub fn uniform_dir(&self, j: u32) -> Dir {
        debug_assert!(j < self.r);
        Dir((j as u64) << self.depth)
    }

    /// The uniform sector index containing (the start of) `d`:
    /// `floor(d / 2^depth) mod r`.
    #[inline]
    pub fn sector_of(&self, d: Dir) -> u32 {
        debug_assert!(d.0 < self.resolution);
        (d.0 >> self.depth) as u32
    }

    /// Angle of `d` in radians, in `[0, 2π)`.
    #[inline]
    pub fn angle(&self, d: Dir) -> f64 {
        debug_assert!(d.0 < self.resolution);
        TAU * (d.0 as f64) / (self.resolution as f64)
    }

    /// Unit vector of direction `d`.
    #[inline]
    pub fn unit(&self, d: Dir) -> Vec2 {
        Vec2::from_angle(self.angle(d))
    }

    /// Adds `steps` grid steps to `d`, wrapping around the circle.
    #[inline]
    pub fn add(&self, d: Dir, steps: u64) -> Dir {
        Dir((d.0 + steps) % self.resolution)
    }

    /// Number of grid steps walking counterclockwise from `a` to `b`
    /// (in `[0, resolution)`).
    #[inline]
    pub fn ccw_steps(&self, a: Dir, b: Dir) -> u64 {
        debug_assert!(a.0 < self.resolution && b.0 < self.resolution);
        (b.0 + self.resolution - a.0) % self.resolution
    }

    /// Converts an angle in radians (any value) to the nearest grid
    /// direction at or below it (floor).
    pub fn floor_dir(&self, theta: f64) -> Dir {
        let t = theta.rem_euclid(TAU) / TAU; // in [0,1)
        let idx = (t * self.resolution as f64).floor() as u64;
        Dir(idx.min(self.resolution - 1))
    }

    /// Converts an angle to the nearest grid direction (rounding).
    pub fn round_dir(&self, theta: f64) -> Dir {
        let t = theta.rem_euclid(TAU) / TAU;
        let idx = (t * self.resolution as f64).round() as u64;
        Dir(idx % self.resolution)
    }

    /// `true` iff `d` lies on the counterclockwise closed arc from `lo`
    /// to `hi` (the arc swept going ccw from `lo`; if `lo == hi` only that
    /// single direction is in the arc).
    #[inline]
    pub fn in_ccw_arc(&self, d: Dir, lo: Dir, hi: Dir) -> bool {
        self.ccw_steps(lo, d) <= self.ccw_steps(lo, hi)
    }

    /// Iterator over uniform direction indices `j` whose direction lies on
    /// the ccw closed arc from `lo` to `hi`.
    pub fn uniform_dirs_in_arc(&self, lo: Dir, hi: Dir) -> impl Iterator<Item = u32> + '_ {
        let step = self.sector_steps();
        // First uniform direction at or after `lo` (ccw).
        let first = Dir((lo.0.div_ceil(step) % self.r as u64) * step);
        let span = self.ccw_steps(lo, hi);
        let offset = self.ccw_steps(lo, first);
        let count = if offset > span {
            0
        } else {
            (span - offset) / step + 1
        };
        let r = self.r;
        let first_j = (first.0 / step) as u32;
        (0..count as u32).map(move |i| (first_j + i) % r)
    }
}

/// A closed angular interval `[lo, hi]` on a [`DirGrid`], spanning at most
/// one uniform sector, with exact dyadic bisection.
///
/// `depth` is how many bisections produced it (0 = a full uniform sector).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirRange {
    /// Left (clockwise) end.
    pub lo: Dir,
    /// Right (counterclockwise) end. `hi = lo + span`, may wrap mod R.
    pub hi: Dir,
    /// Number of bisections from a uniform sector (`span = 2^(k - depth)`).
    pub depth: u32,
}

impl DirRange {
    /// The full uniform sector `j` on `grid`.
    pub fn sector(grid: &DirGrid, j: u32) -> Self {
        let lo = grid.uniform_dir(j);
        let hi = grid.add(lo, grid.sector_steps());
        DirRange { lo, hi, depth: 0 }
    }

    /// Number of grid steps spanned.
    #[inline]
    pub fn span(&self, grid: &DirGrid) -> u64 {
        grid.ccw_steps(self.lo, self.hi)
    }

    /// The exact midpoint direction. Only valid while the range is
    /// bisectable (span >= 2 grid steps).
    #[inline]
    pub fn mid(&self, grid: &DirGrid) -> Dir {
        let span = self.span(grid);
        debug_assert!(span >= 2, "range no longer bisectable");
        grid.add(self.lo, span / 2)
    }

    /// `true` while the range can be bisected further within the grid's
    /// depth limit.
    #[inline]
    pub fn bisectable(&self, grid: &DirGrid) -> bool {
        self.depth < grid.depth() && self.span(grid) >= 2
    }

    /// Splits into `(left, right)` halves sharing the midpoint.
    pub fn bisect(&self, grid: &DirGrid) -> (DirRange, DirRange) {
        let m = self.mid(grid);
        (
            DirRange {
                lo: self.lo,
                hi: m,
                depth: self.depth + 1,
            },
            DirRange {
                lo: m,
                hi: self.hi,
                depth: self.depth + 1,
            },
        )
    }

    /// Angular width in radians.
    #[inline]
    pub fn width(&self, grid: &DirGrid) -> f64 {
        TAU * self.span(grid) as f64 / grid.resolution() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_dirs_are_evenly_spaced() {
        let g = DirGrid::new(16, 4);
        assert_eq!(g.resolution(), 256);
        for j in 0..16 {
            let d = g.uniform_dir(j);
            assert_eq!(d.0, (j as u64) * 16);
            let expect = TAU * j as f64 / 16.0;
            assert!((g.angle(d) - expect).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        DirGrid::new(12, 2);
    }

    #[test]
    fn wrap_arithmetic() {
        let g = DirGrid::new(8, 2); // resolution 32
        let a = Dir(30);
        let b = g.add(a, 5);
        assert_eq!(b, Dir(3));
        assert_eq!(g.ccw_steps(a, b), 5);
        assert_eq!(g.ccw_steps(b, a), 27);
    }

    #[test]
    fn arc_membership() {
        let g = DirGrid::new(8, 2);
        // Arc from 30 ccw to 3 (wrapping).
        let (lo, hi) = (Dir(30), Dir(3));
        assert!(g.in_ccw_arc(Dir(30), lo, hi));
        assert!(g.in_ccw_arc(Dir(0), lo, hi));
        assert!(g.in_ccw_arc(Dir(3), lo, hi));
        assert!(!g.in_ccw_arc(Dir(4), lo, hi));
        assert!(!g.in_ccw_arc(Dir(29), lo, hi));
    }

    #[test]
    fn uniform_dirs_in_wrapping_arc() {
        let g = DirGrid::new(8, 2); // sectors of 4 steps; uniform dirs at 0,4,...,28
        let found: Vec<u32> = g.uniform_dirs_in_arc(Dir(27), Dir(5)).collect();
        assert_eq!(found, vec![7, 0, 1]);
        let none: Vec<u32> = g.uniform_dirs_in_arc(Dir(5), Dir(7)).collect();
        assert!(none.is_empty());
        let single: Vec<u32> = g.uniform_dirs_in_arc(Dir(4), Dir(4)).collect();
        assert_eq!(single, vec![1]);
        let all: Vec<u32> = g.uniform_dirs_in_arc(Dir(0), Dir(31)).collect();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn sector_bisection_is_exact() {
        let g = DirGrid::new(16, 4);
        let s = DirRange::sector(&g, 3);
        assert_eq!(s.span(&g), 16);
        let (l, r) = s.bisect(&g);
        assert_eq!(l.lo, s.lo);
        assert_eq!(l.hi, r.lo);
        assert_eq!(r.hi, s.hi);
        assert_eq!(l.span(&g), 8);
        assert_eq!(r.span(&g), 8);
        assert_eq!(l.depth, 1);
        // Bisect down to the depth limit.
        let mut cur = l;
        while cur.bisectable(&g) {
            cur = cur.bisect(&g).0;
        }
        assert_eq!(cur.span(&g), 1);
        assert_eq!(cur.depth, 4);
    }

    #[test]
    fn last_sector_wraps() {
        let g = DirGrid::new(8, 3);
        let s = DirRange::sector(&g, 7);
        assert_eq!(s.lo, Dir(56));
        assert_eq!(s.hi, Dir(0));
        assert_eq!(s.span(&g), 8);
        let m = s.mid(&g);
        assert_eq!(m, Dir(60));
    }

    #[test]
    fn floor_and_round_dir() {
        let g = DirGrid::new(8, 0); // resolution 8, steps of 45 degrees
        assert_eq!(g.floor_dir(0.0), Dir(0));
        assert_eq!(g.floor_dir(TAU / 8.0 + 0.01), Dir(1));
        assert_eq!(g.floor_dir(-0.01), Dir(7));
        assert_eq!(g.round_dir(TAU / 8.0 * 0.6), Dir(1));
        assert_eq!(g.round_dir(TAU - 0.01), Dir(0));
    }

    #[test]
    fn default_depth_matches_paper() {
        let g = DirGrid::with_default_depth(64);
        assert_eq!(g.depth(), 6);
        assert_eq!(g.resolution(), 64 * 64);
    }

    #[test]
    fn width_of_ranges() {
        let g = DirGrid::new(8, 2);
        let s = DirRange::sector(&g, 0);
        assert!((s.width(&g) - TAU / 8.0).abs() < 1e-15);
        let (l, _) = s.bisect(&g);
        assert!((l.width(&g) - TAU / 16.0).abs() < 1e-15);
    }
}
