//! The [`ConvexPolygon`] type: an immutable, validated, counterclockwise
//! convex vertex cycle. All hull summaries hand out their state as a
//! `ConvexPolygon`, and all queries (§6 of the paper) consume them.

use crate::hull::monotone_chain;
use crate::point::{Point2, Vec2};
use crate::predicates::{on_segment, orient2d_sign};
use core::cmp::Ordering;

/// A convex polygon with vertices in counterclockwise order.
///
/// Degenerate cases are first-class: zero vertices (empty), one (a point),
/// two (a segment). With three or more vertices the polygon is *strictly*
/// convex — no duplicate vertices, no collinear triples — which the binary
/// searches in [`crate::locate`] and [`crate::tangent`] rely on.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexPolygon {
    verts: Vec<Point2>,
}

impl ConvexPolygon {
    /// Builds the convex hull of arbitrary points (the safe constructor).
    pub fn hull_of(points: &[Point2]) -> Self {
        ConvexPolygon {
            verts: monotone_chain(points),
        }
    }

    /// Recomputes `self` as the convex hull of `points`, reusing this
    /// polygon's vertex buffer and the caller's `scratch` buffer.
    ///
    /// Equivalent to `*self = ConvexPolygon::hull_of(points)` but free of
    /// heap allocations once both buffers are warm — the building block for
    /// the summary crate's allocation-free ingestion hot paths.
    pub fn assign_hull_of(&mut self, points: &[Point2], scratch: &mut Vec<Point2>) {
        scratch.clear();
        scratch.extend(points.iter().copied().filter(|p| p.is_finite()));
        let mut verts = core::mem::take(&mut self.verts);
        crate::hull::monotone_chain_with(scratch, &mut verts, false);
        self.verts = verts;
    }

    /// Wraps a vertex list that is already a strictly convex ccw cycle.
    ///
    /// Returns `None` if validation fails. Use [`ConvexPolygon::hull_of`]
    /// when unsure.
    pub fn from_ccw(verts: Vec<Point2>) -> Option<Self> {
        let p = ConvexPolygon { verts };
        p.is_valid().then_some(p)
    }

    /// Wraps a vertex list without validation.
    ///
    /// The caller promises the list is a strictly convex ccw cycle (or a
    /// degenerate 0/1/2-vertex case with distinct vertices). Violating this
    /// breaks query correctness but not memory safety. Debug builds assert.
    pub fn from_ccw_unchecked(verts: Vec<Point2>) -> Self {
        let p = ConvexPolygon { verts };
        debug_assert!(p.is_valid(), "from_ccw_unchecked given invalid cycle");
        p
    }

    /// The empty polygon.
    pub fn empty() -> Self {
        ConvexPolygon { verts: Vec::new() }
    }

    /// Test-only escape hatch: wraps a vertex list with *no* validation and
    /// no debug assertion, so kernel tests can exercise the degenerate-input
    /// hardening paths (collinear chains, duplicate vertices) that
    /// [`ConvexPolygon::from_ccw_unchecked`] only admits in release builds.
    #[cfg(test)]
    pub(crate) fn from_ccw_unvalidated(verts: Vec<Point2>) -> Self {
        ConvexPolygon { verts }
    }

    fn is_valid(&self) -> bool {
        let n = self.verts.len();
        if !self.verts.iter().all(|v| v.is_finite()) {
            return false;
        }
        match n {
            0 | 1 => true,
            2 => self.verts[0] != self.verts[1],
            _ => (0..n).all(|i| {
                orient2d_sign(
                    self.verts[i],
                    self.verts[(i + 1) % n],
                    self.verts[(i + 2) % n],
                ) == Ordering::Greater
            }),
        }
    }

    /// Vertices in counterclockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point2] {
        &self.verts
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// `true` iff the polygon has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Vertex by cyclic index (`i` may exceed `len`).
    #[inline]
    pub fn vertex(&self, i: usize) -> Point2 {
        self.verts[i % self.verts.len()]
    }

    /// Iterator over directed edges `(v_i, v_{i+1})`. Empty for fewer than
    /// 2 vertices; a 2-vertex polygon yields both directed copies.
    pub fn edges(&self) -> impl Iterator<Item = (Point2, Point2)> + '_ {
        let n = self.verts.len();
        let count = if n < 2 { 0 } else { n };
        (0..count).map(move |i| (self.verts[i], self.verts[(i + 1) % n]))
    }

    /// Perimeter (0 for <2 vertices; `2·|ab|` for a segment, matching the
    /// boundary-length convention used for the paper's perimeter `P`).
    pub fn perimeter(&self) -> f64 {
        match self.verts.len() {
            0 | 1 => 0.0,
            2 => 2.0 * self.verts[0].distance(self.verts[1]),
            _ => self.edges().map(|(a, b)| a.distance(b)).sum(),
        }
    }

    /// Area by the shoelace formula (0 for degenerate polygons).
    pub fn area(&self) -> f64 {
        if self.verts.len() < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (a, b) in self.edges() {
            acc += a.x * b.y - b.x * a.y;
        }
        acc * 0.5
    }

    /// Centroid. `None` when empty. Degenerate polygons use the vertex mean.
    pub fn centroid(&self) -> Option<Point2> {
        match self.verts.len() {
            0 => None,
            1 => Some(self.verts[0]),
            2 => Some(self.verts[0].midpoint(self.verts[1])),
            _ => {
                let a = self.area();
                if a <= f64::EPSILON {
                    // Nearly degenerate: fall back to vertex mean.
                    let n = self.verts.len() as f64;
                    let (sx, sy) = self
                        .verts
                        .iter()
                        .fold((0.0, 0.0), |(sx, sy), v| (sx + v.x, sy + v.y));
                    return Some(Point2::new(sx / n, sy / n));
                }
                let mut cx = 0.0;
                let mut cy = 0.0;
                for (p, q) in self.edges() {
                    let w = p.x * q.y - q.x * p.y;
                    cx += (p.x + q.x) * w;
                    cy += (p.y + q.y) * w;
                }
                Some(Point2::new(cx / (6.0 * a), cy / (6.0 * a)))
            }
        }
    }

    /// Exact containment test (boundary counts as inside), `O(n)`.
    ///
    /// For the `O(log n)` version used in hot paths see
    /// [`crate::locate::contains`].
    pub fn contains_linear(&self, p: Point2) -> bool {
        match self.verts.len() {
            0 => false,
            1 => self.verts[0] == p,
            2 => on_segment(self.verts[0], self.verts[1], p),
            n => (0..n).all(|i| {
                orient2d_sign(self.verts[i], self.verts[(i + 1) % n], p) != Ordering::Less
            }),
        }
    }

    /// Support value `max_v v·dir` over the vertices. `None` when the
    /// polygon is empty or `dir` is non-finite (a NaN/infinite direction
    /// has no meaningful support value, and `max` would silently absorb
    /// the NaN into an arbitrary answer).
    pub fn support(&self, dir: Vec2) -> Option<f64> {
        if !dir.is_finite() {
            return None;
        }
        self.verts
            .iter()
            .map(|v| v.dot(dir))
            .fold(None, |acc, d| match acc {
                None => Some(d),
                Some(m) => Some(m.max(d)),
            })
    }

    /// Extreme vertex in direction `dir` by linear scan (`O(n)`); for the
    /// binary-search version see [`crate::locate::extreme_vertex`].
    pub fn extreme_linear(&self, dir: Vec2) -> Option<Point2> {
        self.verts
            .iter()
            .copied()
            .max_by(|a, b| a.dot(dir).total_cmp(&b.dot(dir)))
    }

    /// Euclidean distance from `p` to the polygon (0 if inside), `O(n)`.
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        match self.verts.len() {
            0 => f64::INFINITY,
            1 => self.verts[0].distance(p),
            2 => crate::line::Segment::new(self.verts[0], self.verts[1]).distance_to_point(p),
            _ => {
                if self.contains_linear(p) {
                    return 0.0;
                }
                self.boundary_distance(p)
            }
        }
    }

    /// Euclidean distance from `p` to the polygon **boundary**, `O(n)` —
    /// no containment test, so for an interior point this is the positive
    /// distance to the nearest edge rather than 0.
    ///
    /// Callers that already know `p` is outside (e.g. a failed
    /// [`crate::locate::contains`]) get [`distance_to_point`]'s answer for
    /// one edge scan instead of two.
    ///
    /// [`distance_to_point`]: ConvexPolygon::distance_to_point
    pub fn boundary_distance(&self, p: Point2) -> f64 {
        match self.verts.len() {
            0 => f64::INFINITY,
            1 => self.verts[0].distance(p),
            _ => self
                .edges()
                .map(|(a, b)| crate::line::Segment::new(a, b).distance_to_point(p))
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Directed Hausdorff distance from `other`'s vertices to this polygon:
    /// `max_{v in other} dist(v, self)`. This is exactly the paper's error
    /// measure "distance between the true hull and the sample hull" when
    /// `other` is the true hull and `self` the approximation (the maximum is
    /// attained at a vertex of the true hull).
    pub fn directed_hausdorff_from(&self, other: &ConvexPolygon) -> f64 {
        other
            .vertices()
            .iter()
            .map(|&v| self.distance_to_point(v))
            .fold(0.0, f64::max)
    }

    /// Consumes the polygon, returning its vertices.
    pub fn into_vertices(self) -> Vec<Point2> {
        self.verts
    }

    /// Appends the raw wire encoding to `out`: a little-endian `u64`
    /// vertex count followed by each vertex's [`Point2::to_le_bytes`].
    /// The encoding is bit-exact: [`ConvexPolygon::decode_raw`] restores
    /// an identical polygon.
    pub fn encode_raw(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.verts.len() as u64).to_le_bytes());
        for v in &self.verts {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes a polygon written by [`ConvexPolygon::encode_raw`] from the
    /// front of `bytes`, returning it with the number of bytes consumed.
    ///
    /// Hardened: returns `None` on truncated input, on an implausible
    /// vertex count, or when the decoded vertex list is not a strictly
    /// convex ccw cycle (the same validation as [`ConvexPolygon::from_ccw`])
    /// — never panics.
    pub fn decode_raw(bytes: &[u8]) -> Option<(ConvexPolygon, usize)> {
        let count_bytes: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        let count = u64::from_le_bytes(count_bytes);
        let need = (count as usize).checked_mul(16)?.checked_add(8)?;
        if bytes.len() < need {
            return None;
        }
        let mut verts = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let start = 8 + 16 * i;
            let raw: [u8; 16] = bytes[start..start + 16].try_into().ok()?;
            verts.push(Point2::from_le_bytes(raw));
        }
        ConvexPolygon::from_ccw(verts).map(|poly| (poly, need))
    }
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(ConvexPolygon::from_ccw(vec![]).is_some());
        assert!(ConvexPolygon::from_ccw(vec![p(0.0, 0.0)]).is_some());
        assert!(ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(1.0, 0.0)]).is_some());
        assert!(ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(0.0, 0.0)]).is_none());
        // Clockwise square rejected.
        assert!(
            ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(0.0, 1.0), p(1.0, 1.0), p(1.0, 0.0)])
                .is_none()
        );
        // Collinear triple rejected (not strictly convex).
        assert!(
            ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(1.0, 1.0)])
                .is_none()
        );
    }

    #[test]
    fn area_perimeter_centroid() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-15);
        assert!((sq.perimeter() - 4.0).abs() < 1e-15);
        assert_eq!(sq.centroid().unwrap(), p(0.5, 0.5));
        // Segment conventions.
        let seg = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(3.0, 0.0)]).unwrap();
        assert_eq!(seg.area(), 0.0);
        assert_eq!(seg.perimeter(), 6.0);
        assert_eq!(seg.centroid().unwrap(), p(1.5, 0.0));
    }

    #[test]
    fn containment() {
        let sq = unit_square();
        assert!(sq.contains_linear(p(0.5, 0.5)));
        assert!(sq.contains_linear(p(0.0, 0.0)), "vertices are inside");
        assert!(sq.contains_linear(p(0.5, 0.0)), "edges are inside");
        assert!(!sq.contains_linear(p(1.5, 0.5)));
        assert!(!sq.contains_linear(p(0.5, -1e-12)));
    }

    #[test]
    fn support_and_extreme() {
        let sq = unit_square();
        let d = Vec2::new(1.0, 2.0);
        assert_eq!(sq.support(d), Some(3.0));
        assert_eq!(sq.extreme_linear(d), Some(p(1.0, 1.0)));
        assert_eq!(ConvexPolygon::empty().support(d), None);
    }

    #[test]
    fn point_distance() {
        let sq = unit_square();
        assert_eq!(sq.distance_to_point(p(0.5, 0.5)), 0.0);
        assert!((sq.distance_to_point(p(2.0, 0.5)) - 1.0).abs() < 1e-15);
        assert!((sq.distance_to_point(p(2.0, 2.0)) - 2.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn hausdorff_between_nested_squares() {
        let outer =
            ConvexPolygon::from_ccw(vec![p(-1.0, -1.0), p(2.0, -1.0), p(2.0, 2.0), p(-1.0, 2.0)])
                .unwrap();
        let inner = unit_square();
        assert_eq!(
            outer.directed_hausdorff_from(&inner),
            0.0,
            "inner inside outer"
        );
        let d = inner.directed_hausdorff_from(&outer);
        assert!(
            (d - 2.0f64.sqrt()).abs() < 1e-12,
            "corner of outer to inner corner"
        );
    }

    #[test]
    fn hull_of_filters_and_orders() {
        let poly = ConvexPolygon::hull_of(&[
            p(1.0, 1.0),
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(1.0, 2.0),
            p(1.0, 0.5),
        ]);
        assert_eq!(poly.len(), 3);
        assert!(poly.contains_linear(p(1.0, 1.0)));
    }

    #[test]
    fn assign_hull_of_matches_hull_of() {
        let mut poly = ConvexPolygon::empty();
        let mut scratch = Vec::new();
        for pts in [
            vec![],
            vec![p(1.0, 1.0)],
            vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 1.0), p(1.0, 0.2)],
            (0..50)
                .map(|i| {
                    let t = i as f64 * 0.37;
                    p(t.cos() * 3.0, t.sin() * 2.0)
                })
                .collect(),
        ] {
            poly.assign_hull_of(&pts, &mut scratch);
            assert_eq!(poly, ConvexPolygon::hull_of(&pts));
        }
    }

    #[test]
    fn edges_iterator_conventions() {
        assert_eq!(ConvexPolygon::empty().edges().count(), 0);
        let one = ConvexPolygon::from_ccw(vec![p(0.0, 0.0)]).unwrap();
        assert_eq!(one.edges().count(), 0);
        let seg = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(1.0, 0.0)]).unwrap();
        let e: Vec<_> = seg.edges().collect();
        assert_eq!(
            e,
            vec![(p(0.0, 0.0), p(1.0, 0.0)), (p(1.0, 0.0), p(0.0, 0.0))]
        );
        assert_eq!(unit_square().edges().count(), 4);
    }

    #[test]
    fn raw_codec_round_trips_all_degeneracies() {
        let cases = [
            ConvexPolygon::empty(),
            ConvexPolygon::from_ccw(vec![p(1.5, -2.25)]).unwrap(),
            ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(3.0, 1.0)]).unwrap(),
            unit_square(),
        ];
        for poly in &cases {
            let mut bytes = vec![0xAA]; // leading junk the codec must skip past
            let before = bytes.len();
            poly.encode_raw(&mut bytes);
            let written = bytes.len() - before;
            bytes.extend_from_slice(b"trailing"); // codec must not over-read
            let (decoded, used) = ConvexPolygon::decode_raw(&bytes[before..]).expect("round trip");
            assert_eq!(used, written);
            assert_eq!(&decoded, poly);
        }
    }

    #[test]
    fn raw_decode_rejects_garbage() {
        let mut bytes = Vec::new();
        unit_square().encode_raw(&mut bytes);
        // Truncations at every length must fail cleanly.
        for len in 0..bytes.len() {
            assert!(ConvexPolygon::decode_raw(&bytes[..len]).is_none(), "{len}");
        }
        // An absurd vertex count must not allocate or panic.
        let huge = u64::MAX.to_le_bytes();
        assert!(ConvexPolygon::decode_raw(&huge).is_none());
        // A non-convex vertex cycle is rejected by validation.
        let mut bad = Vec::new();
        bad.extend_from_slice(&4u64.to_le_bytes());
        for v in [p(0.0, 0.0), p(1.0, 1.0), p(1.0, 0.0), p(0.0, 1.0)] {
            bad.extend_from_slice(&v.to_le_bytes());
        }
        assert!(ConvexPolygon::decode_raw(&bad).is_none());
    }
}
