//! Minimum enclosing circle (Welzl's algorithm) — backing the paper's §6
//! remark that "the smallest circle containing all the points" can be
//! computed from the approximate convex hull.

use crate::point::Point2;

/// A circle given by centre and radius.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    /// Centre.
    pub center: Point2,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// The degenerate circle around a single point.
    pub fn point(p: Point2) -> Circle {
        Circle {
            center: p,
            radius: 0.0,
        }
    }

    /// Circle with the segment `a..b` as diameter.
    pub fn from_diameter(a: Point2, b: Point2) -> Circle {
        Circle {
            center: a.midpoint(b),
            radius: a.distance(b) / 2.0,
        }
    }

    /// Circumscribed circle of three points; `None` when (nearly)
    /// collinear.
    pub fn circumscribed(a: Point2, b: Point2, c: Point2) -> Option<Circle> {
        let (bx, by) = (b.x - a.x, b.y - a.y);
        let (cx, cy) = (c.x - a.x, c.y - a.y);
        let d = 2.0 * (bx * cy - by * cx);
        if d.abs() < 1e-14 * (bx.hypot(by) * cx.hypot(cy)).max(1.0) {
            return None;
        }
        let b2 = bx * bx + by * by;
        let c2 = cx * cx + cy * cy;
        let ux = (cy * b2 - by * c2) / d;
        let uy = (bx * c2 - cx * b2) / d;
        let center = Point2::new(a.x + ux, a.y + uy);
        Some(Circle {
            center,
            radius: center.distance(a),
        })
    }

    /// Containment with a relative tolerance (needed because the circle
    /// itself is computed in floating point).
    pub fn contains(&self, p: Point2, eps: f64) -> bool {
        self.center.distance(p) <= self.radius * (1.0 + eps) + eps
    }
}

/// Minimum enclosing circle of a point set, by Welzl's move-to-front
/// algorithm (expected `O(n)` after the deterministic shuffle below).
///
/// Returns `None` for an empty input. For a hull summary, pass the sampled
/// hull's vertices: the result is within `O(D/r²)` of the true smallest
/// enclosing circle of the stream.
pub fn min_enclosing_circle(points: &[Point2]) -> Option<Circle> {
    let mut pts: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
    if pts.is_empty() {
        return None;
    }
    // Deterministic shuffle (splitmix-style) so worst-case inputs do not
    // trigger the quadratic behaviour of a sorted order.
    let mut state = 0x9e3779b97f4a7c15u64 ^ (pts.len() as u64);
    for i in (1..pts.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        pts.swap(i, j);
    }

    let mut c = Circle::point(pts[0]);
    for i in 1..pts.len() {
        if c.contains(pts[i], 1e-12) {
            continue;
        }
        // pts[i] on the boundary.
        c = Circle::point(pts[i]);
        for j in 0..i {
            if c.contains(pts[j], 1e-12) {
                continue;
            }
            // pts[i], pts[j] on the boundary.
            c = Circle::from_diameter(pts[i], pts[j]);
            for k in 0..j {
                if c.contains(pts[k], 1e-12) {
                    continue;
                }
                // Three boundary points determine the circle.
                c = Circle::circumscribed(pts[i], pts[j], pts[k])
                    .unwrap_or_else(|| widest_of_three(pts[i], pts[j], pts[k]));
            }
        }
    }
    Some(c)
}

/// Fallback for (nearly) collinear triples: the diameter circle of the
/// farthest pair.
fn widest_of_three(a: Point2, b: Point2, c: Point2) -> Circle {
    let mut best = Circle::from_diameter(a, b);
    for (p, q) in [(a, c), (b, c)] {
        let cand = Circle::from_diameter(p, q);
        if cand.radius > best.radius {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn assert_encloses(c: &Circle, pts: &[Point2]) {
        for &p in pts {
            assert!(
                c.contains(p, 1e-9),
                "{p:?} outside circle centre {:?} radius {}",
                c.center,
                c.radius
            );
        }
    }

    #[test]
    fn trivial_cases() {
        assert!(min_enclosing_circle(&[]).is_none());
        let one = min_enclosing_circle(&[Point2::new(1.0, 2.0)]).unwrap();
        assert_eq!(one.radius, 0.0);
        let two = min_enclosing_circle(&[Point2::new(0.0, 0.0), Point2::new(4.0, 0.0)]).unwrap();
        assert!((two.radius - 2.0).abs() < 1e-12);
        assert!(two.center.distance(Point2::new(2.0, 0.0)) < 1e-12);
    }

    #[test]
    fn equilateral_triangle() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.5, 3.0f64.sqrt() / 2.0),
        ];
        let c = min_enclosing_circle(&pts).unwrap();
        // Circumradius of unit equilateral triangle = 1/sqrt(3).
        assert!((c.radius - 1.0 / 3.0f64.sqrt()).abs() < 1e-9);
        assert_encloses(&c, &pts);
    }

    #[test]
    fn obtuse_triangle_uses_diameter() {
        // For an obtuse triangle the MEC is the diameter circle of the
        // longest side, not the circumcircle.
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(5.0, 0.5),
        ];
        let c = min_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 5.0).abs() < 1e-9);
        assert_encloses(&c, &pts);
    }

    #[test]
    fn circle_points_recover_radius() {
        let pts: Vec<Point2> = (0..100)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / 100.0;
                Point2::new(3.0 + 2.0 * t.cos(), -1.0 + 2.0 * t.sin())
            })
            .collect();
        let c = min_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 2.0).abs() < 1e-9);
        assert!(c.center.distance(Point2::new(3.0, -1.0)) < 1e-9);
        assert_encloses(&c, &pts);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point2> = (0..20)
            .map(|i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let c = min_enclosing_circle(&pts).unwrap();
        let expect = pts[0].distance(pts[19]) / 2.0;
        assert!((c.radius - expect).abs() < 1e-9);
        assert_encloses(&c, &pts);
    }

    #[test]
    fn random_points_minimality() {
        // The MEC radius must match the brute-force minimum over all
        // 2-point and 3-point candidate circles.
        let mut seed = 77u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..10 {
            let pts: Vec<Point2> = (0..14)
                .map(|_| Point2::new(next() * 10.0, next() * 10.0))
                .collect();
            let c = min_enclosing_circle(&pts).unwrap();
            assert_encloses(&c, &pts);
            // Brute force.
            let mut best = f64::INFINITY;
            let n = pts.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    let cand = Circle::from_diameter(pts[i], pts[j]);
                    if pts.iter().all(|&p| cand.contains(p, 1e-9)) {
                        best = best.min(cand.radius);
                    }
                    for k in (j + 1)..n {
                        if let Some(cand) = Circle::circumscribed(pts[i], pts[j], pts[k]) {
                            if pts.iter().all(|&p| cand.contains(p, 1e-9)) {
                                best = best.min(cand.radius);
                            }
                        }
                    }
                }
            }
            assert!(
                (c.radius - best).abs() <= 1e-6 * best,
                "trial {trial}: welzl {} vs brute {best}",
                c.radius
            );
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let mut pts = vec![Point2::new(1.0, 1.0); 50];
        pts.push(Point2::new(5.0, 1.0));
        let c = min_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 2.0).abs() < 1e-9);
    }
}
