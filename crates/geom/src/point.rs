//! Points and vectors in the plane.
//!
//! `Point2` is an affine position; `Vec2` is a displacement. Keeping the two
//! apart catches a surprising number of bugs in hull code (e.g. adding two
//! points makes no geometric sense, but adding a vector to a point does).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the plane with `f64` coordinates.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement vector in the plane with `f64` coordinates.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl fmt::Debug for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Debug for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl Point2 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Displacement from `other` to `self`.
    #[inline]
    pub fn vector_from(self, other: Point2) -> Vec2 {
        self - other
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Dot product of the position vector with `v`; the support value of this
    /// point in direction `v`.
    #[inline]
    pub fn dot(self, v: Vec2) -> f64 {
        self.x * v.x + self.y * v.y
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        self.lerp(other, 0.5)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison (by `x`, then by `y`). Total for every bit
    /// pattern via [`f64::total_cmp`]; identical to the partial order on the
    /// finite coordinates all streamhull structures require, and never
    /// panics on the non-finite ones they reject.
    #[inline]
    pub fn lex_cmp(self, other: Point2) -> core::cmp::Ordering {
        self.x.total_cmp(&other.x).then(self.y.total_cmp(&other.y))
    }

    /// Raw little-endian wire encoding (`x` then `y`, IEEE-754 bits).
    /// Round-trips bit-exactly through [`Point2::from_le_bytes`], including
    /// non-finite values and signed zeros.
    #[inline]
    pub fn to_le_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.x.to_le_bytes());
        out[8..].copy_from_slice(&self.y.to_le_bytes());
        out
    }

    /// Inverse of [`Point2::to_le_bytes`].
    #[inline]
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        let mut x = [0u8; 8];
        let mut y = [0u8; 8];
        x.copy_from_slice(&bytes[..8]);
        y.copy_from_slice(&bytes[8..]);
        Point2 {
            x: f64::from_le_bytes(x),
            y: f64::from_le_bytes(y),
        }
    }
}

impl Vec2 {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Unit vector at angle `theta` (radians, counterclockwise from +x).
    #[inline]
    pub fn from_angle(theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2 { x: c, y: s }
    }

    /// Angle of this vector in `(-pi, pi]` (via `atan2`).
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    /// Positive when `other` is counterclockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Rotates by 90 degrees counterclockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Rotates by `theta` radians counterclockwise.
    #[inline]
    pub fn rotate(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2 {
            x: self.x * c - self.y * s,
            y: self.x * s + self.y * c,
        }
    }

    /// Returns the vector scaled to unit length, or `None` for the zero
    /// vector (and anything so short that normalisation is meaningless).
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Raw little-endian wire encoding (`x` then `y`, IEEE-754 bits).
    /// Round-trips bit-exactly through [`Vec2::from_le_bytes`].
    #[inline]
    pub fn to_le_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.x.to_le_bytes());
        out[8..].copy_from_slice(&self.y.to_le_bytes());
        out
    }

    /// Inverse of [`Vec2::to_le_bytes`].
    #[inline]
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        let mut x = [0u8; 8];
        let mut y = [0u8; 8];
        x.copy_from_slice(&bytes[..8]);
        y.copy_from_slice(&bytes[8..]);
        Vec2 {
            x: f64::from_le_bytes(x),
            y: f64::from_le_bytes(y),
        }
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vec2) -> Point2 {
        Point2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x * rhs,
            y: self.y * rhs,
        }
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x / rhs,
            y: self.y / rhs,
        }
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2 { x, y }
    }
}

impl From<Point2> for (f64, f64) {
    #[inline]
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn point_vector_arithmetic() {
        let a = p(1.0, 2.0);
        let b = p(4.0, 6.0);
        let v = b - a;
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(a + v, b);
        assert_eq!(b - v, a);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn cross_sign_convention() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert_eq!(e1.cross(e2), 1.0, "ccw turn is positive");
        assert_eq!(e2.cross(e1), -1.0, "cw turn is negative");
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let v = Vec2::new(3.0, 1.0);
        let w = v.perp();
        assert_eq!(v.dot(w), 0.0);
        assert!(v.cross(w) > 0.0);
        assert_eq!(w.norm_sq(), v.norm_sq());
    }

    #[test]
    fn from_angle_and_rotate_agree() {
        for i in 0..16 {
            let theta = i as f64 * core::f64::consts::TAU / 16.0;
            let a = Vec2::from_angle(theta);
            let b = Vec2::new(1.0, 0.0).rotate(theta);
            assert!((a - b).norm() < 1e-12, "theta={theta}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn angle_roundtrip() {
        for i in 1..32 {
            let theta = -core::f64::consts::PI + i as f64 * core::f64::consts::TAU / 32.0;
            let v = Vec2::from_angle(theta);
            assert!((v.angle() - theta).abs() < 1e-12);
        }
    }

    #[test]
    fn lerp_and_midpoint() {
        let a = p(0.0, 0.0);
        let b = p(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), p(1.0, 2.0));
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec2::ZERO.normalized().is_none());
        let v = Vec2::new(0.0, -7.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-15);
        assert_eq!(v, Vec2::new(0.0, -1.0));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use core::cmp::Ordering::*;
        assert_eq!(p(0.0, 9.0).lex_cmp(p(1.0, 0.0)), Less);
        assert_eq!(p(1.0, 0.0).lex_cmp(p(1.0, 2.0)), Less);
        assert_eq!(p(1.0, 2.0).lex_cmp(p(1.0, 2.0)), Equal);
        assert_eq!(p(2.0, 0.0).lex_cmp(p(1.0, 5.0)), Greater);
    }

    #[test]
    fn scalar_ops() {
        let v = Vec2::new(1.0, -2.0);
        assert_eq!(v * 2.0, Vec2::new(2.0, -4.0));
        assert_eq!(2.0 * v, v * 2.0);
        assert_eq!(v / 2.0, Vec2::new(0.5, -1.0));
        assert_eq!(-v, Vec2::new(-1.0, 2.0));
    }

    #[test]
    fn support_dot() {
        let p0 = p(3.0, 4.0);
        let d = Vec2::from_angle(0.0);
        assert!((p0.dot(d) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn le_bytes_round_trip_is_bit_exact() {
        for (x, y) in [
            (0.0, -0.0),
            (1.5, -2.25e17),
            (f64::MIN_POSITIVE, f64::MAX),
            (f64::NEG_INFINITY, f64::NAN),
        ] {
            let pt = Point2::new(x, y);
            let back = Point2::from_le_bytes(pt.to_le_bytes());
            assert_eq!(pt.x.to_bits(), back.x.to_bits());
            assert_eq!(pt.y.to_bits(), back.y.to_bits());
            let v = Vec2::new(x, y);
            let vb = Vec2::from_le_bytes(v.to_le_bytes());
            assert_eq!(v.x.to_bits(), vb.x.to_bits());
            assert_eq!(v.y.to_bits(), vb.y.to_bits());
        }
    }
}
