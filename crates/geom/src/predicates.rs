//! Robust geometric predicates.
//!
//! The workhorse is [`orient2d`]: the sign of the area of triangle `(a, b, c)`.
//! It is evaluated with a cheap floating-point filter first; when the filter
//! cannot certify the sign, an exact evaluation using
//! [expansion arithmetic](crate::expansion) decides it. The result is the
//! *exact* sign for all finite inputs, which is what keeps hull construction,
//! point location, and tangent searches from ever producing a non-convex
//! "convex" polygon.

use crate::expansion::{expansion_sign, expansion_sum, two_diff, two_product};
use crate::point::Point2;
use core::cmp::Ordering;

/// Which side of the directed line `a -> b` the point `c` lies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// `c` is strictly to the left of `a -> b` (counterclockwise turn).
    CounterClockwise,
    /// `c` is strictly to the right of `a -> b` (clockwise turn).
    Clockwise,
    /// `a`, `b`, `c` are exactly collinear.
    Collinear,
}

impl Orientation {
    /// Converts a sign `Ordering` (of the orientation determinant) into an
    /// `Orientation`.
    #[inline]
    pub fn from_sign(sign: Ordering) -> Self {
        match sign {
            Ordering::Greater => Orientation::CounterClockwise,
            Ordering::Less => Orientation::Clockwise,
            Ordering::Equal => Orientation::Collinear,
        }
    }

    /// The opposite orientation (collinear maps to itself).
    #[inline]
    pub fn reversed(self) -> Self {
        match self {
            Orientation::CounterClockwise => Orientation::Clockwise,
            Orientation::Clockwise => Orientation::CounterClockwise,
            Orientation::Collinear => Orientation::Collinear,
        }
    }
}

/// Error bound coefficient for the orientation filter, from Shewchuk:
/// `(3 + 16 * eps) * eps` with `eps = 2^-53` (half an ulp of 1.0).
const ORIENT2D_FILTER: f64 = {
    let eps = f64::EPSILON * 0.5;
    (3.0 + 16.0 * eps) * eps
};

/// Exact sign of the orientation determinant
/// `(b.x - a.x)(c.y - a.y) - (b.y - a.y)(c.x - a.x)`.
///
/// Positive = `c` left of `a -> b`; negative = right; zero = collinear.
#[inline]
pub fn orient2d_sign(a: Point2, b: Point2, c: Point2) -> Ordering {
    let detleft = (b.x - a.x) * (c.y - a.y);
    let detright = (b.y - a.y) * (c.x - a.x);
    let det = detleft - detright;

    // Fast path: the filter certifies the sign when |det| is comfortably
    // larger than the worst-case rounding error of the expression.
    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return Ordering::Greater;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return Ordering::Less;
        }
        -detleft - detright
    } else {
        // detleft == 0: sign is the sign of -detright, already exact
        // (a product of two exact differences? No — the differences round,
        // so fall through to exact evaluation unless detright is zero too).
        if detright == 0.0 {
            return Ordering::Equal;
        }
        return orient2d_exact(a, b, c);
    };

    let errbound = ORIENT2D_FILTER * detsum;
    if det > errbound {
        Ordering::Greater
    } else if det < -errbound {
        Ordering::Less
    } else {
        orient2d_exact(a, b, c)
    }
}

/// Exact (slow path) evaluation of the orientation determinant sign using
/// expansion arithmetic. The full determinant expanded over the coordinate
/// differences has 16 product terms; we compute it as an exact expansion of
/// at most 16 components.
#[cold]
fn orient2d_exact(a: Point2, b: Point2, c: Point2) -> Ordering {
    // det = (bx*cy - bx*ay - ax*cy) - (by*cx - by*ax - ay*cx)
    //     + (ax*ay - ay*ax)   [zero, omitted]
    // Use the standard exact formulation:
    // det = (b.x - a.x)(c.y - a.y) - (b.y - a.y)(c.x - a.x)
    // with exact differences and exact products.
    let (bx_ax, e_bx_ax) = two_diff(b.x, a.x);
    let (cy_ay, e_cy_ay) = two_diff(c.y, a.y);
    let (by_ay, e_by_ay) = two_diff(b.y, a.y);
    let (cx_ax, e_cx_ax) = two_diff(c.x, a.x);

    // Each factor is an exact 2-component expansion (err, main).
    // Product of two 2-expansions = sum of four exact products
    // = expansion with <= 8 components. Difference of two such products
    // <= 16 components.
    let (left, nl) = mul_expansion2(e_bx_ax, bx_ax, e_cy_ay, cy_ay);
    let (mut right, nr) = mul_expansion2(e_by_ay, by_ay, e_cx_ax, cx_ax);
    for x in right[..nr].iter_mut() {
        *x = -*x;
    }
    let mut out = [0.0f64; 32];
    let n = expansion_sum(&left[..nl], &right[..nr], &mut out);
    expansion_sign(&out[..n])
}

/// Multiplies two exact 2-component expansions `(e0 + e1) * (f0 + f1)`
/// (each given as low component then high component), returning an exact
/// expansion of at most 8 components as `(storage, length)`. Stack-only:
/// the exact fallback must not allocate — it sits on the ingestion hot
/// path whenever the floating-point filter fails (collinear-heavy and
/// integer-grid streams hit it constantly).
fn mul_expansion2(e0: f64, e1: f64, f0: f64, f1: f64) -> ([f64; 8], usize) {
    let mut acc = [0.0f64; 8];
    let mut len = 0usize;
    let mut out = [0.0f64; 8];
    for (x, y) in [(e0, f0), (e0, f1), (e1, f0), (e1, f1)] {
        let (hi, lo) = two_product(x, y);
        for term in [lo, hi] {
            if term != 0.0 || len == 0 {
                let n = crate::expansion::grow_expansion(&acc[..len], term, &mut out);
                acc[..n].copy_from_slice(&out[..n]);
                len = n;
            }
        }
    }
    (acc, len)
}

/// Orientation of the triple `(a, b, c)`.
#[inline]
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> Orientation {
    Orientation::from_sign(orient2d_sign(a, b, c))
}

/// `true` iff `c` lies strictly to the left of the directed line `a -> b`.
#[inline]
pub fn is_left(a: Point2, b: Point2, c: Point2) -> bool {
    orient2d_sign(a, b, c) == Ordering::Greater
}

/// `true` iff `c` lies strictly to the right of the directed line `a -> b`.
#[inline]
pub fn is_right(a: Point2, b: Point2, c: Point2) -> bool {
    orient2d_sign(a, b, c) == Ordering::Less
}

/// `true` iff the three points are exactly collinear.
#[inline]
pub fn collinear(a: Point2, b: Point2, c: Point2) -> bool {
    orient2d_sign(a, b, c) == Ordering::Equal
}

/// `true` when `x` is unusable as a norm or denominator: zero, subnormal,
/// infinite, or NaN. This is the one guard the workspace uses in place of
/// raw `== 0.0` denominator checks (which the float-cmp lint rejects): it
/// catches the exact-zero case those checks were after, plus the subnormal
/// and non-finite inputs that make the subsequent division meaningless.
#[inline]
pub fn degenerate_norm(x: f64) -> bool {
    !x.is_normal()
}

/// `true` iff point `p` lies on the closed segment `a..b` (exact).
pub fn on_segment(a: Point2, b: Point2, p: Point2) -> bool {
    if !collinear(a, b, p) {
        return false;
    }
    // Collinear: check the box.
    let (minx, maxx) = if a.x <= b.x { (a.x, b.x) } else { (b.x, a.x) };
    let (miny, maxy) = if a.y <= b.y { (a.y, b.y) } else { (b.y, a.y) };
    minx <= p.x && p.x <= maxx && miny <= p.y && p.y <= maxy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn basic_orientations() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        assert_eq!(orient2d(a, b, p(0.5, 1.0)), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, b, p(0.5, -1.0)), Orientation::Clockwise);
        assert_eq!(orient2d(a, b, p(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn reversal_flips() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 1.0);
        let c = p(0.0, 1.0);
        assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
    }

    #[test]
    fn near_degenerate_is_exact() {
        // Classic filter-buster: points nearly on the line y = x, offset by
        // one ulp. Naive evaluation returns 0 or the wrong sign for some of
        // these; the exact predicate must be consistent.
        let a = p(12.0, 12.0);
        let b = p(24.0, 24.0);
        let ulp = f64::EPSILON;
        let above = p(0.5, 0.5 + 0.5 * ulp);
        let below = p(0.5, 0.5 - 0.5 * ulp);
        let on = p(0.5, 0.5);
        assert_eq!(orient2d(a, b, above), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, b, below), Orientation::Clockwise);
        assert_eq!(orient2d(a, b, on), Orientation::Collinear);
    }

    #[test]
    fn tiny_perturbation_grid() {
        // Shewchuk's classic stress test: c = (0.5 + i*eps, 0.5 + j*eps)
        // against the line through (12,12)-(24,24). The sign must equal the
        // sign of (j - i) computed in exact arithmetic.
        let a = p(12.0, 12.0);
        let b = p(24.0, 24.0);
        let eps = f64::EPSILON;
        for i in -4i32..=4 {
            for j in -4i32..=4 {
                let c = p(0.5 + i as f64 * eps, 0.5 + j as f64 * eps);
                let expect = match (j - i).cmp(&0) {
                    Ordering::Greater => Orientation::CounterClockwise,
                    Ordering::Less => Orientation::Clockwise,
                    Ordering::Equal => Orientation::Collinear,
                };
                assert_eq!(orient2d(a, b, c), expect, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn consistency_under_cyclic_permutation() {
        let a = p(0.1, 0.7);
        let b = p(-3.0, 2.5);
        let c = p(1.5, -0.25);
        let o = orient2d(a, b, c);
        assert_eq!(orient2d(b, c, a), o);
        assert_eq!(orient2d(c, a, b), o);
    }

    #[test]
    fn on_segment_cases() {
        let a = p(0.0, 0.0);
        let b = p(4.0, 2.0);
        assert!(on_segment(a, b, p(2.0, 1.0)));
        assert!(on_segment(a, b, a));
        assert!(on_segment(a, b, b));
        assert!(!on_segment(a, b, p(6.0, 3.0)), "collinear but outside");
        assert!(!on_segment(a, b, p(2.0, 1.1)));
    }

    #[test]
    fn large_coordinates() {
        // Coordinates near 2^50: products overflow 53-bit precision but not
        // the exponent range; exact path must still decide correctly.
        let s = (2.0f64).powi(50);
        let a = p(s, s);
        let b = p(s + 2.0, s + 2.0);
        let c_above = p(s + 1.0, s + 1.0 + (2.0f64).powi(-2));
        let c_on = p(s + 1.0, s + 1.0);
        assert_eq!(orient2d(a, b, c_above), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, b, c_on), Orientation::Collinear);
    }
}
