//! Rotating calipers on convex polygons: diameter, width, and antipodal
//! pairs (paper §6, "Diameter" and "Width or Directional Extent").

use crate::point::{Point2, Vec2};
use crate::polygon::ConvexPolygon;
use core::cmp::Ordering;

/// If every vertex of `v` lies on one line (including duplicate-vertex
/// chains), returns the two extreme points of that line segment together
/// with their distance. `None` when the vertices genuinely span two
/// dimensions.
///
/// Collinear cycles cannot come out of [`ConvexPolygon::from_ccw`], but
/// [`ConvexPolygon::from_ccw_unchecked`] admits them in release builds, so
/// the calipers entry points guard with this `O(n)` pre-pass instead of
/// relying on an invariant they cannot see.
fn collinear_extremes(v: &[Point2]) -> Option<(Point2, Point2, f64)> {
    let anchor = v[0];
    let far = v
        .iter()
        .copied()
        .max_by(|a, b| anchor.distance_sq(*a).total_cmp(&anchor.distance_sq(*b)))?;
    if v.iter()
        .any(|&p| crate::predicates::orient2d_sign(anchor, far, p) != Ordering::Equal)
    {
        return None;
    }
    // All points lie on the line through `anchor` and `far`; along a line,
    // lexicographic (x, then y) order is the order of the points, so the
    // lexicographic extremes are the segment endpoints.
    let key = |p: &Point2| (p.x, p.y);
    let lo = v
        .iter()
        .copied()
        .min_by(|a, b| key(a).partial_cmp(&key(b)).unwrap_or(Ordering::Equal))?;
    let hi = v
        .iter()
        .copied()
        .max_by(|a, b| key(a).partial_cmp(&key(b)).unwrap_or(Ordering::Equal))?;
    Some((lo, hi, lo.distance(hi)))
}

/// Diameter of a convex polygon: the farthest pair of vertices and their
/// distance, by rotating calipers in `O(n)`.
///
/// Every degenerate hull has a defined answer:
///
/// * empty polygon → `None` (there is no vertex pair);
/// * single point `p` → `Some((p, p, 0.0))`;
/// * segment → the segment endpoints and their distance;
/// * collinear chain (only reachable via
///   [`ConvexPolygon::from_ccw_unchecked`]) → the two extreme points of
///   the chain, found by an `O(n)` scan rather than the calipers advance,
///   which assumes strict convexity.
pub fn diameter(poly: &ConvexPolygon) -> Option<(Point2, Point2, f64)> {
    let v = poly.vertices();
    let n = v.len();
    match n {
        0 => None,
        1 => Some((v[0], v[0], 0.0)),
        2 => Some((v[0], v[1], v[0].distance(v[1]))),
        _ => {
            if let Some(deg) = collinear_extremes(v) {
                return Some(deg);
            }
            let mut best = (v[0], v[1], 0.0f64);
            let mut j = 1usize;
            let area2 = |a: Point2, b: Point2, c: Point2| ((b - a).cross(c - a)).abs();
            for i in 0..n {
                let ni = (i + 1) % n;
                // Advance j while the triangle on edge (i, i+1) keeps growing.
                while area2(v[i], v[ni], v[(j + 1) % n]) > area2(v[i], v[ni], v[j]) {
                    j = (j + 1) % n;
                }
                for &(a, b) in &[(v[i], v[j]), (v[ni], v[j])] {
                    let d = a.distance(b);
                    if d > best.2 {
                        best = (a, b, d);
                    }
                }
            }
            Some(best)
        }
    }
}

/// Diameter by brute force over all vertex pairs, `O(n²)`. Reference
/// implementation for tests. Degenerate conventions match [`diameter`]:
/// `None` when empty, `Some(0.0)` for a single point.
pub fn diameter_brute(poly: &ConvexPolygon) -> Option<f64> {
    let v = poly.vertices();
    if v.is_empty() {
        return None;
    }
    let mut best = 0.0f64;
    for i in 0..v.len() {
        for j in (i + 1)..v.len() {
            best = best.max(v[i].distance(v[j]));
        }
    }
    Some(best)
}

/// Width of a convex polygon: the minimum distance between two parallel
/// supporting lines, by rotating calipers in `O(n)`.
///
/// Degenerate hulls have zero width by definition, and each case returns
/// exactly `0.0`: the empty polygon, a single point, a segment, and a
/// collinear chain smuggled past validation via
/// [`ConvexPolygon::from_ccw_unchecked`] (detected by an `O(n)` pre-pass;
/// the per-edge distance scan below would otherwise report a spurious
/// near-zero value derived from rounding noise).
pub fn width(poly: &ConvexPolygon) -> f64 {
    let v = poly.vertices();
    let n = v.len();
    if n < 3 || collinear_extremes(v).is_some() {
        return 0.0;
    }
    // The width is attained with one supporting line flush with an edge.
    // For each edge, find the farthest vertex (advanced monotonically).
    let mut best = f64::INFINITY;
    let mut j = 1usize;
    let dist_to_edge_line = |i: usize, k: usize| -> f64 {
        let a = v[i];
        let b = v[(i + 1) % n];
        let d = b - a;
        let len = d.norm();
        if crate::predicates::degenerate_norm(len) {
            return 0.0;
        }
        (d.cross(v[k] - a)).abs() / len
    };
    for i in 0..n {
        while dist_to_edge_line(i, (j + 1) % n) > dist_to_edge_line(i, j) {
            j = (j + 1) % n;
        }
        best = best.min(dist_to_edge_line(i, j));
    }
    best
}

/// Width by brute force: for each edge direction, project all vertices,
/// `O(n²)`. Reference implementation for tests.
pub fn width_brute(poly: &ConvexPolygon) -> f64 {
    let v = poly.vertices();
    let n = v.len();
    if n < 3 {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for i in 0..n {
        let d = v[(i + 1) % n] - v[i];
        let normal = match d.perp().normalized() {
            Some(u) => u,
            None => continue,
        };
        let proj: Vec<f64> = v.iter().map(|&p| p.dot(normal)).collect();
        let lo = proj.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = proj.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        best = best.min(hi - lo);
    }
    best
}

/// The farthest vertex of the polygon from a query point, `O(n)`.
/// (The farthest point of a convex set from any point is a vertex.)
pub fn farthest_vertex(poly: &ConvexPolygon, q: Point2) -> Option<Point2> {
    poly.vertices()
        .iter()
        .copied()
        .max_by(|a, b| q.distance_sq(*a).total_cmp(&q.distance_sq(*b)))
}

/// Smallest enclosing axis-aligned bounding box `(min, max)` of the
/// polygon's vertices.
pub fn bounding_box(poly: &ConvexPolygon) -> Option<(Point2, Point2)> {
    let v = poly.vertices();
    if v.is_empty() {
        return None;
    }
    let mut min = v[0];
    let mut max = v[0];
    for &p in &v[1..] {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    Some((min, max))
}

/// Direction of the diameter (unit vector from one attaining vertex to the
/// other), if defined.
pub fn diameter_direction(poly: &ConvexPolygon) -> Option<Vec2> {
    let (a, b, _) = diameter(poly)?;
    (b - a).normalized()
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn regular_ngon(n: usize, radius: f64) -> ConvexPolygon {
        let verts: Vec<Point2> = (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / n as f64;
                p(radius * t.cos(), radius * t.sin())
            })
            .collect();
        ConvexPolygon::from_ccw(verts).unwrap()
    }

    #[test]
    fn rectangle_diameter_and_width() {
        let rect =
            ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 3.0), p(0.0, 3.0)])
                .unwrap();
        let (_, _, d) = diameter(&rect).unwrap();
        assert!((d - 5.0).abs() < 1e-12);
        assert!((width(&rect) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ngon_diameter_matches_brute() {
        for n in [3usize, 4, 5, 6, 7, 12, 33, 100] {
            let poly = regular_ngon(n, 2.5);
            let fast = diameter(&poly).unwrap().2;
            let brute = diameter_brute(&poly).unwrap();
            assert!((fast - brute).abs() < 1e-12, "n = {n}: {fast} vs {brute}");
        }
    }

    #[test]
    fn ngon_width_matches_brute() {
        for n in [3usize, 4, 5, 6, 7, 12, 33, 100] {
            let poly = regular_ngon(n, 2.5);
            let fast = width(&poly);
            let brute = width_brute(&poly);
            assert!((fast - brute).abs() < 1e-9, "n = {n}: {fast} vs {brute}");
        }
    }

    #[test]
    fn random_hulls_match_brute() {
        let mut seed = 7u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..50 {
            let pts: Vec<Point2> = (0..40)
                .map(|_| p(next() * 10.0 - 5.0, next() * 4.0 - 2.0))
                .collect();
            let poly = ConvexPolygon::hull_of(&pts);
            if poly.len() < 3 {
                continue;
            }
            let fd = diameter(&poly).unwrap().2;
            let bd = diameter_brute(&poly).unwrap();
            assert!((fd - bd).abs() < 1e-9, "trial {trial} diameter");
            let fw = width(&poly);
            let bw = width_brute(&poly);
            assert!((fw - bw).abs() < 1e-9, "trial {trial} width {fw} vs {bw}");
        }
    }

    #[test]
    fn degenerate_cases() {
        // Empty: no vertex pair exists.
        assert!(diameter(&ConvexPolygon::empty()).is_none());
        assert!(diameter_brute(&ConvexPolygon::empty()).is_none());
        assert_eq!(width(&ConvexPolygon::empty()), 0.0);
        // Point: the farthest "pair" is the point itself, at distance 0.
        let one = ConvexPolygon::from_ccw(vec![p(1.0, 1.0)]).unwrap();
        assert_eq!(diameter(&one), Some((p(1.0, 1.0), p(1.0, 1.0), 0.0)));
        assert_eq!(diameter_brute(&one), Some(0.0));
        assert_eq!(width(&one), 0.0);
        // Segment: its endpoints, and exactly zero width.
        let seg = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(3.0, 4.0)]).unwrap();
        let (_, _, d) = diameter(&seg).unwrap();
        assert_eq!(d, 5.0);
        assert_eq!(width(&seg), 0.0);
    }

    #[test]
    fn collinear_chain_gets_exact_extremes() {
        // A collinear ≥3-vertex cycle is rejected by from_ccw but reachable
        // through from_ccw_unchecked in release builds; the calipers must
        // still return the true farthest pair instead of a pair stuck at
        // the monotone-advance start.
        for verts in [
            vec![p(0.0, 0.0), p(1.0, 1.0), p(3.0, 3.0), p(2.0, 2.0)],
            vec![p(5.0, -1.0), p(5.0, 4.0), p(5.0, 2.0)], // vertical line
            vec![p(-2.0, 0.5), p(4.0, 0.5), p(1.0, 0.5), p(4.0, 0.5)], // duplicate vertex
        ] {
            let chain = ConvexPolygon::from_ccw_unvalidated(verts.clone());
            let (a, b, d) = diameter(&chain).unwrap();
            let brute = diameter_brute(&chain).unwrap();
            assert_eq!(d, brute, "chain {verts:?}");
            assert_eq!(d, a.distance(b));
            assert_eq!(width(&chain), 0.0, "collinear chains have zero width");
        }
    }

    #[test]
    fn skinny_ellipse_width_much_smaller_than_diameter() {
        // The case the paper highlights: width << diameter.
        let verts: Vec<Point2> = (0..64)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / 64.0;
                p(16.0 * t.cos(), t.sin())
            })
            .collect();
        let poly = ConvexPolygon::hull_of(&verts);
        let d = diameter(&poly).unwrap().2;
        let w = width(&poly);
        assert!(d > 31.9);
        assert!(w < 2.1);
        assert!(d / w > 14.0);
    }

    #[test]
    fn farthest_vertex_and_bbox() {
        let rect =
            ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 3.0), p(0.0, 3.0)])
                .unwrap();
        assert_eq!(farthest_vertex(&rect, p(0.1, 0.1)), Some(p(4.0, 3.0)));
        let (min, max) = bounding_box(&rect).unwrap();
        assert_eq!(min, p(0.0, 0.0));
        assert_eq!(max, p(4.0, 3.0));
        assert!(bounding_box(&ConvexPolygon::empty()).is_none());
    }

    #[test]
    fn diameter_direction_is_unit() {
        let poly = regular_ngon(12, 3.0);
        let d = diameter_direction(&poly).unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
    }
}
