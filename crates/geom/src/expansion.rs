//! Error-free floating-point expansion arithmetic.
//!
//! An *expansion* is a sum of `f64` components, ordered by increasing
//! magnitude and non-overlapping in their bit ranges, that represents a real
//! number exactly. The primitives here (`two_sum`, `two_product`,
//! `grow_expansion`, `expansion_sum`, ...) are the classic building blocks
//! from Shewchuk, "Adaptive Precision Floating-Point Arithmetic and Fast
//! Robust Geometric Predicates" (1997). They let [`crate::predicates`]
//! evaluate the orientation determinant exactly when the floating-point
//! filter cannot certify a sign.
//!
//! Only what the predicates need is implemented — this is not a general
//! arbitrary-precision library — but every primitive is exact for all finite
//! inputs whose intermediate values do not overflow.

/// Exact sum: returns `(hi, lo)` with `hi + lo == a + b` exactly and
/// `hi == fl(a + b)`.
///
/// This is the branch-free "TwoSum" of Knuth; it does not require
/// `|a| >= |b|`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let b_virtual = hi - a;
    let a_virtual = hi - b_virtual;
    let b_round = b - b_virtual;
    let a_round = a - a_virtual;
    (hi, a_round + b_round)
}

/// Exact sum under the precondition `|a| >= |b|` (or `a == 0`): "FastTwoSum".
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(a == 0.0 || a.abs() >= b.abs() || !a.is_finite() || !b.is_finite());
    let hi = a + b;
    let lo = b - (hi - a);
    (hi, lo)
}

/// Exact difference: `(hi, lo)` with `hi + lo == a - b` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let b_virtual = a - hi;
    let a_virtual = hi + b_virtual;
    let b_round = b_virtual - b;
    let a_round = a - a_virtual;
    (hi, a_round + b_round)
}

/// Exact product via fused multiply-add: `(hi, lo)` with
/// `hi + lo == a * b` exactly and `hi == fl(a * b)`.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    // fma(a, b, -hi) computes the rounding error of the product exactly.
    let lo = f64::mul_add(a, b, -hi);
    (hi, lo)
}

/// Adds a single `f64` to an expansion, producing a (possibly longer)
/// expansion. `e` must be a valid nonoverlapping expansion in increasing
/// magnitude order; the output written to `out` has the same property.
///
/// Returns the number of components written (`e.len() + 1` at most).
pub fn grow_expansion(e: &[f64], b: f64, out: &mut [f64]) -> usize {
    debug_assert!(out.len() > e.len());
    let mut q = b;
    let mut n = 0;
    for &ei in e {
        let (sum, err) = two_sum(q, ei);
        if err != 0.0 {
            out[n] = err;
            n += 1;
        }
        q = sum;
    }
    if q != 0.0 || n == 0 {
        out[n] = q;
        n += 1;
    }
    n
}

/// Adds two expansions. Both inputs must be valid expansions; the result is
/// a valid expansion. Returns the number of components written.
pub fn expansion_sum(e: &[f64], f: &[f64], out: &mut [f64]) -> usize {
    debug_assert!(out.len() >= e.len() + f.len());
    // Simple repeated grow_expansion; fine for the tiny expansions (<= 16
    // components) used by the predicates.
    let mut tmp = [0.0f64; 32];
    debug_assert!(e.len() + f.len() <= 32);
    let mut n = e.len();
    tmp[..n].copy_from_slice(e);
    let mut buf = [0.0f64; 32];
    for &fi in f {
        let m = grow_expansion(&tmp[..n], fi, &mut buf);
        tmp[..m].copy_from_slice(&buf[..m]);
        n = m;
    }
    out[..n].copy_from_slice(&tmp[..n]);
    n
}

/// Estimates the value of an expansion by summing components smallest first.
/// The sign of the estimate equals the sign of the exact value when the
/// expansion is valid (largest component dominates).
#[inline]
pub fn estimate(e: &[f64]) -> f64 {
    let mut q = 0.0;
    for &c in e {
        q += c;
    }
    q
}

/// Sign of the exact value of a valid expansion: the sign of its largest
/// (last nonzero) component.
#[inline]
pub fn expansion_sign(e: &[f64]) -> core::cmp::Ordering {
    for &c in e.iter().rev() {
        if c > 0.0 {
            return core::cmp::Ordering::Greater;
        }
        if c < 0.0 {
            return core::cmp::Ordering::Less;
        }
    }
    core::cmp::Ordering::Equal
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn two_sum_is_exact() {
        // 1.0 + 2^-60: the low word must carry the bit that hi drops.
        let a = 1.0;
        let b = (2.0f64).powi(-60);
        let (hi, lo) = two_sum(a, b);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, b);
        // Exactness: hi + lo reconstructs in extended precision.
        assert_eq!(hi + lo, a + b); // same rounding, sanity only
    }

    #[test]
    fn two_diff_is_exact() {
        let a = 1.0 + (2.0f64).powi(-52);
        let b = (2.0f64).powi(-53);
        let (hi, lo) = two_diff(a, b);
        // a - b is not representable; hi+lo must carry the full value.
        // Verify via integer reasoning: multiply everything by 2^53.
        let scale = (2.0f64).powi(53);
        assert_eq!((hi * scale) + (lo * scale), (a * scale) - (b * scale));
    }

    #[test]
    fn two_product_error_term() {
        let a = 1.0 + (2.0f64).powi(-30);
        let b = 1.0 + (2.0f64).powi(-30);
        let (hi, lo) = two_product(a, b);
        // Exact product is 1 + 2^-29 + 2^-60; hi misses the 2^-60 term.
        assert_eq!(hi, 1.0 + (2.0f64).powi(-29));
        assert_eq!(lo, (2.0f64).powi(-60));
    }

    /// Checks that expansion `e` exactly equals the sum of `parts` by
    /// subtracting each part and testing the exact sign of the remainder.
    fn assert_exactly_equals(e: &[f64], parts: &[f64]) {
        let mut acc: Vec<f64> = e.to_vec();
        let mut out = [0.0; 32];
        for &p in parts {
            let n = grow_expansion(&acc, -p, &mut out);
            acc = out[..n].to_vec();
        }
        assert_eq!(expansion_sign(&acc), Ordering::Equal, "residual {acc:?}");
    }

    #[test]
    fn grow_expansion_accumulates_exactly() {
        // Build 1 + 2^-80 + 2^-40 by growing an expansion; the exact value
        // must be carried in full even though no single f64 can hold it.
        let mut out = [0.0; 4];
        let e = [(2.0f64).powi(-80)];
        let n = grow_expansion(&e, 1.0, &mut out);
        let e2: Vec<f64> = out[..n].to_vec();
        let mut out2 = [0.0; 4];
        let n2 = grow_expansion(&e2, (2.0f64).powi(-40), &mut out2);
        let total: Vec<f64> = out2[..n2].to_vec();
        assert_exactly_equals(&total, &[1.0, (2.0f64).powi(-40), (2.0f64).powi(-80)]);
    }

    #[test]
    fn expansion_sum_merges() {
        let e = [(2.0f64).powi(-70), 1.0];
        let f = [(2.0f64).powi(-90), 4.0];
        let mut out = [0.0; 8];
        let n = expansion_sum(&e, &f, &mut out);
        let s = &out[..n];
        assert_eq!(estimate(s), 5.0);
        assert_eq!(expansion_sign(s), Ordering::Greater);
        // The tiny terms must survive exactly.
        assert_exactly_equals(s, &[5.0, (2.0f64).powi(-70), (2.0f64).powi(-90)]);
    }

    #[test]
    fn expansion_sign_cases() {
        assert_eq!(expansion_sign(&[]), Ordering::Equal);
        assert_eq!(expansion_sign(&[0.0]), Ordering::Equal);
        assert_eq!(expansion_sign(&[-1e-300, 1.0]), Ordering::Greater);
        assert_eq!(expansion_sign(&[1e-300, -1.0]), Ordering::Less);
    }

    #[test]
    fn cancellation_keeps_sign() {
        // (a + tiny) - a must yield exactly tiny.
        let a = 1e16;
        let tiny = 1.0;
        let (s1, e1) = two_sum(a, tiny);
        let (s2, e2) = two_diff(s1, a);
        // s2 + e2 + e1 == tiny exactly.
        let mut out = [0.0; 4];
        let n = grow_expansion(&[e1], s2, &mut out);
        let mut out2 = [0.0; 8];
        let m = grow_expansion(&out[..n], e2, &mut out2);
        assert_eq!(estimate(&out2[..m]), tiny);
    }
}
