//! Logarithmic-time searches on convex polygons.
//!
//! These are the primitives behind the paper's `O(log r)` per-point stream
//! processing (§3.1): point-in-convex-polygon by fan binary search (exact,
//! via the robust orientation predicate) and extreme-vertex location by the
//! classic chain binary search.

use crate::point::{Point2, Vec2};
use crate::polygon::ConvexPolygon;
use crate::predicates::{on_segment, orient2d_sign};
use core::cmp::Ordering;

/// Exact containment test (boundary inclusive) in `O(log n)`.
///
/// Agrees with [`ConvexPolygon::contains_linear`] on every input (tested by
/// property tests).
pub fn contains(poly: &ConvexPolygon, q: Point2) -> bool {
    let v = poly.vertices();
    let n = v.len();
    match n {
        0 => return false,
        1 => return v[0] == q,
        2 => return on_segment(v[0], v[1], q),
        _ => {}
    }
    // Fan around v[0]. First handle the two boundary rays exactly.
    match orient2d_sign(v[0], v[1], q) {
        Ordering::Less => return false,
        Ordering::Equal => return on_segment(v[0], v[1], q),
        Ordering::Greater => {}
    }
    match orient2d_sign(v[0], v[n - 1], q) {
        Ordering::Greater => return false,
        Ordering::Equal => return on_segment(v[0], v[n - 1], q),
        Ordering::Less => {}
    }
    // Invariant: q strictly left of ray v0->v[lo], strictly right of ray
    // v0->v[hi].
    let mut lo = 1usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if orient2d_sign(v[0], v[mid], q) != Ordering::Less {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    orient2d_sign(v[lo], v[hi], q) != Ordering::Less
}

/// Index of a vertex attaining the maximum dot product with `dir`, found by
/// binary search on the two monotone chains (`O(log n)`).
///
/// Requires a strictly convex polygon with at least one vertex and a nonzero
/// direction. Dot products are compared in plain `f64`; when several
/// vertices tie to within rounding, any of the near-maximal vertices may be
/// returned (their support values agree to machine precision, which is what
/// the callers consume).
pub fn extreme_vertex(poly: &ConvexPolygon, dir: Vec2) -> usize {
    let v = poly.vertices();
    let n = v.len();
    assert!(n >= 1, "extreme_vertex on empty polygon");
    if n <= 2 {
        return if n == 2 && v[1].dot(dir) > v[0].dot(dir) {
            1
        } else {
            0
        };
    }
    let dot = |i: usize| v[i % n].dot(dir);
    let sgn = |x: f64| -> i32 {
        if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            0
        }
    };
    // cmp(i, j) > 0 iff vertex j has strictly larger dot than vertex i.
    let cmp = |i: usize, j: usize| sgn(dot(j) - dot(i));
    // extr(i): dot increases strictly into i and does not increase out of it
    // (the canonical "first maximum" condition).
    let extr = |i: usize| cmp(i + 1, i) >= 0 && cmp(i, i + n - 1) < 0;

    if extr(0) {
        return 0;
    }
    let mut lo = 0usize;
    let mut hi = n;
    while lo + 1 < hi {
        let m = (lo + hi) / 2;
        if extr(m) {
            return m;
        }
        let ls = cmp(lo + 1, lo);
        let ms = cmp(m + 1, m);
        let go_left = ls < ms || (ls == ms && ls == cmp(lo, m));
        if go_left {
            hi = m;
        } else {
            lo = m;
        }
    }
    lo
}

/// The extent of the polygon in direction `dir`: the distance between the
/// two supporting lines perpendicular to `dir` (in units of `|dir|`
/// projections divided by `|dir|`, i.e. true Euclidean width along `dir`).
///
/// `O(log n)`. Returns 0 for polygons with fewer than 2 vertices.
pub fn directional_extent(poly: &ConvexPolygon, dir: Vec2) -> f64 {
    if poly.len() < 2 {
        return 0.0;
    }
    let norm = dir.norm();
    if crate::predicates::degenerate_norm(norm) {
        return 0.0;
    }
    let hi = poly.vertex(extreme_vertex(poly, dir)).dot(dir);
    let lo = poly.vertex(extreme_vertex(poly, -dir)).dot(dir);
    (hi - lo) / norm
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn regular_ngon(n: usize, radius: f64) -> ConvexPolygon {
        let verts: Vec<Point2> = (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / n as f64;
                p(radius * t.cos(), radius * t.sin())
            })
            .collect();
        ConvexPolygon::from_ccw(verts).expect("regular n-gon is strictly convex")
    }

    #[test]
    fn contains_matches_linear_on_ngon() {
        let poly = regular_ngon(17, 3.0);
        let mut seed = 123456789u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
        };
        for _ in 0..2000 {
            let q = p(next(), next());
            assert_eq!(contains(&poly, q), poly.contains_linear(q), "q = {q:?}");
        }
    }

    #[test]
    fn contains_boundary_cases() {
        let sq = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)])
            .unwrap();
        // Vertices, edge midpoints, just outside each edge.
        for &v in sq.vertices() {
            assert!(contains(&sq, v));
        }
        assert!(contains(&sq, p(1.0, 0.0)));
        assert!(contains(&sq, p(2.0, 1.0)));
        assert!(contains(&sq, p(1.0, 2.0)));
        assert!(contains(&sq, p(0.0, 1.0)));
        assert!(!contains(&sq, p(1.0, -1e-9)));
        assert!(!contains(&sq, p(2.0 + 1e-9, 1.0)));
        assert!(!contains(&sq, p(-1e-9, 1.0)));
        // Collinear with the v0 fan rays but beyond the polygon.
        assert!(!contains(&sq, p(3.0, 0.0)));
        assert!(!contains(&sq, p(0.0, 3.0)));
        assert!(!contains(&sq, p(-1.0, 0.0)));
    }

    #[test]
    fn contains_degenerate() {
        assert!(!contains(&ConvexPolygon::empty(), p(0.0, 0.0)));
        let pt = ConvexPolygon::from_ccw(vec![p(1.0, 1.0)]).unwrap();
        assert!(contains(&pt, p(1.0, 1.0)));
        assert!(!contains(&pt, p(1.0, 1.1)));
        let seg = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(2.0, 2.0)]).unwrap();
        assert!(contains(&seg, p(1.0, 1.0)));
        assert!(!contains(&seg, p(1.0, 1.0 + 1e-12)));
        assert!(!contains(&seg, p(3.0, 3.0)));
    }

    #[test]
    fn extreme_vertex_matches_linear_scan() {
        let poly = regular_ngon(23, 2.0);
        for i in 0..360 {
            let theta = core::f64::consts::TAU * i as f64 / 360.0;
            let dir = Vec2::from_angle(theta);
            let fast = poly.vertex(extreme_vertex(&poly, dir)).dot(dir);
            let slow = poly.support(dir).unwrap();
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "dir angle {theta}: fast {fast} slow {slow}"
            );
        }
    }

    #[test]
    fn extreme_vertex_on_small_polygons() {
        let one = ConvexPolygon::from_ccw(vec![p(1.0, 2.0)]).unwrap();
        assert_eq!(extreme_vertex(&one, Vec2::new(1.0, 0.0)), 0);
        let seg = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(1.0, 1.0)]).unwrap();
        assert_eq!(extreme_vertex(&seg, Vec2::new(1.0, 0.0)), 1);
        assert_eq!(extreme_vertex(&seg, Vec2::new(-1.0, 0.0)), 0);
    }

    #[test]
    fn extreme_vertex_axis_aligned_square() {
        let sq = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)])
            .unwrap();
        // Ties along edges: accept either endpoint, check support value.
        for (dir, want) in [
            (Vec2::new(1.0, 0.0), 2.0),
            (Vec2::new(0.0, 1.0), 2.0),
            (Vec2::new(-1.0, 0.0), 0.0),
            (Vec2::new(0.0, -1.0), 0.0),
            (Vec2::new(1.0, 1.0), 4.0),
        ] {
            let got = sq.vertex(extreme_vertex(&sq, dir)).dot(dir);
            assert!((got - want).abs() < 1e-12, "dir {dir:?}");
        }
    }

    #[test]
    fn directional_extent_of_rectangle() {
        let rect =
            ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 1.0), p(0.0, 1.0)])
                .unwrap();
        assert!((directional_extent(&rect, Vec2::new(1.0, 0.0)) - 4.0).abs() < 1e-12);
        assert!((directional_extent(&rect, Vec2::new(0.0, 2.0)) - 1.0).abs() < 1e-12);
        let diag = directional_extent(&rect, Vec2::new(1.0, 1.0));
        assert!((diag - 5.0 / 2.0f64.sqrt()).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(
            directional_extent(&ConvexPolygon::empty(), Vec2::new(1.0, 0.0)),
            0.0
        );
        let seg = ConvexPolygon::from_ccw(vec![p(0.0, 0.0), p(3.0, 0.0)]).unwrap();
        assert!((directional_extent(&seg, Vec2::new(1.0, 0.0)) - 3.0).abs() < 1e-12);
        assert_eq!(directional_extent(&seg, Vec2::new(0.0, 1.0)), 0.0);
    }

    #[test]
    fn extreme_vertex_stress_many_ngons() {
        for n in [3usize, 4, 5, 8, 13, 64, 257] {
            let poly = regular_ngon(n, 1.0);
            for i in 0..4 * n {
                let dir =
                    Vec2::from_angle(0.123 + core::f64::consts::TAU * i as f64 / (4 * n) as f64);
                let fast = poly.vertex(extreme_vertex(&poly, dir)).dot(dir);
                let slow = poly.support(dir).unwrap();
                assert!((fast - slow).abs() <= 1e-9, "n={n} i={i}");
            }
        }
    }
}
