//! Convex polygon intersection (Sutherland–Hodgman specialised to convex
//! clippers), used by the "spatial overlap" queries of paper §6.

use crate::point::Point2;
use crate::polygon::ConvexPolygon;
use crate::predicates::orient2d_sign;
use core::cmp::Ordering;

/// Intersection point of segment `a..b` with the line through `c..d`,
/// assuming the segment genuinely crosses the line. Computed in `f64`;
/// callers only use this for points certified to straddle by the exact
/// predicate.
fn line_intersection(a: Point2, b: Point2, c: Point2, d: Point2) -> Point2 {
    let r = b - a;
    let s = d - c;
    let denom = r.cross(s);
    if crate::predicates::degenerate_norm(denom) {
        // Degenerate (collinear overlap certified impossible by callers);
        // return the midpoint as a safe fallback.
        return a.midpoint(b);
    }
    let t = (c - a).cross(s) / denom;
    a + r * t.clamp(0.0, 1.0)
}

/// Intersection of two convex polygons.
///
/// Runs Sutherland–Hodgman clipping of `subject` against each edge of
/// `clipper` (`O(n·m)`), then re-hulls the output to restore strict
/// convexity after floating-point intersections. Degenerate inputs (fewer
/// than 3 vertices) produce the correct degenerate output: clipping a point
/// or segment against a polygon.
pub fn intersect(subject: &ConvexPolygon, clipper: &ConvexPolygon) -> ConvexPolygon {
    if subject.is_empty() || clipper.is_empty() {
        return ConvexPolygon::empty();
    }
    // Degenerate clipper: intersect the other way around if it has a proper
    // interior, else fall back to point/segment logic.
    if clipper.len() < 3 {
        if subject.len() >= 3 {
            return intersect_degenerate(clipper, subject);
        }
        return intersect_degenerate_pair(subject, clipper);
    }
    if subject.len() < 3 {
        return intersect_degenerate(subject, clipper);
    }

    let mut output: Vec<Point2> = subject.vertices().to_vec();
    let cv = clipper.vertices();
    let m = cv.len();
    for i in 0..m {
        if output.is_empty() {
            break;
        }
        let (ca, cb) = (cv[i], cv[(i + 1) % m]);
        let input = core::mem::take(&mut output);
        let inside = |p: Point2| orient2d_sign(ca, cb, p) != Ordering::Less;
        for j in 0..input.len() {
            let cur = input[j];
            let prev = input[(j + input.len() - 1) % input.len()];
            let cur_in = inside(cur);
            let prev_in = inside(prev);
            if cur_in {
                if !prev_in {
                    output.push(line_intersection(prev, cur, ca, cb));
                }
                output.push(cur);
            } else if prev_in {
                output.push(line_intersection(prev, cur, ca, cb));
            }
        }
    }
    // Floating-point intersections can introduce duplicates / collinear
    // slivers; rebuild the strict hull of the result.
    ConvexPolygon::hull_of(&output)
}

/// Clips a degenerate polygon (point or segment) against a full polygon.
fn intersect_degenerate(small: &ConvexPolygon, big: &ConvexPolygon) -> ConvexPolygon {
    match small.len() {
        0 => ConvexPolygon::empty(),
        1 => {
            if big.contains_linear(small.vertex(0)) {
                small.clone()
            } else {
                ConvexPolygon::empty()
            }
        }
        _ => {
            // Segment: clip parametrically against every edge half-plane.
            let (a, b) = (small.vertex(0), small.vertex(1));
            let d = b - a;
            let mut t0 = 0.0f64;
            let mut t1 = 1.0f64;
            for (ca, cb) in big.edges() {
                let n = (cb - ca).perp(); // inward normal of ccw polygon
                let denom = d.dot(n);
                let num = (ca - a).dot(n);
                if denom.abs() < f64::EPSILON * (d.norm() * n.norm()).max(1.0) {
                    // Parallel: reject the whole segment if outside.
                    if (a - ca).dot(n) < 0.0 {
                        return ConvexPolygon::empty();
                    }
                } else {
                    let t = num / denom;
                    if denom > 0.0 {
                        t0 = t0.max(t);
                    } else {
                        t1 = t1.min(t);
                    }
                }
            }
            if t0 > t1 {
                return ConvexPolygon::empty();
            }
            let p0 = a + d * t0;
            let p1 = a + d * t1;
            if p0 == p1 {
                ConvexPolygon::hull_of(&[p0])
            } else {
                ConvexPolygon::hull_of(&[p0, p1])
            }
        }
    }
}

/// Both polygons degenerate: brute-force on the (tiny) vertex sets.
fn intersect_degenerate_pair(a: &ConvexPolygon, b: &ConvexPolygon) -> ConvexPolygon {
    let pts: Vec<Point2> = a
        .vertices()
        .iter()
        .copied()
        .filter(|&p| b.contains_linear(p))
        .chain(
            b.vertices()
                .iter()
                .copied()
                .filter(|&p| a.contains_linear(p)),
        )
        .collect();
    ConvexPolygon::hull_of(&pts)
}

/// Area of the intersection of two convex polygons.
pub fn overlap_area(a: &ConvexPolygon, b: &ConvexPolygon) -> f64 {
    intersect(a, b).area()
}

/// `true` iff the two convex polygons share at least one point.
pub fn intersects(a: &ConvexPolygon, b: &ConvexPolygon) -> bool {
    !intersect(a, b).is_empty()
}

#[cfg(test)]
// Kernel unit tests assert exact values (signs, sentinels, algebraic
// identities the code guarantees bit-for-bit), so strict float
// equality is the point, not a bug.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn square(x0: f64, y0: f64, s: f64) -> ConvexPolygon {
        ConvexPolygon::from_ccw(vec![
            p(x0, y0),
            p(x0 + s, y0),
            p(x0 + s, y0 + s),
            p(x0, y0 + s),
        ])
        .unwrap()
    }

    #[test]
    fn overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let i = intersect(&a, &b);
        assert!((i.area() - 1.0).abs() < 1e-12);
        assert!((overlap_area(&a, &b) - 1.0).abs() < 1e-12);
        assert!(intersects(&a, &b));
    }

    #[test]
    fn disjoint_squares() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        assert!(intersect(&a, &b).is_empty());
        assert_eq!(overlap_area(&a, &b), 0.0);
        assert!(!intersects(&a, &b));
    }

    #[test]
    fn nested_polygons() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(3.0, 3.0, 2.0);
        let i = intersect(&outer, &inner);
        assert!((i.area() - inner.area()).abs() < 1e-12);
        let j = intersect(&inner, &outer);
        assert!((j.area() - inner.area()).abs() < 1e-12);
    }

    #[test]
    fn intersection_is_commutative_in_area() {
        let a = ConvexPolygon::hull_of(&[p(0.0, 0.0), p(4.0, 0.0), p(2.0, 3.0)]);
        let b = ConvexPolygon::hull_of(&[p(0.0, 1.0), p(4.0, 1.0), p(2.0, -2.0)]);
        let ab = overlap_area(&a, &b);
        let ba = overlap_area(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 0.0);
    }

    #[test]
    fn area_bounded_by_inputs() {
        let mut seed = 99u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..40 {
            let a = ConvexPolygon::hull_of(
                &(0..10)
                    .map(|_| p(next() * 4.0, next() * 4.0))
                    .collect::<Vec<_>>(),
            );
            let b = ConvexPolygon::hull_of(
                &(0..10)
                    .map(|_| p(next() * 4.0 + 1.0, next() * 4.0 + 1.0))
                    .collect::<Vec<_>>(),
            );
            let i = overlap_area(&a, &b);
            assert!(i <= a.area() + 1e-9);
            assert!(i <= b.area() + 1e-9);
            assert!(i >= 0.0);
        }
    }

    #[test]
    fn touching_edges() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 0.0, 1.0);
        let i = intersect(&a, &b);
        // Shared edge: intersection is a (degenerate) segment with area 0.
        assert!(i.area().abs() < 1e-12);
        assert!(intersects(&a, &b), "shared boundary still intersects");
    }

    #[test]
    fn degenerate_inputs() {
        let sq = square(0.0, 0.0, 2.0);
        let pt_in = ConvexPolygon::hull_of(&[p(1.0, 1.0)]);
        let pt_out = ConvexPolygon::hull_of(&[p(5.0, 5.0)]);
        assert_eq!(intersect(&pt_in, &sq).len(), 1);
        assert!(intersect(&pt_out, &sq).is_empty());
        assert_eq!(intersect(&sq, &pt_in).len(), 1, "degenerate clipper");

        let seg_cross = ConvexPolygon::hull_of(&[p(-1.0, 1.0), p(3.0, 1.0)]);
        let clipped = intersect(&seg_cross, &sq);
        assert_eq!(clipped.len(), 2);
        let len = clipped.vertex(0).distance(clipped.vertex(1));
        assert!((len - 2.0).abs() < 1e-12);

        let seg_miss = ConvexPolygon::hull_of(&[p(-1.0, 5.0), p(3.0, 5.0)]);
        assert!(intersect(&seg_miss, &sq).is_empty());

        assert!(intersect(&ConvexPolygon::empty(), &sq).is_empty());
    }

    #[test]
    fn triangle_square_known_area() {
        let sq = square(0.0, 0.0, 2.0);
        // Triangle covering the left half exactly.
        let tri = ConvexPolygon::hull_of(&[p(0.0, 0.0), p(2.0, 0.0), p(0.0, 2.0)]);
        let i = overlap_area(&sq, &tri);
        assert!((i - 2.0).abs() < 1e-12);
    }
}
