//! Static convex hull construction.
//!
//! Two classic algorithms — Andrew's monotone chain and Graham scan — both
//! built on the exact [`orient2d`](crate::predicates::orient2d_sign)
//! predicate. They produce *strictly* convex hulls (no collinear vertices,
//! no duplicates), in counterclockwise order starting from the
//! lexicographically smallest point. Having two independent implementations
//! lets property tests cross-check them.

use crate::point::Point2;
use crate::predicates::orient2d_sign;
use core::cmp::Ordering;

/// Convex hull by Andrew's monotone chain, `O(n log n)`.
///
/// Returns the hull vertices in counterclockwise order, starting at the
/// lexicographically smallest point. Duplicates and collinear points on the
/// boundary are dropped. Degenerate inputs yield degenerate hulls:
/// the empty set for no input, one vertex for coincident points, two for
/// collinear sets.
pub fn monotone_chain(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
    let mut hull = Vec::with_capacity(pts.len().min(32));
    monotone_chain_with(&mut pts, &mut hull, false);
    hull
}

/// Buffered monotone chain: the allocation-free core behind
/// [`monotone_chain`], reusable by callers that run hulls in a loop (the
/// batched-ingestion fast paths of the summary crate).
///
/// `pts` is the working set — it is sorted and deduplicated **in place**
/// and must contain only finite points (filter before calling). The hull is
/// written into `hull` (cleared first); with warm buffers the call performs
/// no heap allocations beyond capacity growth.
///
/// With `keep_collinear = false` the output is the strict hull (exactly
/// [`monotone_chain`]'s contract). With `keep_collinear = true` points that
/// lie *on* the hull boundary between vertices are retained as well —
/// useful for computing the set of points not strictly inside the hull.
/// In degenerate (fully collinear) cases the `keep_collinear` output may
/// list interior collinear points twice (once per chain); callers wanting a
/// set should sort + dedup.
pub fn monotone_chain_with(pts: &mut Vec<Point2>, hull: &mut Vec<Point2>, keep_collinear: bool) {
    hull.clear();
    // Unstable sort: equal points are bitwise identical, so stability
    // cannot affect the output, and pdqsort avoids the merge buffer.
    pts.sort_unstable_by(|a, b| a.lex_cmp(*b));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        hull.extend_from_slice(pts);
        return;
    }
    // Strict hulls pop collinear middles too; inclusive hulls keep them.
    let pop = |a: Point2, b: Point2, c: Point2| -> bool {
        if keep_collinear {
            orient2d_sign(a, b, c) == Ordering::Less
        } else {
            orient2d_sign(a, b, c) != Ordering::Greater
        }
    };

    // Lower hull.
    for &p in pts.iter() {
        while hull.len() >= 2 && pop(hull[hull.len() - 2], hull[hull.len() - 1], p) {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && pop(hull[hull.len() - 2], hull[hull.len() - 1], p) {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    if hull.len() == 2 && hull[0] == hull[1] {
        hull.pop();
    }
}

/// Convex hull by Graham scan, `O(n log n)`.
///
/// Same output contract as [`monotone_chain`]; an independent implementation
/// used to cross-validate in tests.
pub fn graham_scan(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    // Pivot: lowest y, then lowest x.
    let pivot_idx = pts
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.y.total_cmp(&b.y).then(a.x.total_cmp(&b.x)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let pivot = pts.swap_remove(pivot_idx);

    // Sort by polar angle around the pivot (exact comparisons), breaking
    // angular ties by distance (nearer first so the farthest survives the
    // scan's collinearity pruning).
    pts.sort_by(|&a, &b| match orient2d_sign(pivot, a, b) {
        Ordering::Greater => Ordering::Less,
        Ordering::Less => Ordering::Greater,
        Ordering::Equal => pivot.distance_sq(a).total_cmp(&pivot.distance_sq(b)),
    });

    let mut hull = vec![pivot];
    for &p in &pts {
        while hull.len() >= 2
            && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], p) != Ordering::Greater
        {
            hull.pop();
        }
        hull.push(p);
    }
    if hull.len() == 2 && hull[0] == hull[1] {
        hull.pop();
    }
    // Canonical start: lexicographically smallest vertex first.
    canonicalize_ccw(&mut hull);
    hull
}

/// Rotates a ccw vertex cycle so the lexicographically smallest vertex comes
/// first. No-op for fewer than 2 vertices.
pub fn canonicalize_ccw(hull: &mut [Point2]) {
    if hull.len() < 2 {
        return;
    }
    let start = hull
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.lex_cmp(**b))
        .map(|(i, _)| i)
        .unwrap_or(0);
    hull.rotate_left(start);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_single_double() {
        assert!(monotone_chain(&[]).is_empty());
        assert_eq!(monotone_chain(&[p(1.0, 1.0)]), vec![p(1.0, 1.0)]);
        assert_eq!(monotone_chain(&[p(1.0, 1.0); 5]), vec![p(1.0, 1.0)]);
        let two = monotone_chain(&[p(2.0, 0.0), p(0.0, 0.0)]);
        assert_eq!(two, vec![p(0.0, 0.0), p(2.0, 0.0)]);
    }

    #[test]
    fn collinear_input_collapses_to_segment() {
        let pts: Vec<Point2> = (0..7).map(|i| p(i as f64, 2.0 * i as f64)).collect();
        let h = monotone_chain(&pts);
        assert_eq!(h, vec![p(0.0, 0.0), p(6.0, 12.0)]);
        assert_eq!(graham_scan(&pts), h);
    }

    #[test]
    fn square_with_interior_and_edge_points() {
        let pts = [
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(1.0, 1.0), // interior
            p(1.0, 0.0), // on an edge: must be dropped (strict hull)
            p(2.0, 1.0),
            p(0.0, 0.0), // duplicate corner
        ];
        let h = monotone_chain(&pts);
        assert_eq!(h, vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)]);
    }

    #[test]
    fn ccw_orientation() {
        let pts = [
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 3.0),
            p(0.0, 3.0),
            p(2.0, 1.0),
        ];
        let h = monotone_chain(&pts);
        // Every consecutive triple must turn left.
        for i in 0..h.len() {
            let a = h[i];
            let b = h[(i + 1) % h.len()];
            let c = h[(i + 2) % h.len()];
            assert_eq!(orient2d_sign(a, b, c), Ordering::Greater);
        }
    }

    #[test]
    fn graham_matches_monotone_on_grid() {
        let mut pts = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let a = monotone_chain(&pts);
        let b = graham_scan(&pts);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4, "grid hull is the four corners (strict)");
    }

    #[test]
    fn all_points_inside_hull() {
        use crate::predicates::orient2d_sign;
        // Deterministic pseudo-random points.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point2> = (0..300)
            .map(|_| p(next() * 10.0 - 5.0, next() * 6.0 - 3.0))
            .collect();
        let h = monotone_chain(&pts);
        assert!(h.len() >= 3);
        for &q in &pts {
            for i in 0..h.len() {
                let a = h[i];
                let b = h[(i + 1) % h.len()];
                assert_ne!(
                    orient2d_sign(a, b, q),
                    Ordering::Less,
                    "point {q:?} outside hull edge {a:?}->{b:?}"
                );
            }
        }
    }

    #[test]
    fn buffered_chain_matches_allocating_chain() {
        let mut seed = 0x5eedu64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts_buf = Vec::new();
        let mut hull_buf = Vec::new();
        for n in [0usize, 1, 2, 3, 10, 100, 400] {
            let pts: Vec<Point2> = (0..n)
                .map(|_| p((next() * 8.0).floor(), (next() * 8.0).floor()))
                .collect();
            let want = monotone_chain(&pts);
            pts_buf.clear();
            pts_buf.extend_from_slice(&pts);
            monotone_chain_with(&mut pts_buf, &mut hull_buf, false);
            assert_eq!(hull_buf, want, "n = {n}");
        }
    }

    /// Inclusive-chain membership equals "not strictly inside the strict
    /// hull", verified by brute force over every input point.
    #[test]
    fn inclusive_chain_is_the_hull_boundary_set() {
        let mut seed = 0xb0a7u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let strictly_inside = |hull: &[Point2], q: Point2| -> bool {
            // Strictly inside a full-dimensional hull: a strict left turn
            // against every edge. Degenerate hulls have no strict interior.
            hull.len() >= 3
                && (0..hull.len()).all(|i| {
                    orient2d_sign(hull[i], hull[(i + 1) % hull.len()], q) == Ordering::Greater
                })
        };
        for trial in 0..40 {
            let n = 5 + trial * 7;
            // Small integer grid: many duplicates and collinear runs.
            let pts: Vec<Point2> = (0..n)
                .map(|_| p((next() * 6.0).floor(), (next() * 6.0).floor()))
                .collect();
            let strict = monotone_chain(&pts);
            let mut work = pts.clone();
            let mut boundary = Vec::new();
            monotone_chain_with(&mut work, &mut boundary, true);
            boundary.sort_by(|a, b| a.lex_cmp(*b));
            boundary.dedup();
            for &q in &pts {
                let member = boundary.binary_search_by(|b| b.lex_cmp(q)).is_ok();
                assert_eq!(
                    member,
                    !strictly_inside(&strict, q),
                    "trial {trial}: point {q:?} boundary membership wrong"
                );
            }
        }
    }

    #[test]
    fn inclusive_chain_degenerate_inputs() {
        let mut work = Vec::new();
        let mut out = Vec::new();
        monotone_chain_with(&mut work, &mut out, true);
        assert!(out.is_empty());
        work = vec![p(1.0, 1.0); 4];
        monotone_chain_with(&mut work, &mut out, true);
        assert_eq!(out, vec![p(1.0, 1.0)]);
        // Fully collinear: every input point is on the boundary.
        work = (0..6).map(|i| p(i as f64, i as f64)).collect();
        monotone_chain_with(&mut work, &mut out, true);
        out.sort_by(|a, b| a.lex_cmp(*b));
        out.dedup();
        assert_eq!(out.len(), 6, "collinear points are all boundary points");
    }

    #[test]
    fn canonical_start_vertex() {
        let pts = [p(3.0, 3.0), p(0.0, 0.0), p(3.0, 0.0), p(0.0, 3.0)];
        let h = monotone_chain(&pts);
        assert_eq!(h[0], p(0.0, 0.0));
        let g = graham_scan(&pts);
        assert_eq!(g[0], p(0.0, 0.0));
    }
}
