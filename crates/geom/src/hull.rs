//! Static convex hull construction.
//!
//! Two classic algorithms — Andrew's monotone chain and Graham scan — both
//! built on the exact [`orient2d`](crate::predicates::orient2d_sign)
//! predicate. They produce *strictly* convex hulls (no collinear vertices,
//! no duplicates), in counterclockwise order starting from the
//! lexicographically smallest point. Having two independent implementations
//! lets property tests cross-check them.

use crate::point::Point2;
use crate::predicates::orient2d_sign;
use core::cmp::Ordering;

/// Convex hull by Andrew's monotone chain, `O(n log n)`.
///
/// Returns the hull vertices in counterclockwise order, starting at the
/// lexicographically smallest point. Duplicates and collinear points on the
/// boundary are dropped. Degenerate inputs yield degenerate hulls:
/// the empty set for no input, one vertex for coincident points, two for
/// collinear sets.
pub fn monotone_chain(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], p) != Ordering::Greater
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], p) != Ordering::Greater
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    if hull.len() == 2 && hull[0] == hull[1] {
        hull.pop();
    }
    hull
}

/// Convex hull by Graham scan, `O(n log n)`.
///
/// Same output contract as [`monotone_chain`]; an independent implementation
/// used to cross-validate in tests.
pub fn graham_scan(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    // Pivot: lowest y, then lowest x.
    let pivot_idx = pts
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.y.partial_cmp(&b.y)
                .unwrap()
                .then(a.x.partial_cmp(&b.x).unwrap())
        })
        .map(|(i, _)| i)
        .unwrap();
    let pivot = pts.swap_remove(pivot_idx);

    // Sort by polar angle around the pivot (exact comparisons), breaking
    // angular ties by distance (nearer first so the farthest survives the
    // scan's collinearity pruning).
    pts.sort_by(|&a, &b| match orient2d_sign(pivot, a, b) {
        Ordering::Greater => Ordering::Less,
        Ordering::Less => Ordering::Greater,
        Ordering::Equal => pivot
            .distance_sq(a)
            .partial_cmp(&pivot.distance_sq(b))
            .unwrap(),
    });

    let mut hull = vec![pivot];
    for &p in &pts {
        while hull.len() >= 2
            && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], p) != Ordering::Greater
        {
            hull.pop();
        }
        hull.push(p);
    }
    if hull.len() == 2 && hull[0] == hull[1] {
        hull.pop();
    }
    // Canonical start: lexicographically smallest vertex first.
    canonicalize_ccw(&mut hull);
    hull
}

/// Rotates a ccw vertex cycle so the lexicographically smallest vertex comes
/// first. No-op for fewer than 2 vertices.
pub fn canonicalize_ccw(hull: &mut [Point2]) {
    if hull.len() < 2 {
        return;
    }
    let start = hull
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.lex_cmp(**b))
        .map(|(i, _)| i)
        .unwrap();
    hull.rotate_left(start);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_single_double() {
        assert!(monotone_chain(&[]).is_empty());
        assert_eq!(monotone_chain(&[p(1.0, 1.0)]), vec![p(1.0, 1.0)]);
        assert_eq!(monotone_chain(&[p(1.0, 1.0); 5]), vec![p(1.0, 1.0)]);
        let two = monotone_chain(&[p(2.0, 0.0), p(0.0, 0.0)]);
        assert_eq!(two, vec![p(0.0, 0.0), p(2.0, 0.0)]);
    }

    #[test]
    fn collinear_input_collapses_to_segment() {
        let pts: Vec<Point2> = (0..7).map(|i| p(i as f64, 2.0 * i as f64)).collect();
        let h = monotone_chain(&pts);
        assert_eq!(h, vec![p(0.0, 0.0), p(6.0, 12.0)]);
        assert_eq!(graham_scan(&pts), h);
    }

    #[test]
    fn square_with_interior_and_edge_points() {
        let pts = [
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(1.0, 1.0), // interior
            p(1.0, 0.0), // on an edge: must be dropped (strict hull)
            p(2.0, 1.0),
            p(0.0, 0.0), // duplicate corner
        ];
        let h = monotone_chain(&pts);
        assert_eq!(h, vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)]);
    }

    #[test]
    fn ccw_orientation() {
        let pts = [
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 3.0),
            p(0.0, 3.0),
            p(2.0, 1.0),
        ];
        let h = monotone_chain(&pts);
        // Every consecutive triple must turn left.
        for i in 0..h.len() {
            let a = h[i];
            let b = h[(i + 1) % h.len()];
            let c = h[(i + 2) % h.len()];
            assert_eq!(orient2d_sign(a, b, c), Ordering::Greater);
        }
    }

    #[test]
    fn graham_matches_monotone_on_grid() {
        let mut pts = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let a = monotone_chain(&pts);
        let b = graham_scan(&pts);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4, "grid hull is the four corners (strict)");
    }

    #[test]
    fn all_points_inside_hull() {
        use crate::predicates::orient2d_sign;
        // Deterministic pseudo-random points.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point2> = (0..300)
            .map(|_| p(next() * 10.0 - 5.0, next() * 6.0 - 3.0))
            .collect();
        let h = monotone_chain(&pts);
        assert!(h.len() >= 3);
        for &q in &pts {
            for i in 0..h.len() {
                let a = h[i];
                let b = h[(i + 1) % h.len()];
                assert_ne!(
                    orient2d_sign(a, b, q),
                    Ordering::Less,
                    "point {q:?} outside hull edge {a:?}->{b:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_start_vertex() {
        let pts = [p(3.0, 3.0), p(0.0, 0.0), p(3.0, 0.0), p(0.0, 3.0)];
        let h = monotone_chain(&pts);
        assert_eq!(h[0], p(0.0, 0.0));
        let g = graham_scan(&pts);
        assert_eq!(g[0], p(0.0, 0.0));
    }
}
