//! Error metrics for hull summaries — the measurements behind the paper's
//! experimental section (§7, Table 1) and the error-scaling figures.
//!
//! Three families:
//!
//! * **online probe** — while streaming, each arriving point is tested
//!   against the *current* approximate hull; the table's "max distance from
//!   hull" and "% points outside hull" columns come from here;
//! * **uncertainty triangles** — max/average heights of the per-edge error
//!   certificates (§2);
//! * **final Hausdorff error** — directed Hausdorff distance from the exact
//!   hull to the approximate one, the paper's `O(D/r²)` quantity.

use crate::summary::HullSummary;
use crate::uniform::{NaiveUniformHull, UniformHull};
use core::f64::consts::TAU;
use geom::{ConvexPolygon, Point2, UncertaintyTriangle, Vec2};

/// Statistics gathered by streaming points through a summary while probing
/// each point against the hull *before* inserting it.
#[derive(Clone, Copy, Debug, Default)]
#[must_use = "probe statistics carry the false-answer counts the guarantee is judged by"]
pub struct ProbeStats {
    /// Total points streamed.
    pub total: u64,
    /// Points that fell strictly outside the approximate hull on arrival.
    pub outside: u64,
    /// Maximum distance of an arriving point from the approximate hull.
    pub max_distance: f64,
    /// Sum of outside distances (for the mean).
    pub sum_distance: f64,
}

impl ProbeStats {
    /// Fraction of points outside, in percent.
    pub fn percent_outside(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.outside as f64 / self.total as f64
        }
    }

    /// Mean distance over the outside points (0 when none).
    pub fn mean_outside_distance(&self) -> f64 {
        if self.outside == 0 {
            0.0
        } else {
            self.sum_distance / self.outside as f64
        }
    }
}

/// Streams `points` through `summary`, probing each point against the
/// current hull before inserting it (the paper's outside-point counters).
/// Works on trait objects (`&mut dyn HullSummary`) as well as concrete
/// summaries.
pub fn run_with_probe<S: HullSummary + ?Sized>(summary: &mut S, points: &[Point2]) -> ProbeStats {
    run_with_probe_warmup(summary, points, 0)
}

/// Like [`run_with_probe`], but the first `warmup` points are inserted
/// without being counted. Early stream points are trivially far from the
/// near-empty hull and would otherwise dominate the max-distance column for
/// every summary alike.
pub fn run_with_probe_warmup<S: HullSummary + ?Sized>(
    summary: &mut S,
    points: &[Point2],
    warmup: usize,
) -> ProbeStats {
    let mut stats = ProbeStats::default();
    for (i, &q) in points.iter().enumerate() {
        if i >= warmup {
            stats.total += 1;
            let hull = summary.hull_ref();
            if !hull.is_empty() {
                let d = hull.distance_to_point(q);
                if d > 0.0 {
                    stats.outside += 1;
                    stats.sum_distance += d;
                    stats.max_distance = stats.max_distance.max(d);
                }
            }
        }
        summary.insert(q);
    }
    stats
}

/// Max and mean height over a set of uncertainty triangles.
#[derive(Clone, Copy, Debug, Default)]
#[must_use = "triangle statistics carry the uncertainty heights that certify the error bound"]
pub struct TriangleStats {
    /// Largest triangle height.
    pub max_height: f64,
    /// Mean triangle height.
    pub mean_height: f64,
    /// Number of (non-degenerate) triangles.
    pub count: usize,
}

/// Aggregates triangle heights.
pub fn triangle_stats(triangles: &[UncertaintyTriangle]) -> TriangleStats {
    if triangles.is_empty() {
        return TriangleStats::default();
    }
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for t in triangles {
        let h = t.height();
        max = max.max(h);
        sum += h;
    }
    TriangleStats {
        max_height: max,
        mean_height: sum / triangles.len() as f64,
        count: triangles.len(),
    }
}

/// Uncertainty triangles of a [`UniformHull`]: one per edge between
/// consecutive extrema, with supporting normals at the last direction of
/// the first vertex and the first direction of the second (the paper's
/// `θ(pq)` convention).
pub fn uniform_uncertainty_triangles(hull: &UniformHull) -> Vec<UncertaintyTriangle> {
    let runs = hull.runs();
    let r = hull.r();
    if runs.len() < 2 {
        return Vec::new();
    }
    let unit = |j: u32| -> Vec2 { Vec2::from_angle(TAU * (j % r) as f64 / r as f64) };
    let mut out = Vec::with_capacity(runs.len());
    for i in 0..runs.len() {
        let cur = runs[i];
        let next = runs[(i + 1) % runs.len()];
        if cur.point == next.point {
            continue; // wrap-around run of the same owner
        }
        out.push(UncertaintyTriangle::new(
            cur.point,
            next.point,
            unit(cur.hi),
            unit(next.lo),
        ));
    }
    out
}

/// Uncertainty triangles of a [`NaiveUniformHull`] (reconstructs ownership
/// runs from the extrema array).
pub fn naive_uniform_uncertainty_triangles(hull: &NaiveUniformHull) -> Vec<UncertaintyTriangle> {
    let r = hull.r();
    let Some(first) = hull.extremum(0) else {
        return Vec::new();
    };
    // Build ownership runs.
    let mut runs: Vec<(Point2, u32, u32)> = vec![(first, 0, 0)];
    for j in 1..r {
        let e = hull.extremum(j).unwrap();
        let last = runs.last_mut().unwrap();
        if last.0 == e {
            last.2 = j;
        } else {
            runs.push((e, j, j));
        }
    }
    // Merge wrap-around.
    if runs.len() > 1 && runs[0].0 == runs[runs.len() - 1].0 {
        let (_, lo, _) = runs.pop().unwrap();
        runs[0].1 = lo; // purely for θ bookkeeping below via explicit units
    }
    if runs.len() < 2 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(runs.len());
    for i in 0..runs.len() {
        let (p, _, hi) = runs[i];
        let (q, lo, _) = runs[(i + 1) % runs.len()];
        if p == q {
            continue;
        }
        out.push(UncertaintyTriangle::new(
            p,
            q,
            hull.unit(hi % r),
            hull.unit(lo % r),
        ));
    }
    out
}

/// Directed Hausdorff distance from the exact hull to the approximate one —
/// the paper's error measure (the approximate hull is always inside the
/// true hull, so this is the meaningful direction).
pub fn hausdorff_error(approx: &ConvexPolygon, exact: &ConvexPolygon) -> f64 {
    approx.directed_hausdorff_from(exact)
}

/// Relative diameter error `(true - approx) / true` (Lemma 3.1 territory;
/// non-negative because the approximate hull is inside the true hull).
pub fn diameter_error(approx: &ConvexPolygon, exact: &ConvexPolygon) -> f64 {
    let dt = geom::calipers::diameter(exact)
        .map(|(_, _, d)| d)
        .unwrap_or(0.0);
    let da = geom::calipers::diameter(approx)
        .map(|(_, _, d)| d)
        .unwrap_or(0.0);
    if geom::predicates::degenerate_norm(dt) {
        0.0
    } else {
        (dt - da).max(0.0) / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::stream::AdaptiveHull;
    use crate::exact::ExactHull;

    fn circle(n: usize, r: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = TAU * (i as f64) * 0.618033988749895;
                Point2::new(r * t.cos(), r * t.sin())
            })
            .collect()
    }

    #[test]
    fn probe_counts_outside_points() {
        let pts = circle(2000, 4.0);
        let mut a = AdaptiveHull::with_r(16);
        let stats = run_with_probe(&mut a, &pts);
        assert_eq!(stats.total, 2000);
        assert!(stats.outside > 0, "circle points keep landing outside");
        assert!(stats.outside < 2000);
        assert!(stats.max_distance > 0.0);
        assert!(stats.percent_outside() > 0.0 && stats.percent_outside() < 100.0);
        assert!(stats.mean_outside_distance() <= stats.max_distance);
    }

    #[test]
    fn probe_on_exact_hull_still_counts_growth() {
        // Even the exact hull has points landing outside (every new hull
        // vertex), but at distance equal to their violation of the current
        // hull; for a shrinking-to-fixed shape the count stabilises.
        let pts = circle(500, 1.0);
        let mut e = ExactHull::new();
        let stats = run_with_probe(&mut e, &pts);
        assert_eq!(stats.total, 500);
        assert!(stats.outside > 0);
    }

    #[test]
    fn uniform_triangle_stats_behave() {
        let pts = circle(3000, 5.0);
        let mut u = UniformHull::new(16);
        for &q in &pts {
            u.insert(q);
        }
        let tris = uniform_uncertainty_triangles(&u);
        assert!(!tris.is_empty());
        let stats = triangle_stats(&tris);
        assert!(stats.max_height > 0.0);
        assert!(stats.mean_height <= stats.max_height);
        // Lemma 3.2: heights are O(D/r) ~ π·10/16.
        assert!(stats.max_height <= core::f64::consts::PI * 10.0 / 16.0);
    }

    #[test]
    fn naive_and_fancy_uniform_triangles_agree() {
        let pts = circle(1000, 2.0);
        let mut naive = NaiveUniformHull::new(16);
        let mut fancy = UniformHull::new(16);
        for &q in &pts {
            naive.insert(q);
            fancy.insert(q);
        }
        let a = triangle_stats(&naive_uniform_uncertainty_triangles(&naive));
        let b = triangle_stats(&uniform_uncertainty_triangles(&fancy));
        assert_eq!(a.count, b.count);
        assert!((a.max_height - b.max_height).abs() < 1e-9);
        assert!((a.mean_height - b.mean_height).abs() < 1e-9);
    }

    #[test]
    fn hausdorff_and_diameter_errors() {
        let pts = circle(4000, 3.0);
        let mut a = AdaptiveHull::with_r(32);
        let mut e = ExactHull::new();
        for &q in &pts {
            a.insert(q);
            e.insert(q);
        }
        let he = hausdorff_error(&a.hull(), &e.hull());
        assert!(he > 0.0 && he < 0.1, "hausdorff {he}");
        let de = diameter_error(&a.hull(), &e.hull());
        assert!((0.0..0.01).contains(&de), "diameter rel err {de}");
    }

    #[test]
    #[allow(clippy::float_cmp)] // empty inputs yield exact zeros, not rounded ones
    fn empty_inputs() {
        assert_eq!(triangle_stats(&[]).count, 0);
        let stats = run_with_probe(&mut AdaptiveHull::with_r(8), &[]);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.percent_outside(), 0.0);
        assert_eq!(stats.mean_outside_distance(), 0.0);
    }
}
