//! Fault-tolerant supervised ingestion: checkpoint-replay recovery over
//! the sharded engine.
//!
//! [`SupervisedIngest`] wraps [`ShardedIngest`]'s streaming entry points
//! with a supervisor that keeps a run alive through shard faults instead
//! of letting one bad worker abort the whole ingestion:
//!
//! * **Checkpointing** — every shard serialises its summary through the
//!   snapshot codec each [`checkpoint interval`](SupervisedIngest::with_checkpoint_interval)
//!   ingested points. Checkpoints are sealed as
//!   [`CheckpointEnvelope`](crate::snapshot::CheckpointEnvelope)s (shard
//!   id + tick + inner snapshot) and validated by a **full restore**
//!   before they are trusted.
//! * **Detection** — worker panics (a joined `Err`), stalls past a
//!   configurable deadline, corrupt or undecodable checkpoints (a typed
//!   [`SnapshotError`]), and non-finite floods (the `try_*` validation
//!   paths) are all caught by the supervisor.
//! * **Recovery** — a faulted shard is restarted from its last valid
//!   checkpoint and the chunks dispatched since that checkpoint are
//!   replayed **in order with the original batch boundaries** from a
//!   bounded, accounted replay buffer. Because snapshot restore is
//!   bit-exact and every backend is sequential and deterministic, the
//!   recovered shard's final state is bit-identical to an uninterrupted
//!   run — for every [`SummaryKind`](crate::builder::SummaryKind).
//! * **Graceful degradation** — when a shard exhausts its
//!   [`RetryPolicy`] it is quarantined: its last valid checkpoint still
//!   contributes to the merge, every point that could not be recovered is
//!   counted (and, when the points were still buffered, folded into a
//!   *lost hull* so [`SupervisedRun::error_bound`] can widen honestly),
//!   and the run completes with a [`RecoveryReport`] — never a
//!   silently-wrong hull.
//!
//! Faults are injected deterministically through a [`FaultPlan`]
//! (script- or seed-driven), and the [`RetryPolicy`] backoff schedule is
//! seed-driven with **no wall-clock randomness**, so every chaos scenario
//! replays exactly in CI.
//!
//! # Determinism contract
//!
//! The supervised entry points inherit the [`ShardedIngest`] contract:
//! chunk `c` goes to shard `c % N`, workers are sequential, and the
//! reduce merges in shard order. Fault handling never changes the data a
//! surviving shard sees — replay re-dispatches the exact buffered chunks
//! — so a recovered run equals the fault-free run bit-for-bit, and a
//! degraded run differs only by the quarantined shard's missing suffix,
//! which the report accounts for point-by-point.

use crate::builder::SummaryBuilder;
use crate::exact::ExactHull;
use crate::parallel::{ShardRun, ShardedIngest};
use crate::snapshot::{open_checkpoint, seal_checkpoint, Snapshot, SnapshotError};
use crate::summary::{HullSummary, Mergeable};
use crate::telemetry::{names, Counter, Histogram, Telemetry};
use crate::window::{WindowConfig, WindowedRun, WindowedSummary};
use geom::{ConvexPolygon, Point2};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Commands in flight to one worker (same backpressure depth as the
/// unsupervised engine).
const CMD_QUEUE_DEPTH: usize = 2;

/// Default checkpoint interval in ingested points per shard.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 8192;

/// SplitMix64: the workspace-standard seed mixer (no wall-clock
/// randomness anywhere in the recovery path).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// Deterministic retry schedule for faulted shards: a maximum attempt
/// count plus a seed-driven exponential backoff. Backoff is measured in
/// abstract **ticks** recorded in the [`FaultEvent`] log — the supervisor
/// never sleeps on it, so tests replay exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    seed: u64,
    base_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            seed: 0x4853_3034, // "HS04"
            base_backoff: 8,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` restarts per shard before
    /// quarantine, with the default seed and base backoff.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// A policy that never restarts: the first fault quarantines the
    /// shard (degraded completion, still never a panic).
    pub fn none() -> Self {
        RetryPolicy::new(0)
    }

    /// Replaces the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the base backoff (ticks before jitter; attempt `k` waits
    /// `base << (k - 1)` plus deterministic jitter).
    pub fn with_base_backoff(mut self, base: u64) -> Self {
        self.base_backoff = base;
        self
    }

    /// Maximum restarts per shard before quarantine.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The backoff for restart `attempt` (1-based) of `shard`, in
    /// abstract ticks: exponential in the attempt with seed-driven jitter
    /// that depends only on `(seed, shard, attempt)`.
    #[must_use]
    pub fn backoff(&self, shard: usize, attempt: u32) -> u64 {
        let exp = self
            .base_backoff
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        let jitter =
            splitmix64(self.seed ^ (shard as u64) ^ u64::from(attempt)) % self.base_backoff.max(1);
        exp.saturating_add(jitter)
    }
}

// ---------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------

/// One scripted fault. Chunk indices are global stream chunk sequence
/// numbers (chunk `c` is dispatched to shard `c % N`); a fault whose
/// `shard` does not match `at_chunk % N` never fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The worker panics upon receiving chunk `at_chunk`.
    CrashShard {
        /// Shard whose worker crashes.
        shard: usize,
        /// Global chunk sequence number that triggers the crash.
        at_chunk: u64,
    },
    /// The worker sleeps for `hold` upon receiving chunk `at_chunk`
    /// (then proceeds — a stall is only a *fault* if it outlives the
    /// supervisor's [`stall deadline`](SupervisedIngest::with_stall_timeout)).
    StallShard {
        /// Shard whose worker stalls.
        shard: usize,
        /// Global chunk sequence number that triggers the stall.
        at_chunk: u64,
        /// How long the worker holds before continuing.
        hold: Duration,
    },
    /// The `at_checkpoint`-th checkpoint (1-based, counted per shard
    /// including re-taken checkpoints after restarts) has one byte
    /// flipped before validation.
    CorruptCheckpoint {
        /// Shard whose checkpoint is corrupted.
        shard: usize,
        /// 1-based per-shard checkpoint ordinal to corrupt.
        at_checkpoint: u32,
        /// Byte offset to flip (taken modulo the envelope length).
        byte: usize,
    },
    /// `len` non-finite points are spliced into chunk `at_chunk` before
    /// dispatch, exercising the `try_*` detection + sanitize path.
    NonFiniteBurst {
        /// Shard receiving the poisoned chunk.
        shard: usize,
        /// Global chunk sequence number to poison.
        at_chunk: u64,
        /// Number of non-finite points spliced in.
        len: usize,
    },
}

/// A deterministic, script- or seed-driven set of faults to inject into
/// one supervised run. Each fault fires at most once; the plan is
/// evaluated entirely on the supervisor thread, so replayed chunks never
/// re-trigger a consumed fault.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<(Fault, bool)>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a [`Fault::CrashShard`].
    pub fn crash(mut self, shard: usize, at_chunk: u64) -> Self {
        self.faults
            .push((Fault::CrashShard { shard, at_chunk }, false));
        self
    }

    /// Adds a [`Fault::StallShard`].
    pub fn stall(mut self, shard: usize, at_chunk: u64, hold: Duration) -> Self {
        self.faults.push((
            Fault::StallShard {
                shard,
                at_chunk,
                hold,
            },
            false,
        ));
        self
    }

    /// Adds a [`Fault::CorruptCheckpoint`].
    pub fn corrupt_checkpoint(mut self, shard: usize, at_checkpoint: u32, byte: usize) -> Self {
        self.faults.push((
            Fault::CorruptCheckpoint {
                shard,
                at_checkpoint,
                byte,
            },
            false,
        ));
        self
    }

    /// Adds a [`Fault::NonFiniteBurst`].
    pub fn non_finite_burst(mut self, shard: usize, at_chunk: u64, len: usize) -> Self {
        self.faults.push((
            Fault::NonFiniteBurst {
                shard,
                at_chunk,
                len,
            },
            false,
        ));
        self
    }

    /// Adds an already-constructed fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push((fault, false));
    }

    /// The scripted faults, in insertion order.
    #[must_use]
    pub fn scripted(&self) -> Vec<Fault> {
        self.faults.iter().map(|(f, _)| *f).collect()
    }

    /// Number of scripted faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when no faults are scripted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A small deterministic plan derived from `seed`: between one and
    /// three faults aimed at the first `chunks` chunks of an `N = shards`
    /// run. The same `(seed, shards, chunks)` always yields the same
    /// plan, so seeded chaos runs replay exactly.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, chunks: u64) -> Self {
        let shards = shards.max(1);
        let chunks = chunks.max(1);
        let mut plan = FaultPlan::new();
        let count = 1 + (splitmix64(seed) % 3);
        for i in 0..count {
            let h = splitmix64(seed ^ (0xFA17 + i));
            // Pick a chunk, derive its owning shard so the fault fires.
            let at_chunk = splitmix64(h) % chunks;
            let shard = (at_chunk % shards as u64) as usize;
            let fault = match (h >> 32) % 4 {
                0 => Fault::CrashShard { shard, at_chunk },
                1 => Fault::StallShard {
                    shard,
                    at_chunk,
                    hold: Duration::from_millis(1200),
                },
                2 => Fault::CorruptCheckpoint {
                    shard,
                    at_checkpoint: 1 + (h % 2) as u32,
                    byte: (h % 97) as usize,
                },
                _ => Fault::NonFiniteBurst {
                    shard,
                    at_chunk,
                    len: 1 + (h % 16) as usize,
                },
            };
            plan.push(fault);
        }
        plan
    }

    /// Consumes a crash/stall fault aimed at `(shard, seq)`, if any.
    fn take_worker_fault(&mut self, shard: usize, seq: u64) -> Option<Inject> {
        for (fault, fired) in &mut self.faults {
            if *fired {
                continue;
            }
            match *fault {
                Fault::CrashShard { shard: s, at_chunk } if s == shard && at_chunk == seq => {
                    *fired = true;
                    return Some(Inject::Crash);
                }
                Fault::StallShard {
                    shard: s,
                    at_chunk,
                    hold,
                } if s == shard && at_chunk == seq => {
                    *fired = true;
                    return Some(Inject::Stall(hold));
                }
                _ => {}
            }
        }
        None
    }

    /// Consumes a corrupt-checkpoint fault aimed at `(shard, ordinal)`.
    fn take_corrupt(&mut self, shard: usize, ordinal: u32) -> Option<usize> {
        for (fault, fired) in &mut self.faults {
            if *fired {
                continue;
            }
            if let Fault::CorruptCheckpoint {
                shard: s,
                at_checkpoint,
                byte,
            } = *fault
            {
                if s == shard && at_checkpoint == ordinal {
                    *fired = true;
                    return Some(byte);
                }
            }
        }
        None
    }

    /// Consumes a non-finite-burst fault aimed at `(shard, seq)`.
    fn take_burst(&mut self, shard: usize, seq: u64) -> Option<usize> {
        for (fault, fired) in &mut self.faults {
            if *fired {
                continue;
            }
            if let Fault::NonFiniteBurst {
                shard: s,
                at_chunk,
                len,
            } = *fault
            {
                if s == shard && at_chunk == seq {
                    *fired = true;
                    return Some(len);
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Report types
// ---------------------------------------------------------------------

/// What the supervisor detected about a shard.
#[derive(Clone, Debug, PartialEq)]
pub enum DetectedFault {
    /// The worker thread panicked (joined `Err`).
    WorkerPanic,
    /// The worker made no progress past the configured stall deadline.
    Stall,
    /// A checkpoint failed validation with a typed decode error.
    CorruptCheckpoint(SnapshotError),
    /// Non-finite points were detected (and dropped) by the worker's
    /// validating ingest path.
    NonFinite {
        /// How many points were dropped from the offending chunk.
        dropped: u64,
    },
}

/// What the supervisor did about a detected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecoveryAction {
    /// The shard was restarted from its last valid checkpoint and the
    /// buffered chunks replayed.
    Restarted {
        /// Tick (points ingested) of the checkpoint restored from; 0
        /// when the shard restarted fresh.
        from_tick: u64,
        /// Chunks re-dispatched from the replay buffer.
        replayed_chunks: u64,
        /// Deterministic backoff ticks recorded for this attempt.
        backoff: u64,
    },
    /// Non-finite points were dropped and the run continued (no restart;
    /// sanitising is the contractual behaviour of the infallible paths).
    Sanitized {
        /// Points dropped.
        dropped: u64,
    },
    /// Retries were exhausted; the shard was quarantined and its
    /// unrecoverable points accounted as lost.
    Quarantined {
        /// Finite points lost at the moment of quarantine (buffered +
        /// overflowed); later chunks routed to the shard add to the
        /// per-shard total in [`ShardHealth::lost_points`].
        lost_points: u64,
    },
}

/// One entry in the fault log: what happened, where, and how the
/// supervisor responded.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// Shard the fault was attributed to.
    pub shard: usize,
    /// Global chunk sequence number at which the fault was *detected*
    /// (for stalls this can trail the injection point by the command
    /// queue depth).
    pub chunk: u64,
    /// What was detected.
    pub fault: DetectedFault,
    /// What the supervisor did.
    pub action: RecoveryAction,
}

/// A shard's final health classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStatus {
    /// No restarts were needed (sanitised non-finite chunks do not
    /// demote a shard).
    Healthy,
    /// The shard faulted but recovered via checkpoint replay; its final
    /// state is bit-identical to a fault-free run.
    Recovered,
    /// Retries exhausted: the shard contributes only its last valid
    /// checkpoint and its missing points are accounted in
    /// [`ShardHealth::lost_points`].
    Quarantined,
}

/// Per-shard health in the [`RecoveryReport`].
#[derive(Clone, Debug)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Final classification.
    pub status: ShardStatus,
    /// Finite points the shard's final (merged) state ingested.
    pub points_seen: u64,
    /// Finite points routed to this shard that no state ever ingested.
    pub lost_points: u64,
    /// Faults detected on this shard (including sanitised non-finite
    /// chunks).
    pub faults: u32,
    /// Restarts performed.
    pub retries: u32,
    /// Chunks re-dispatched from the replay buffer across all restarts.
    pub replayed_chunks: u64,
    /// Checkpoints that passed validation.
    pub checkpoints_valid: u32,
    /// Checkpoints rejected by validation.
    pub checkpoints_rejected: u32,
}

/// The supervisor's account of a whole run: per-shard health, the fault
/// log, and the loss/replay/checkpoint tallies that make a degraded
/// result auditable.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Every detected fault, in detection order.
    pub events: Vec<FaultEvent>,
    /// Total finite points lost across all shards (0 on a fully
    /// recovered run).
    pub lost_points: u64,
    /// Non-finite points dropped by worker-side sanitising (stream
    /// poison, whether injected or genuine).
    pub dropped_non_finite: u64,
    /// Non-finite points spliced in by the [`FaultPlan`] (a subset of
    /// the stream the clean run never contained; they are excluded from
    /// all seen/lost accounting).
    pub injected_non_finite: u64,
    /// Chunks re-dispatched from replay buffers.
    pub replayed_chunks: u64,
    /// Points re-dispatched from replay buffers (replayed points are
    /// re-ingested deterministically, never double-counted in
    /// `points_seen`).
    pub replayed_points: u64,
    /// Checkpoints sealed and offered for validation.
    pub checkpoints_taken: u64,
    /// Checkpoints that failed validation.
    pub checkpoints_rejected: u64,
    /// When `true`, some lost points left no trace (evicted past the
    /// replay bound before being lost), so no finite widening of the
    /// error bound exists.
    lost_unbounded: bool,
    /// Exact hull of every lost point the supervisor still held, for
    /// honest error-bound widening.
    lost_hull: ExactHull,
}

impl RecoveryReport {
    /// `true` when the run lost points or quarantined a shard — the
    /// merged hull then under-covers the stream and
    /// [`SupervisedRun::error_bound`] widens (or withdraws) accordingly.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.lost_points > 0
            || self
                .shards
                .iter()
                .any(|s| s.status == ShardStatus::Quarantined)
    }

    /// The convex hull of every lost point the supervisor still held
    /// when the loss occurred (empty on non-degraded runs).
    #[must_use]
    pub fn lost_hull(&self) -> &ConvexPolygon {
        self.lost_hull.hull_ref()
    }

    /// How far outside `merged` the lost points reach: the maximum
    /// distance from any lost-hull vertex to `merged` (0 when every lost
    /// point is covered anyway). `None` when some lost points left no
    /// geometric trace, so no finite widening exists.
    #[must_use]
    pub fn lost_excess(&self, merged: &ConvexPolygon) -> Option<f64> {
        if self.lost_unbounded {
            return None;
        }
        let mut worst = 0.0_f64;
        for &v in self.lost_hull.hull_ref().vertices() {
            let d = merged.distance_to_point(v);
            if d > worst {
                worst = d;
            }
        }
        Some(worst)
    }

    /// Total restarts across all shards.
    #[must_use]
    pub fn total_retries(&self) -> u32 {
        self.shards.iter().map(|s| s.retries).sum()
    }
}

/// The result of [`SupervisedIngest::run_stream`]: the ordinary merged
/// [`ShardRun`] plus the supervisor's [`RecoveryReport`].
#[derive(Debug)]
#[must_use = "dropping a supervised run discards both the summary and the recovery accounting"]
pub struct SupervisedRun {
    /// The merged result. On a fully recovered run this is bit-identical
    /// to the fault-free [`ShardedIngest::run_stream`] result.
    pub run: ShardRun,
    /// What happened along the way.
    pub report: RecoveryReport,
}

impl SupervisedRun {
    /// `true` when points were lost (see [`RecoveryReport::is_degraded`]).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.report.is_degraded()
    }

    /// The composed error guarantee of the merged hull against the
    /// **full** input stream: per-shard bound sum + collector bound,
    /// widened by [`RecoveryReport::lost_excess`] when points were lost.
    /// `None` when any component cannot report a bound (including lost
    /// points with no geometric trace).
    #[must_use]
    pub fn error_bound(&self) -> Option<f64> {
        let composed = self.run.shard_bound_sum()? + self.run.summary.error_bound()?;
        if self.report.lost_points == 0 {
            return Some(composed);
        }
        let excess = self.report.lost_excess(self.run.summary.hull_ref())?;
        Some(composed + excess)
    }
}

/// The result of [`SupervisedIngest::run_stream_windowed`]: the merged
/// [`WindowedRun`] plus the supervisor's [`RecoveryReport`]. Windowed
/// recovery replays pre-stamped `(point, tick)` pairs, so the shared
/// global tick clock — and therefore `LastN` window semantics — survives
/// a restart exactly.
#[derive(Debug)]
#[must_use = "dropping a supervised windowed run discards both the window state and the recovery accounting"]
pub struct SupervisedWindowedRun {
    /// The merged windowed result.
    pub run: WindowedRun,
    /// What happened along the way.
    pub report: RecoveryReport,
}

impl SupervisedWindowedRun {
    /// `true` when points were lost (see [`RecoveryReport::is_degraded`]).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.report.is_degraded()
    }
}

// ---------------------------------------------------------------------
// Public supervisor configuration
// ---------------------------------------------------------------------

/// Fault-tolerant wrapper around [`ShardedIngest`]'s streaming entry
/// points: checkpoint, detect, recover, degrade — never panic.
///
/// ```
/// use adaptive_hull::recovery::{FaultPlan, RetryPolicy, SupervisedIngest};
/// use adaptive_hull::parallel::ShardedIngest;
/// use adaptive_hull::{SummaryBuilder, SummaryKind};
/// use geom::Point2;
///
/// let pts: Vec<Point2> = (0..10_000)
///     .map(|i| {
///         let t = i as f64 * 0.01;
///         Point2::new(t.cos() * 3.0, t.sin() * 2.0)
///     })
///     .collect();
/// let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Exact), 4);
/// let supervised = SupervisedIngest::new(engine)
///     .with_checkpoint_interval(1024)
///     .with_fault_plan(FaultPlan::new().crash(1, 5))
///     .with_retry_policy(RetryPolicy::new(2));
/// let run = supervised.run_stream(pts.iter().copied());
/// assert!(!run.is_degraded());
/// // Bit-identical to the fault-free run despite the injected crash:
/// let clean = engine.run_stream(pts.iter().copied());
/// assert_eq!(
///     run.run.summary.hull_ref().vertices(),
///     clean.summary.hull_ref().vertices()
/// );
/// ```
#[derive(Clone, Debug)]
pub struct SupervisedIngest {
    engine: ShardedIngest,
    policy: RetryPolicy,
    plan: FaultPlan,
    checkpoint_interval: u64,
    stall_timeout: Option<Duration>,
    max_replay_chunks: usize,
}

impl SupervisedIngest {
    /// Supervises `engine` with the default retry policy, the default
    /// checkpoint interval, no fault plan, and no stall deadline.
    pub fn new(engine: ShardedIngest) -> Self {
        SupervisedIngest {
            engine,
            policy: RetryPolicy::default(),
            plan: FaultPlan::new(),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            stall_timeout: None,
            max_replay_chunks: 0, // 0 = derive from interval and chunk size
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a deterministic fault plan (chaos testing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the per-shard checkpoint interval in ingested points. Must
    /// be at least 1. Smaller intervals shrink the replay window (faster
    /// recovery, less loss exposure) at the cost of serialising more
    /// often; see EXPERIMENTS.md for the measured trade-off.
    pub fn with_checkpoint_interval(mut self, points: u64) -> Self {
        assert!(points >= 1, "checkpoint interval must be at least 1");
        self.checkpoint_interval = points;
        self
    }

    /// Enables stall detection: a shard that accepts no work and
    /// produces no event for `deadline` is treated as faulted. Off by
    /// default (a slow shard then simply backpressures the reader, as in
    /// the unsupervised engine).
    pub fn with_stall_timeout(mut self, deadline: Duration) -> Self {
        self.stall_timeout = Some(deadline);
        self
    }

    /// Bounds the per-shard replay buffer to `chunks` chunks. Chunks the
    /// worker has acknowledged may be evicted past this bound; evicted
    /// points cannot be replayed after a later fault and are then
    /// accounted as lost **with no geometric trace** (the error bound
    /// becomes unknown). 0 (the default) derives a bound covering four
    /// checkpoint intervals.
    pub fn with_replay_bound(mut self, chunks: usize) -> Self {
        self.max_replay_chunks = chunks;
        self
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> ShardedIngest {
        self.engine
    }

    /// The active retry policy.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The configured checkpoint interval in points.
    #[must_use]
    pub fn checkpoint_interval(&self) -> u64 {
        self.checkpoint_interval
    }

    /// The effective replay-buffer bound in chunks.
    #[must_use]
    pub fn replay_bound(&self) -> usize {
        if self.max_replay_chunks > 0 {
            return self.max_replay_chunks;
        }
        let chunk = self.engine.chunk() as u64;
        let per_interval = self.checkpoint_interval.div_ceil(chunk).max(1);
        (per_interval.saturating_mul(4).saturating_add(4)).min(usize::MAX as u64) as usize
    }

    /// Supervised counterpart of [`ShardedIngest::run_stream`]: same
    /// chunking, same round-robin dispatch, same shard-order reduce —
    /// plus checkpointing, fault detection, checkpoint-replay recovery,
    /// and degraded completion under the configured [`RetryPolicy`].
    pub fn run_stream<I>(&self, points: I) -> SupervisedRun
    where
        I: IntoIterator<Item = Point2>,
    {
        let factory = PlainFactory {
            builder: self.engine.builder(),
        };
        let core = SupervisorCore::new(
            factory,
            &self.engine,
            self.policy,
            self.plan.clone(),
            Some(self.checkpoint_interval),
            self.stall_timeout,
            self.replay_bound(),
            Mode::Degrade,
        );
        let (states, report, start) = core.run(points);
        SupervisedRun {
            run: self.engine.reduce(states, start),
            report,
        }
    }

    /// Supervised counterpart of
    /// [`ShardedIngest::run_stream_windowed`]: every point is stamped
    /// with its global tick **before** dispatch, and the replay buffer
    /// stores the stamped pairs — so recovery preserves the shared tick
    /// clock and `LastN` windows stay exact across restarts.
    pub fn run_stream_windowed<I>(&self, points: I, config: WindowConfig) -> SupervisedWindowedRun
    where
        I: IntoIterator<Item = Point2>,
    {
        let shard_config = crate::window::shard_window_config(config);
        let factory = WindowFactory {
            builder: self.engine.builder(),
            config: shard_config,
            telemetry: self.engine.telemetry(),
        };
        let core = SupervisorCore::new(
            factory,
            &self.engine,
            self.policy,
            self.plan.clone(),
            Some(self.checkpoint_interval),
            self.stall_timeout,
            self.replay_bound(),
            Mode::Degrade,
        );
        let pairs = points.into_iter().enumerate().map(|(i, p)| (p, i as f64));
        let (states, report, start) = core.run(pairs);
        SupervisedWindowedRun {
            run: WindowedRun::new(self.engine.builder(), states, start.elapsed()),
            report,
        }
    }
}

// ---------------------------------------------------------------------
// Internal: crate entry points for the unsupervised streaming paths
// ---------------------------------------------------------------------

/// Runs `engine.run_stream` semantics through the supervisor machinery
/// in abort mode: no checkpoints, no replay buffer, and any worker fault
/// propagates (a worker panic is re-raised on the caller). This is what
/// [`ShardedIngest::run_stream`] routes through, so the supervised and
/// unsupervised paths share one dispatch loop.
pub(crate) fn run_stream_propagating<I>(
    engine: &ShardedIngest,
    plan: FaultPlan,
    points: I,
) -> ShardRun
where
    I: IntoIterator<Item = Point2>,
{
    let factory = PlainFactory {
        builder: engine.builder(),
    };
    let core = SupervisorCore::new(
        factory,
        engine,
        RetryPolicy::none(),
        plan,
        None,
        None,
        0,
        Mode::Abort,
    );
    let (states, _report, start) = core.run(points);
    engine.reduce(states, start)
}

/// Windowed abort-mode twin of [`run_stream_propagating`], backing
/// [`ShardedIngest::run_stream_windowed_at`].
pub(crate) fn run_stream_windowed_at_propagating<I>(
    engine: &ShardedIngest,
    points: I,
    config: WindowConfig,
) -> WindowedRun
where
    I: IntoIterator<Item = (Point2, f64)>,
{
    let factory = WindowFactory {
        builder: engine.builder(),
        config,
        telemetry: engine.telemetry(),
    };
    let core = SupervisorCore::new(
        factory,
        engine,
        RetryPolicy::none(),
        FaultPlan::new(),
        None,
        None,
        0,
        Mode::Abort,
    );
    let (states, _report, start) = core.run(points);
    WindowedRun::new(engine.builder(), states, start.elapsed())
}

// ---------------------------------------------------------------------
// Internal: shard state factories
// ---------------------------------------------------------------------

/// Abstracts "one shard's summary state" so the supervisor drives plain
/// and windowed runs through one code path. `ingest` must sanitise: it
/// detects non-finite items via the validating path, drops exactly those
/// items, ingests the rest, and reports how many were dropped —
/// contractually identical to what the infallible insert paths do.
trait ShardFactory: Clone + Send + 'static {
    /// One shard's summary state.
    type State: Send + 'static;
    /// One stream element as dispatched to workers.
    type Item: Send + Clone + 'static;

    fn fresh(&self) -> Self::State;
    fn restore(&self, snapshot: &[u8]) -> Result<Self::State, SnapshotError>;
    fn ingest(state: &mut Self::State, items: &[Self::Item]) -> u64;
    fn snapshot(state: &Self::State) -> Vec<u8>;
    fn points_seen(state: &Self::State) -> u64;
    fn point(item: &Self::Item) -> Point2;
    fn poison() -> Self::Item;
}

/// Factory for plain (whole-stream) shards.
#[derive(Clone)]
struct PlainFactory {
    builder: SummaryBuilder,
}

impl ShardFactory for PlainFactory {
    type State = Box<dyn Mergeable + Send + Sync>;
    type Item = Point2;

    fn fresh(&self) -> Self::State {
        self.builder.build_mergeable()
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Self::State, SnapshotError> {
        SummaryBuilder::restore(snapshot)
    }

    fn ingest(state: &mut Self::State, items: &[Self::Item]) -> u64 {
        match state.try_insert_batch(items) {
            Ok(()) => 0,
            Err(_) => {
                let finite: Vec<Point2> = items.iter().copied().filter(|p| p.is_finite()).collect();
                let dropped = (items.len() - finite.len()) as u64;
                state.insert_batch(&finite);
                dropped
            }
        }
    }

    fn snapshot(state: &Self::State) -> Vec<u8> {
        state.encode_snapshot()
    }

    fn points_seen(state: &Self::State) -> u64 {
        state.points_seen()
    }

    fn point(item: &Self::Item) -> Point2 {
        *item
    }

    fn poison() -> Self::Item {
        Point2::new(f64::NAN, f64::NAN)
    }
}

/// Factory for windowed shards over pre-stamped `(point, tick)` pairs.
#[derive(Clone)]
struct WindowFactory {
    builder: SummaryBuilder,
    config: WindowConfig,
    telemetry: Telemetry,
}

impl ShardFactory for WindowFactory {
    type State = WindowedSummary;
    type Item = (Point2, f64);

    fn fresh(&self) -> Self::State {
        self.builder
            .windowed(self.config)
            .with_telemetry(self.telemetry)
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Self::State, SnapshotError> {
        // Re-attach the engine's handle: instruments are registry state,
        // not summary state, so they never ride in the snapshot.
        WindowedSummary::decode(snapshot).map(|w| w.with_telemetry(self.telemetry))
    }

    fn ingest(state: &mut Self::State, items: &[Self::Item]) -> u64 {
        if items.iter().all(|(p, _)| p.is_finite()) {
            state.insert_batch_timestamped(items);
            0
        } else {
            // Same outcome as the infallible path (which skips
            // non-finite points without consuming ticks), but counted.
            let finite: Vec<(Point2, f64)> = items
                .iter()
                .copied()
                .filter(|(p, _)| p.is_finite())
                .collect();
            let dropped = (items.len() - finite.len()) as u64;
            state.insert_batch_timestamped(&finite);
            dropped
        }
    }

    fn snapshot(state: &Self::State) -> Vec<u8> {
        state.encode()
    }

    fn points_seen(state: &Self::State) -> u64 {
        state.points_seen()
    }

    fn point(item: &Self::Item) -> Point2 {
        item.0
    }

    fn poison() -> Self::Item {
        (Point2::new(f64::NAN, f64::NAN), 0.0)
    }
}

// ---------------------------------------------------------------------
// Internal: worker protocol
// ---------------------------------------------------------------------

/// A fault to act out on receipt of a command (scripted via
/// [`FaultPlan`], consumed supervisor-side so replays never re-fire it).
enum Inject {
    Crash,
    Stall(Duration),
}

/// One unit of work for a shard worker.
struct Cmd<T> {
    seq: u64,
    items: Vec<T>,
    checkpoint: bool,
    inject: Option<Inject>,
}

/// Worker → supervisor feedback.
enum Event<S> {
    /// A command was fully ingested.
    Ack {
        seq: u64,
        points_seen: u64,
        dropped: u64,
        /// Raw inner snapshot, when the command requested a checkpoint.
        snapshot: Option<Vec<u8>>,
    },
    /// The command channel closed; here is the final state.
    Final { state: S },
}

/// A live worker epoch. Dropping the whole link abandons the worker: its
/// next send fails and it exits without touching shared state, which is
/// what makes stalled epochs safely discardable.
struct Link<F: ShardFactory> {
    /// `None` once the finish phase closed the channel.
    tx: Option<mpsc::SyncSender<Cmd<F::Item>>>,
    rx: mpsc::Receiver<Event<F::State>>,
    handle: std::thread::JoinHandle<()>,
}

/// The `Copy` instrument set each worker epoch records through: the
/// shared per-backend ingest counters/histogram (same series the
/// unsupervised slice engine feeds) plus the checkpoint encode latency,
/// measured where the encode actually runs.
#[derive(Clone, Copy)]
struct WorkerInstruments {
    points: Counter,
    batches: Counter,
    ns_per_point: Histogram,
    encode_ns: Histogram,
}

impl WorkerInstruments {
    fn register(telemetry: Telemetry, backend: &'static str) -> Self {
        WorkerInstruments {
            points: telemetry.counter(names::INGEST_POINTS, &[("backend", backend)]),
            batches: telemetry.counter(names::INGEST_BATCHES, &[("backend", backend)]),
            ns_per_point: telemetry.histogram(names::INGEST_NS_PER_POINT, &[("backend", backend)]),
            encode_ns: telemetry.histogram(names::CHECKPOINT_ENCODE_NS, &[]),
        }
    }
}

fn spawn_worker<F: ShardFactory>(state: F::State, inst: WorkerInstruments) -> Link<F> {
    let (tx, cmd_rx) = mpsc::sync_channel::<Cmd<F::Item>>(CMD_QUEUE_DEPTH);
    let (event_tx, rx) = mpsc::channel::<Event<F::State>>();
    let handle = std::thread::spawn(move || worker_loop::<F>(state, cmd_rx, event_tx, inst));
    Link {
        tx: Some(tx),
        rx,
        handle,
    }
}

fn worker_loop<F: ShardFactory>(
    mut state: F::State,
    rx: mpsc::Receiver<Cmd<F::Item>>,
    tx: mpsc::Sender<Event<F::State>>,
    inst: WorkerInstruments,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd.inject {
            Some(Inject::Crash) => {
                panic!("injected fault: worker crash") // lint:allow(no-panic): deterministic fault injection — the chaos harness needs a genuine worker panic to exercise detection and recovery
            }
            Some(Inject::Stall(hold)) => std::thread::sleep(hold),
            None => {}
        }
        let dropped = if inst.ns_per_point.enabled() && !cmd.items.is_empty() {
            let t0 = Instant::now();
            let dropped = F::ingest(&mut state, &cmd.items);
            inst.ns_per_point
                .record(t0.elapsed().as_nanos() as u64 / cmd.items.len() as u64);
            dropped
        } else {
            F::ingest(&mut state, &cmd.items)
        };
        // Replays re-ingest, so these counters measure work actually
        // performed — a recovered run records more than a fault-free one.
        inst.points.add(cmd.items.len() as u64);
        inst.batches.inc();
        let snapshot = cmd.checkpoint.then(|| {
            if inst.encode_ns.enabled() {
                let t0 = Instant::now();
                let bytes = F::snapshot(&state);
                inst.encode_ns.record(t0.elapsed().as_nanos() as u64);
                bytes
            } else {
                F::snapshot(&state)
            }
        });
        let ack = Event::Ack {
            seq: cmd.seq,
            points_seen: F::points_seen(&state),
            dropped,
            snapshot,
        };
        if tx.send(ack).is_err() {
            return; // the supervisor abandoned this epoch
        }
    }
    let _ = tx.send(Event::Final { state });
}

// ---------------------------------------------------------------------
// Internal: the supervisor core
// ---------------------------------------------------------------------

/// What a fault does to the run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Unsupervised semantics: no checkpoints, no replay buffer, a
    /// worker fault propagates (panics are re-raised on the caller).
    Abort,
    /// Supervised semantics: restart-from-checkpoint with replay, then
    /// quarantine + degraded completion when retries exhaust.
    Degrade,
}

/// A fault as detected, before it is classified for the public report.
enum Detected {
    /// Worker thread dead; payload present when the join surfaced one.
    Panic(Option<Box<dyn std::any::Any + Send>>),
    Stall,
    BadCheckpoint(SnapshotError),
}

/// A buffered (and possibly already dispatched) chunk awaiting
/// checkpoint coverage.
struct Buffered<T> {
    seq: u64,
    items: Vec<T>,
    checkpoint: bool,
}

/// A validated checkpoint: the sealed envelope plus its tick.
struct ValidCheckpoint {
    tick: u64,
    sealed: Vec<u8>,
}

/// Per-shard supervisor state.
struct ShardCtx<F: ShardFactory> {
    link: Option<Link<F>>,
    /// Events received but not yet processed (gathered while blocked in
    /// a send); cleared on fault so stale epochs never leak into the
    /// accounting.
    pending: VecDeque<Event<F::State>>,
    finished: Option<F::State>,
    quarantined: bool,
    attempts: u32,
    buffer: VecDeque<Buffered<F::Item>>,
    /// `buffer[..sent]` has been dispatched to the current epoch.
    sent: usize,
    /// Highest chunk seq acknowledged by the current epoch.
    acked: Option<u64>,
    /// Highest chunk seq whose sanitized drops have been tallied. Replay
    /// after a crash re-acks earlier chunks (re-dropping the same poison);
    /// gating on this watermark keeps `dropped_non_finite` counting
    /// logical stream points, not ingestion attempts.
    drop_tallied: Option<u64>,
    since_checkpoint: u64,
    checkpoint: Option<ValidCheckpoint>,
    checkpoint_ordinal: u32,
    /// Finite points evicted past the replay bound since the last valid
    /// checkpoint; they become unrecoverable if a fault hits first.
    overflow_points: u64,
    faults: u32,
    lost: u64,
    replayed: u64,
    checkpoints_valid: u32,
    checkpoints_rejected: u32,
}

impl<F: ShardFactory> ShardCtx<F> {
    fn new() -> Self {
        ShardCtx {
            link: None,
            pending: VecDeque::new(),
            finished: None,
            quarantined: false,
            attempts: 0,
            buffer: VecDeque::new(),
            sent: 0,
            acked: None,
            drop_tallied: None,
            since_checkpoint: 0,
            checkpoint: None,
            checkpoint_ordinal: 0,
            overflow_points: 0,
            faults: 0,
            lost: 0,
            replayed: 0,
            checkpoints_valid: 0,
            checkpoints_rejected: 0,
        }
    }
}

/// What one attempt to pull an event yielded (split out so borrow scopes
/// stay local).
enum Pulled<S> {
    Ev(Event<S>),
    Idle,
    Dead,
}

/// The supervisor's registered instruments. Every counter is bumped at
/// exactly the code site that bumps the matching [`RecoveryReport`]
/// tally, so a live scrape and the post-run report can be cross-checked
/// for equality (pinned by `tests/telemetry.rs`).
#[derive(Clone, Copy)]
struct RecoveryInstruments {
    tel: Telemetry,
    faults_panic: Counter,
    faults_stall: Counter,
    faults_corrupt: Counter,
    faults_non_finite: Counter,
    checkpoints_taken: Counter,
    checkpoints_rejected: Counter,
    replayed_chunks: Counter,
    replayed_points: Counter,
    lost_points: Counter,
    dropped_non_finite: Counter,
    injected_non_finite: Counter,
    decode_ns: Histogram,
}

impl RecoveryInstruments {
    fn register(tel: Telemetry) -> Self {
        RecoveryInstruments {
            tel,
            faults_panic: tel.counter(names::RECOVERY_FAULTS, &[("kind", "panic")]),
            faults_stall: tel.counter(names::RECOVERY_FAULTS, &[("kind", "stall")]),
            faults_corrupt: tel.counter(names::RECOVERY_FAULTS, &[("kind", "corrupt_checkpoint")]),
            faults_non_finite: tel.counter(names::RECOVERY_FAULTS, &[("kind", "non_finite")]),
            checkpoints_taken: tel.counter(names::RECOVERY_CHECKPOINTS, &[("outcome", "taken")]),
            checkpoints_rejected: tel
                .counter(names::RECOVERY_CHECKPOINTS, &[("outcome", "rejected")]),
            replayed_chunks: tel.counter(names::RECOVERY_REPLAYED_CHUNKS, &[]),
            replayed_points: tel.counter(names::RECOVERY_REPLAYED_POINTS, &[]),
            lost_points: tel.counter(names::RECOVERY_LOST_POINTS, &[]),
            dropped_non_finite: tel.counter(names::RECOVERY_DROPPED_NON_FINITE, &[]),
            injected_non_finite: tel.counter(names::RECOVERY_INJECTED_NON_FINITE, &[]),
            decode_ns: tel.histogram(names::CHECKPOINT_DECODE_NS, &[]),
        }
    }

    /// The fault-class counter a [`Detected`] fault rolls up into.
    fn fault_counter(&self, detected: &Detected) -> Counter {
        match detected {
            Detected::Panic(_) => self.faults_panic,
            Detected::Stall => self.faults_stall,
            Detected::BadCheckpoint(_) => self.faults_corrupt,
        }
    }
}

/// The supervisor: owns the per-shard worker epochs, the replay buffers,
/// the fault plan, and all accounting.
struct SupervisorCore<'e, F: ShardFactory> {
    factory: F,
    engine: &'e ShardedIngest,
    policy: RetryPolicy,
    plan: FaultPlan,
    interval: Option<u64>,
    stall: Option<Duration>,
    max_replay: usize,
    mode: Mode,
    shards: Vec<ShardCtx<F>>,
    events: Vec<FaultEvent>,
    lost_points: u64,
    lost_hull: ExactHull,
    lost_unbounded: bool,
    dropped_non_finite: u64,
    injected_non_finite: u64,
    replayed_chunks: u64,
    replayed_points: u64,
    checkpoints_taken: u64,
    checkpoints_rejected: u64,
    inst: RecoveryInstruments,
    worker_inst: WorkerInstruments,
}

impl<'e, F: ShardFactory> SupervisorCore<'e, F> {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the config struct
    fn new(
        factory: F,
        engine: &'e ShardedIngest,
        policy: RetryPolicy,
        plan: FaultPlan,
        interval: Option<u64>,
        stall: Option<Duration>,
        max_replay: usize,
        mode: Mode,
    ) -> Self {
        SupervisorCore {
            factory,
            engine,
            policy,
            plan,
            interval,
            stall,
            max_replay,
            mode,
            shards: (0..engine.shards()).map(|_| ShardCtx::new()).collect(),
            events: Vec::new(),
            lost_points: 0,
            lost_hull: ExactHull::new(),
            lost_unbounded: false,
            dropped_non_finite: 0,
            injected_non_finite: 0,
            replayed_chunks: 0,
            replayed_points: 0,
            checkpoints_taken: 0,
            checkpoints_rejected: 0,
            inst: RecoveryInstruments::register(engine.telemetry()),
            worker_inst: WorkerInstruments::register(
                engine.telemetry(),
                engine.builder().kind().label(),
            ),
        }
    }

    /// Drives the whole run: chunk, dispatch, recover, finish, report.
    fn run<I>(mut self, items: I) -> (Vec<F::State>, RecoveryReport, Instant)
    where
        I: IntoIterator<Item = F::Item>,
    {
        let start = Instant::now();
        let chunk_size = self.engine.chunk();
        let shard_count = self.engine.shards();
        let mut buf: Vec<F::Item> = Vec::with_capacity(chunk_size);
        let mut seq = 0_u64;
        for item in items {
            buf.push(item);
            if buf.len() == chunk_size {
                let full = std::mem::replace(&mut buf, Vec::with_capacity(chunk_size));
                self.submit(seq, full);
                seq += 1;
            }
        }
        if !buf.is_empty() {
            self.submit(seq, buf);
        }
        let mut states = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            states.push(self.finish_shard(shard));
        }
        let report = self.into_report(&states);
        (states, report, start)
    }

    /// Routes one chunk: splice scripted poison, account quarantined
    /// shards, then dispatch (directly in abort mode, via the replay
    /// buffer in degrade mode).
    fn submit(&mut self, seq: u64, mut items: Vec<F::Item>) {
        let shard = (seq % self.engine.shards() as u64) as usize;
        if let Some(len) = self.plan.take_burst(shard, seq) {
            for _ in 0..len {
                items.push(F::poison());
            }
            self.injected_non_finite += len as u64;
            self.inst.injected_non_finite.add(len as u64);
            self.inst.tel.event(
                "recovery",
                "inject_non_finite",
                seq,
                &[("shard", shard as i64), ("count", len as i64)],
            );
        }
        if self.shards[shard].quarantined {
            self.account_lost(shard, &items);
            return;
        }
        match self.mode {
            Mode::Abort => {
                if let Err((fseq, d)) = self.drain_ready_events(shard) {
                    self.handle_fault(shard, fseq, d);
                }
                self.ensure_live(shard);
                let inject = self.plan.take_worker_fault(shard, seq);
                let cmd = Cmd {
                    seq,
                    items,
                    checkpoint: false,
                    inject,
                };
                if let Err(d) = self.send_cmd(shard, cmd) {
                    self.handle_fault(shard, seq, d);
                }
            }
            Mode::Degrade => {
                let checkpoint = self.tick_checkpoint(shard, items.len());
                self.shards[shard].buffer.push_back(Buffered {
                    seq,
                    items,
                    checkpoint,
                });
                self.pump(shard);
                self.enforce_replay_bound(shard);
            }
        }
    }

    /// Advances the checkpoint clock for `len` more items; `true` when
    /// this chunk's ack must carry a checkpoint. The decision is made
    /// once at buffering time (and stored), so replays re-take the same
    /// checkpoints at the same boundaries.
    fn tick_checkpoint(&mut self, shard: usize, len: usize) -> bool {
        let Some(interval) = self.interval else {
            return false;
        };
        let ctx = &mut self.shards[shard];
        ctx.since_checkpoint += len as u64;
        if ctx.since_checkpoint >= interval {
            ctx.since_checkpoint = 0;
            true
        } else {
            false
        }
    }

    /// Dispatches every undelivered buffered chunk to the shard's live
    /// epoch, processing feedback (and faults) as it goes. Returns once
    /// the buffer is fully in flight or the shard is quarantined.
    fn pump(&mut self, shard: usize) {
        loop {
            if let Err((fseq, d)) = self.drain_ready_events(shard) {
                self.handle_fault(shard, fseq, d);
                continue;
            }
            {
                let ctx = &self.shards[shard];
                if ctx.quarantined || ctx.sent >= ctx.buffer.len() {
                    return;
                }
            }
            self.ensure_live(shard);
            let (seq, items, checkpoint) = {
                let ctx = &self.shards[shard];
                let b = &ctx.buffer[ctx.sent];
                (b.seq, b.items.clone(), b.checkpoint)
            };
            let inject = self.plan.take_worker_fault(shard, seq);
            let cmd = Cmd {
                seq,
                items,
                checkpoint,
                inject,
            };
            match self.send_cmd(shard, cmd) {
                Ok(()) => self.shards[shard].sent += 1,
                Err(d) => self.handle_fault(shard, seq, d),
            }
        }
    }

    /// Evicts acknowledged chunks past the replay bound (soft bound:
    /// unacknowledged chunks are never evicted — dropping one would lose
    /// data even on a fault-free run).
    fn enforce_replay_bound(&mut self, shard: usize) {
        if self.max_replay == 0 {
            return;
        }
        loop {
            let ctx = &mut self.shards[shard];
            if ctx.buffer.len() <= self.max_replay {
                return;
            }
            let evictable = match (ctx.buffer.front(), ctx.acked) {
                (Some(front), Some(acked)) => front.seq <= acked,
                _ => false,
            };
            if !evictable {
                return;
            }
            if let Some(b) = ctx.buffer.pop_front() {
                ctx.sent = ctx.sent.saturating_sub(1);
                let finite = b.items.iter().filter(|i| F::point(i).is_finite()).count();
                ctx.overflow_points += finite as u64;
            }
        }
    }

    /// Processes every already-available event for `shard` (never
    /// blocks). A checkpoint that fails validation surfaces as the
    /// returned fault.
    fn drain_ready_events(&mut self, shard: usize) -> Result<(), (u64, Detected)> {
        loop {
            let pulled = {
                let ctx = &mut self.shards[shard];
                if let Some(ev) = ctx.pending.pop_front() {
                    Pulled::Ev(ev)
                } else {
                    match ctx.link.as_ref() {
                        None => Pulled::Idle,
                        Some(link) => match link.rx.try_recv() {
                            Ok(ev) => Pulled::Ev(ev),
                            Err(mpsc::TryRecvError::Empty) => Pulled::Idle,
                            Err(mpsc::TryRecvError::Disconnected) => {
                                if ctx.finished.is_some() {
                                    Pulled::Idle
                                } else {
                                    Pulled::Dead
                                }
                            }
                        },
                    }
                }
            };
            match pulled {
                Pulled::Ev(ev) => self.process_event(shard, ev)?,
                Pulled::Idle => return Ok(()),
                Pulled::Dead => {
                    let seq = self.next_unacked_seq(shard);
                    let detected = self.take_dead(shard);
                    return Err((seq, detected));
                }
            }
        }
    }

    /// Best-effort chunk attribution for faults detected outside a
    /// specific send: the first chunk the dead epoch never confirmed.
    fn next_unacked_seq(&self, shard: usize) -> u64 {
        let ctx = &self.shards[shard];
        match ctx.acked {
            Some(a) => a + 1,
            None => ctx.buffer.front().map_or(0, |b| b.seq),
        }
    }

    /// Reaps a dead worker epoch, capturing its panic payload.
    fn take_dead(&mut self, shard: usize) -> Detected {
        match self.shards[shard].link.take() {
            Some(link) => Detected::Panic(link.handle.join().err()),
            None => Detected::Panic(None),
        }
    }

    /// Applies one worker event to the accounting. A rejected checkpoint
    /// is returned as a fault for the caller to handle.
    fn process_event(&mut self, shard: usize, ev: Event<F::State>) -> Result<(), (u64, Detected)> {
        match ev {
            Event::Final { state } => {
                self.shards[shard].finished = Some(state);
                Ok(())
            }
            Event::Ack {
                seq,
                points_seen,
                dropped,
                snapshot,
            } => {
                self.shards[shard].acked = Some(seq);
                let fresh = self.shards[shard].drop_tallied.is_none_or(|w| seq > w);
                if dropped > 0 && fresh {
                    self.shards[shard].drop_tallied = Some(seq);
                    self.dropped_non_finite += dropped;
                    self.inst.dropped_non_finite.add(dropped);
                    self.inst.faults_non_finite.inc();
                    self.shards[shard].faults += 1;
                    self.events.push(FaultEvent {
                        shard,
                        chunk: seq,
                        fault: DetectedFault::NonFinite { dropped },
                        action: RecoveryAction::Sanitized { dropped },
                    });
                    self.inst.tel.event(
                        "recovery",
                        "sanitized",
                        seq,
                        &[("shard", shard as i64), ("dropped", dropped as i64)],
                    );
                }
                match snapshot {
                    Some(inner) => self.accept_checkpoint(shard, seq, points_seen, &inner),
                    None => Ok(()),
                }
            }
        }
    }

    /// Seals, (optionally) corrupts per the plan, and validates one
    /// checkpoint. Valid: store it and shrink the replay buffer to the
    /// uncovered suffix. Invalid: surface a fault.
    fn accept_checkpoint(
        &mut self,
        shard: usize,
        seq: u64,
        tick: u64,
        inner: &[u8],
    ) -> Result<(), (u64, Detected)> {
        self.checkpoints_taken += 1;
        self.inst.checkpoints_taken.inc();
        let ordinal = {
            let ctx = &mut self.shards[shard];
            ctx.checkpoint_ordinal += 1;
            ctx.checkpoint_ordinal
        };
        let mut sealed = seal_checkpoint(shard as u64, tick, inner);
        if let Some(byte) = self.plan.take_corrupt(shard, ordinal) {
            let idx = byte % sealed.len().max(1);
            if let Some(b) = sealed.get_mut(idx) {
                *b ^= 0xff;
            }
        }
        let verdict = if self.inst.decode_ns.enabled() {
            let t0 = Instant::now();
            let verdict = self.validate_checkpoint(shard, &sealed);
            self.inst.decode_ns.record(t0.elapsed().as_nanos() as u64);
            verdict
        } else {
            self.validate_checkpoint(shard, &sealed)
        };
        match verdict {
            Ok(()) => {
                let ctx = &mut self.shards[shard];
                ctx.checkpoints_valid += 1;
                ctx.checkpoint = Some(ValidCheckpoint { tick, sealed });
                while ctx.buffer.front().is_some_and(|b| b.seq <= seq) {
                    ctx.buffer.pop_front();
                    ctx.sent = ctx.sent.saturating_sub(1);
                }
                ctx.overflow_points = 0;
                Ok(())
            }
            Err(e) => {
                self.checkpoints_rejected += 1;
                self.inst.checkpoints_rejected.inc();
                self.shards[shard].checkpoints_rejected += 1;
                Err((seq, Detected::BadCheckpoint(e)))
            }
        }
    }

    /// Full validation: envelope decode, shard-id match, and a complete
    /// restore of the inner snapshot. A checkpoint is only trusted once
    /// it has actually produced a state.
    fn validate_checkpoint(&self, shard: usize, sealed: &[u8]) -> Result<(), SnapshotError> {
        let env = open_checkpoint(sealed)?;
        if env.shard != shard as u64 {
            return Err(SnapshotError::Malformed("checkpoint shard id mismatch"));
        }
        let _restored = self.factory.restore(env.snapshot)?;
        Ok(())
    }

    /// Restores a validated checkpoint into a fresh shard state.
    fn restore_checkpoint(&self, cp: &ValidCheckpoint) -> Result<F::State, SnapshotError> {
        let env = open_checkpoint(&cp.sealed)?;
        self.factory.restore(env.snapshot)
    }

    /// Spawns a worker epoch for `shard` if none is live: from the last
    /// valid checkpoint when one exists, fresh otherwise.
    fn ensure_live(&mut self, shard: usize) {
        if self.shards[shard].link.is_some() || self.shards[shard].quarantined {
            return;
        }
        let state = match self.shards[shard].checkpoint.take() {
            Some(cp) => match self.restore_checkpoint(&cp) {
                Ok(state) => {
                    self.shards[shard].checkpoint = Some(cp);
                    state
                }
                Err(_) => {
                    // Unreachable in practice (validation restored it
                    // once already); degrade honestly if it happens: the
                    // checkpointed prefix is lost with no geometry.
                    self.lost_points += cp.tick;
                    self.inst.lost_points.add(cp.tick);
                    self.lost_unbounded = true;
                    self.shards[shard].lost += cp.tick;
                    self.factory.fresh()
                }
            },
            None => self.factory.fresh(),
        };
        self.shards[shard].link = Some(spawn_worker::<F>(state, self.worker_inst));
    }

    /// Sends one command, detecting death (disconnect) and — when a
    /// stall deadline is configured — stalls (bounded retry on a full
    /// queue). Events arriving while blocked are queued for processing.
    fn send_cmd(&mut self, shard: usize, cmd: Cmd<F::Item>) -> Result<(), Detected> {
        let Some(link) = self.shards[shard].link.take() else {
            return Err(Detected::Panic(None));
        };
        let Some(tx) = link.tx.clone() else {
            // The finish phase closed this epoch's channel; a live send
            // afterwards means the epoch must be replaced.
            drop(link);
            return Err(Detected::Panic(None));
        };
        let mut gathered: Vec<Event<F::State>> = Vec::new();
        let verdict: Result<(), Detected> = match self.stall {
            None => tx.send(cmd).map_err(|_| Detected::Panic(None)),
            Some(deadline) => {
                let begun = Instant::now();
                let mut pending_cmd = cmd;
                loop {
                    match tx.try_send(pending_cmd) {
                        Ok(()) => break Ok(()),
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            break Err(Detected::Panic(None))
                        }
                        Err(mpsc::TrySendError::Full(c)) => {
                            pending_cmd = c;
                            let elapsed = begun.elapsed();
                            if elapsed >= deadline {
                                break Err(Detected::Stall);
                            }
                            let wait = (deadline - elapsed).min(Duration::from_millis(5));
                            match link.rx.recv_timeout(wait) {
                                Ok(ev) => gathered.push(ev),
                                Err(mpsc::RecvTimeoutError::Timeout) => {}
                                Err(mpsc::RecvTimeoutError::Disconnected) => {
                                    break Err(Detected::Panic(None))
                                }
                            }
                        }
                    }
                }
            }
        };
        self.shards[shard].pending.extend(gathered);
        match verdict {
            Ok(()) => {
                self.shards[shard].link = Some(link);
                Ok(())
            }
            Err(Detected::Panic(_)) => Err(Detected::Panic(link.handle.join().err())),
            Err(d) => {
                drop(link); // abandon the stalled epoch, never join it
                Err(d)
            }
        }
    }

    /// Central fault response: abandon the epoch, then abort, restart,
    /// or quarantine according to mode and policy.
    fn handle_fault(&mut self, shard: usize, seq: u64, detected: Detected) {
        {
            let ctx = &mut self.shards[shard];
            ctx.link = None; // abandon whatever epoch produced the fault
            ctx.pending.clear(); // stale events must never reach the books
            ctx.finished = None;
            ctx.acked = None;
            ctx.faults += 1;
        }
        if self.mode == Mode::Abort {
            match detected {
                Detected::Panic(Some(payload)) => std::panic::resume_unwind(payload),
                Detected::Panic(None) => {
                    panic!("shard worker panicked") // lint:allow(no-panic): re-raising a worker panic on the coordinator is the unsupervised contract (see the characterization test)
                }
                Detected::Stall | Detected::BadCheckpoint(_) => {
                    panic!("shard worker fault in unsupervised mode") // lint:allow(no-panic): unreachable — unsupervised runs configure no stall deadline and take no checkpoints
                }
            }
        }
        self.inst.fault_counter(&detected).inc();
        let fault = match &detected {
            Detected::Panic(_) => DetectedFault::WorkerPanic,
            Detected::Stall => DetectedFault::Stall,
            Detected::BadCheckpoint(e) => DetectedFault::CorruptCheckpoint(e.clone()),
        };
        // Points evicted past the replay bound are unrecoverable the
        // moment a fault needs them: account them as lost, traceless.
        let overflow = std::mem::take(&mut self.shards[shard].overflow_points);
        if overflow > 0 {
            self.lost_points += overflow;
            self.inst.lost_points.add(overflow);
            self.shards[shard].lost += overflow;
            self.lost_unbounded = true;
        }
        if self.shards[shard].attempts >= self.policy.max_attempts() {
            self.quarantine(shard, seq, fault);
        } else {
            self.restart(shard, seq, fault);
        }
    }

    /// Schedules a restart: the next `ensure_live` restores the last
    /// valid checkpoint and `pump` replays the uncovered buffer.
    fn restart(&mut self, shard: usize, seq: u64, fault: DetectedFault) {
        let (from_tick, replay_chunks, replay_points) = {
            let ctx = &mut self.shards[shard];
            ctx.attempts += 1;
            let from_tick = ctx.checkpoint.as_ref().map_or(0, |c| c.tick);
            let chunks = ctx.sent as u64;
            let points: u64 = ctx
                .buffer
                .iter()
                .take(ctx.sent)
                .map(|b| b.items.len() as u64)
                .sum();
            ctx.sent = 0;
            ctx.replayed += chunks;
            (from_tick, chunks, points)
        };
        self.replayed_chunks += replay_chunks;
        self.replayed_points += replay_points;
        self.inst.replayed_chunks.add(replay_chunks);
        self.inst.replayed_points.add(replay_points);
        let backoff = self.policy.backoff(shard, self.shards[shard].attempts);
        self.events.push(FaultEvent {
            shard,
            chunk: seq,
            fault,
            action: RecoveryAction::Restarted {
                from_tick,
                replayed_chunks: replay_chunks,
                backoff,
            },
        });
        self.inst.tel.event(
            "recovery",
            "restarted",
            seq,
            &[
                ("shard", shard as i64),
                ("from_tick", from_tick as i64),
                ("replayed_chunks", replay_chunks as i64),
            ],
        );
    }

    /// Retries exhausted: the shard keeps only its last valid checkpoint
    /// and everything since is accounted as lost.
    fn quarantine(&mut self, shard: usize, seq: u64, fault: DetectedFault) {
        let buffered: Vec<Vec<F::Item>> = {
            let ctx = &mut self.shards[shard];
            ctx.quarantined = true;
            ctx.sent = 0;
            ctx.buffer.drain(..).map(|b| b.items).collect()
        };
        let before = self.lost_points;
        for items in &buffered {
            self.account_lost(shard, items);
        }
        let lost_now = self.lost_points - before;
        self.events.push(FaultEvent {
            shard,
            chunk: seq,
            fault,
            action: RecoveryAction::Quarantined {
                lost_points: lost_now,
            },
        });
        self.inst.tel.event(
            "recovery",
            "quarantined",
            seq,
            &[("shard", shard as i64), ("lost_points", lost_now as i64)],
        );
    }

    /// Counts (and, where possible, geometrically records) finite points
    /// that no shard state will ever ingest.
    fn account_lost(&mut self, shard: usize, items: &[F::Item]) {
        let mut finite = 0_u64;
        for item in items {
            let p = F::point(item);
            if p.is_finite() {
                finite += 1;
                self.lost_hull.insert(p);
            }
        }
        self.lost_points += finite;
        self.inst.lost_points.add(finite);
        self.shards[shard].lost += finite;
    }

    /// Waits for the next event during the finish phase (blocking, with
    /// the stall deadline when configured).
    fn wait_event(&mut self, shard: usize) -> Result<Option<Event<F::State>>, (u64, Detected)> {
        if let Some(ev) = self.shards[shard].pending.pop_front() {
            return Ok(Some(ev));
        }
        enum Waited<S> {
            Ev(Event<S>),
            NoLink,
            Dead,
            Stalled,
        }
        let waited = {
            let ctx = &self.shards[shard];
            match ctx.link.as_ref() {
                None => Waited::NoLink,
                Some(link) => match self.stall {
                    None => match link.rx.recv() {
                        Ok(ev) => Waited::Ev(ev),
                        Err(_) => {
                            if ctx.finished.is_some() {
                                Waited::NoLink
                            } else {
                                Waited::Dead
                            }
                        }
                    },
                    Some(deadline) => match link.rx.recv_timeout(deadline) {
                        Ok(ev) => Waited::Ev(ev),
                        Err(mpsc::RecvTimeoutError::Timeout) => Waited::Stalled,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            if ctx.finished.is_some() {
                                Waited::NoLink
                            } else {
                                Waited::Dead
                            }
                        }
                    },
                },
            }
        };
        match waited {
            Waited::Ev(ev) => Ok(Some(ev)),
            Waited::NoLink => Ok(None),
            Waited::Dead => {
                let seq = self.next_unacked_seq(shard);
                let detected = self.take_dead(shard);
                Err((seq, detected))
            }
            Waited::Stalled => {
                let seq = self.next_unacked_seq(shard);
                self.shards[shard].link = None; // abandon, never join
                Err((seq, Detected::Stall))
            }
        }
    }

    /// Completes one shard: replay anything outstanding, close its
    /// channel, wait for the final state — recovering from faults that
    /// surface on the way out — and return the state that joins the
    /// merge.
    fn finish_shard(&mut self, shard: usize) -> F::State {
        loop {
            self.pump(shard);
            if self.shards[shard].quarantined {
                return self.quarantined_state(shard);
            }
            if self.shards[shard].finished.is_some() {
                if let Some(link) = self.shards[shard].link.take() {
                    let _ = link.handle.join();
                }
                if let Some(state) = self.shards[shard].finished.take() {
                    return state;
                }
            }
            self.ensure_live(shard);
            if let Some(link) = self.shards[shard].link.as_mut() {
                link.tx = None; // close: the worker drains and reports Final
            }
            match self.wait_event(shard) {
                Ok(Some(ev)) => {
                    if let Err((fseq, d)) = self.process_event(shard, ev) {
                        self.handle_fault(shard, fseq, d);
                    }
                }
                Ok(None) => {}
                Err((fseq, d)) => self.handle_fault(shard, fseq, d),
            }
        }
    }

    /// The state a quarantined shard contributes to the merge: its last
    /// valid checkpoint (already accounted), or an empty summary.
    fn quarantined_state(&mut self, shard: usize) -> F::State {
        match self.shards[shard].checkpoint.take() {
            Some(cp) => match self.restore_checkpoint(&cp) {
                Ok(state) => state,
                Err(_) => {
                    // Unreachable in practice; degrade honestly.
                    self.lost_points += cp.tick;
                    self.inst.lost_points.add(cp.tick);
                    self.lost_unbounded = true;
                    self.shards[shard].lost += cp.tick;
                    self.factory.fresh()
                }
            },
            None => self.factory.fresh(),
        }
    }

    /// Folds the accounting into the public report.
    fn into_report(self, states: &[F::State]) -> RecoveryReport {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, ctx)| ShardHealth {
                shard: i,
                status: if ctx.quarantined {
                    ShardStatus::Quarantined
                } else if ctx.attempts > 0 {
                    ShardStatus::Recovered
                } else {
                    ShardStatus::Healthy
                },
                points_seen: states.get(i).map_or(0, |s| F::points_seen(s)),
                lost_points: ctx.lost,
                faults: ctx.faults,
                retries: ctx.attempts,
                replayed_chunks: ctx.replayed,
                checkpoints_valid: ctx.checkpoints_valid,
                checkpoints_rejected: ctx.checkpoints_rejected,
            })
            .collect();
        RecoveryReport {
            shards,
            events: self.events,
            lost_points: self.lost_points,
            dropped_non_finite: self.dropped_non_finite,
            injected_non_finite: self.injected_non_finite,
            replayed_chunks: self.replayed_chunks,
            replayed_points: self.replayed_points,
            checkpoints_taken: self.checkpoints_taken,
            checkpoints_rejected: self.checkpoints_rejected,
            lost_unbounded: self.lost_unbounded,
            lost_hull: self.lost_hull,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SummaryKind;

    fn spiral(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = 2.399963229728653 * i as f64;
                let rad = 1.0 + 0.01 * i as f64;
                Point2::new(rad * t.cos(), rad * t.sin())
            })
            .collect()
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let policy = RetryPolicy::new(5).with_seed(42).with_base_backoff(8);
        let a: Vec<u64> = (1..=5).map(|k| policy.backoff(3, k)).collect();
        let b: Vec<u64> = (1..=5).map(|k| policy.backoff(3, k)).collect();
        assert_eq!(a, b, "same (seed, shard, attempt) must repeat exactly");
        // The exponential part dominates: attempt k+1 at least doubles
        // the floor while jitter stays below one base unit.
        for (k, w) in a.iter().enumerate() {
            let floor = 8_u64 << k;
            assert!(*w >= floor && *w < floor + 8, "attempt {}: {w}", k + 1);
        }
        // Different shards jitter differently (with overwhelming
        // probability for this seed).
        assert_ne!((1..=5).map(|k| policy.backoff(0, k)).collect::<Vec<_>>(), a);
    }

    #[test]
    fn fault_plan_consumes_each_fault_once() {
        let mut plan = FaultPlan::new()
            .crash(1, 7)
            .stall(0, 4, Duration::from_millis(50))
            .corrupt_checkpoint(1, 2, 13)
            .non_finite_burst(0, 2, 5);
        assert_eq!(plan.len(), 4);
        assert!(matches!(plan.take_worker_fault(1, 7), Some(Inject::Crash)));
        assert!(plan.take_worker_fault(1, 7).is_none(), "consumed");
        assert!(matches!(
            plan.take_worker_fault(0, 4),
            Some(Inject::Stall(_))
        ));
        assert!(plan.take_corrupt(1, 1).is_none(), "wrong ordinal");
        assert_eq!(plan.take_corrupt(1, 2), Some(13));
        assert!(plan.take_corrupt(1, 2).is_none(), "consumed");
        assert_eq!(plan.take_burst(0, 2), Some(5));
        assert!(plan.take_burst(0, 2).is_none(), "consumed");
        // Mismatched coordinates never fire.
        let mut miss = FaultPlan::new().crash(0, 3);
        assert!(miss.take_worker_fault(1, 3).is_none());
        assert!(miss.take_worker_fault(0, 2).is_none());
    }

    #[test]
    fn seeded_plans_replay_exactly() {
        for seed in [0_u64, 1, 0xdead_beef, u64::MAX] {
            let a = FaultPlan::seeded(seed, 4, 100);
            let b = FaultPlan::seeded(seed, 4, 100);
            assert_eq!(a.scripted(), b.scripted(), "seed {seed}");
            assert!(!a.is_empty() && a.len() <= 3, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "injected fault: worker crash")]
    fn unsupervised_stream_propagates_worker_panics() {
        // Characterization: without a supervisor, a worker panic aborts
        // the whole run (re-raised on the caller). The supervised path
        // turns exactly this fault into checkpoint-replay recovery.
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Exact), 2).with_chunk(64);
        let _ = run_stream_propagating(&engine, FaultPlan::new().crash(1, 1), spiral(1000));
    }

    #[test]
    fn supervised_crash_recovers_bit_identical() {
        let pts = spiral(4000);
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16), 3)
            .with_chunk(128);
        let clean = engine.run_stream(pts.iter().copied());
        let supervised = SupervisedIngest::new(engine)
            .with_checkpoint_interval(512)
            .with_fault_plan(FaultPlan::new().crash(1, 10));
        let run = supervised.run_stream(pts.iter().copied());
        assert!(!run.is_degraded());
        assert_eq!(run.report.total_retries(), 1);
        assert_eq!(run.report.shards[1].status, ShardStatus::Recovered);
        assert_eq!(
            run.run.summary.hull_ref().vertices(),
            clean.summary.hull_ref().vertices()
        );
        assert_eq!(run.run.summary.points_seen(), clean.summary.points_seen());
        assert_eq!(run.run.summary.error_bound(), clean.summary.error_bound());
    }

    #[test]
    fn exhausted_retries_degrade_with_exact_accounting() {
        let pts = spiral(4000);
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Exact), 2).with_chunk(100);
        // Crash shard 0 more times than the policy tolerates: every
        // replay re-fires the *next* scripted crash.
        let plan = FaultPlan::new().crash(0, 4).crash(0, 4).crash(0, 4);
        let supervised = SupervisedIngest::new(engine)
            .with_checkpoint_interval(200)
            .with_retry_policy(RetryPolicy::new(2))
            .with_fault_plan(plan);
        let run = supervised.run_stream(pts.iter().copied());
        assert!(run.is_degraded());
        assert_eq!(run.report.shards[0].status, ShardStatus::Quarantined);
        let seen: u64 = run.report.shards.iter().map(|s| s.points_seen).sum();
        assert_eq!(
            seen + run.report.lost_points,
            pts.len() as u64,
            "every stream point is either seen by a shard state or accounted lost"
        );
        assert!(run.report.lost_points > 0);
    }
}
