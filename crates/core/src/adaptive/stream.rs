//! The streaming adaptive hull — the paper's main result (§5, Theorem 5.4).
//!
//! # Structure
//!
//! A [`UniformHull`] maintains the extrema in the `r` uniform directions,
//! the hull `A` of those extrema, and its perimeter `P`. On top of it, one
//! *refinement tree* per uniform sector `[jθ0, (j+1)θ0]` records adaptively
//! chosen bisection directions (§5.1). A tree node covers a dyadic
//! direction range and stores, at its leaves, the extrema at the range
//! boundaries; an internal node's bisecting direction is an *active
//! adaptive sample direction* whose extremum is the shared endpoint of its
//! children.
//!
//! # Per-point update (Algorithm AdaptiveHull, §5.2)
//!
//! 1. If `q` is inside `A` it cannot beat any active direction (every
//!    stored extremum dominates `A`'s support at its own direction):
//!    discard after one `O(log r)` point location. This implements step 1 —
//!    the "ring of uncertainty triangles" is exactly the intersection of
//!    the supporting half-planes at all active directions.
//! 2. Otherwise [`UniformHull::insert_detailed`] reports the *beaten arc*:
//!    the continuous range of directions in which `q` beats the stored
//!    support. Only sectors intersecting the arc can contain affected
//!    refinement-tree nodes (the arc is computed against `A ⊆ A'`, hence a
//!    superset of the directions beaten against the adaptive hull `A'`).
//! 3. Each affected tree is updated recursively: leaves merge `q` into
//!    beaten endpoints and re-refine while `w(e) > 1` (bounded by the depth
//!    cap `k`); internal nodes whose subtree changed refresh their
//!    unrefinement threshold or collapse immediately when `w(e) <= 1`
//!    (steps 3/5).
//! 4. Since `P` may have grown, due entries are drained from the
//!    unrefinement queue (step 4). With the power-of-two
//!    [`crate::adaptive::queue::BucketQueue`] this may
//!    unrefine up to a factor 2 early, as §5.3 allows.

use crate::adaptive::arena::{Arena, NodeId};
use crate::adaptive::queue::{BucketQueue, HeapQueue, UnrefineQueue};
use crate::adaptive::weight::{slant, unrefine_threshold, weight};
use crate::batch::{incircle, CertCache, BATCH_LEAF};
use crate::summary::{GenCache, HullCache, HullSummary, Mergeable};
use crate::uniform::{BeatenArc, UniformEffect, UniformHull};
use core::f64::consts::TAU;
use geom::dyadic::{DirGrid, DirRange};
use geom::{ConvexPolygon, Point2, UncertaintyTriangle};

/// Which unrefinement queue the adaptive hull uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Binary min-heap: exact thresholds, `O(log r)` per operation.
    #[default]
    Heap,
    /// Power-of-two buckets: `O(1)` per operation, unrefines up to a factor
    /// of two early (§5.3; error stays `O(D/r²)`).
    Bucket,
}

#[derive(Debug, Clone)]
enum QueueImpl {
    Heap(HeapQueue),
    Bucket(BucketQueue),
}

impl QueueImpl {
    fn push(&mut self, threshold: f64, id: NodeId) {
        match self {
            QueueImpl::Heap(q) => q.push(threshold, id),
            QueueImpl::Bucket(q) => q.push(threshold, id),
        }
    }
    fn pop_due(&mut self, p: f64) -> Option<(f64, NodeId)> {
        match self {
            QueueImpl::Heap(q) => q.pop_due(p),
            QueueImpl::Bucket(q) => q.pop_due(p),
        }
    }
    /// Is a node with (recomputed) threshold `t` due at perimeter `p` under
    /// this queue's rounding discipline?
    fn due(&self, t: f64, p: f64) -> bool {
        match self {
            QueueImpl::Heap(_) => t <= p,
            QueueImpl::Bucket(_) => {
                if t <= 0.0 {
                    true
                } else {
                    t.log2().floor().exp2() <= p
                }
            }
        }
    }
    fn len(&self) -> usize {
        match self {
            QueueImpl::Heap(q) => q.len(),
            QueueImpl::Bucket(q) => q.len(),
        }
    }
}

/// Configuration for [`AdaptiveHull`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveHullConfig {
    /// Number of uniform sample directions (power of two, `>= 8`).
    pub r: u32,
    /// Refinement-tree height limit `k` (`None` = the paper's `log2 r`).
    pub depth: Option<u32>,
    /// Unrefinement queue implementation.
    pub queue: QueueKind,
}

impl AdaptiveHullConfig {
    /// Default configuration for a given `r`.
    pub fn new(r: u32) -> Self {
        AdaptiveHullConfig {
            r,
            depth: None,
            queue: QueueKind::Heap,
        }
    }

    /// Sets the tree height limit.
    pub fn with_depth(mut self, k: u32) -> Self {
        self.depth = Some(k);
        self
    }

    /// Selects the unrefinement queue.
    pub fn with_queue(mut self, q: QueueKind) -> Self {
        self.queue = q;
        self
    }
}

/// A refinement-tree node.
#[derive(Clone, Copy, Debug)]
struct Node {
    range: DirRange,
    kind: NodeKind,
}

#[derive(Clone, Copy, Debug)]
enum NodeKind {
    /// Hull edge: `a` is the stored extremum at `range.lo`, `b` at
    /// `range.hi`. A *vertex node* (paper Fig. 7) is the degenerate case
    /// `a == b`.
    Leaf { a: Point2, b: Point2 },
    /// Refined edge; the bisecting direction `range.mid()` is an active
    /// sample direction whose extremum is the children's shared endpoint.
    Internal { left: NodeId, right: NodeId },
}

/// The streaming adaptive-sampling convex hull summary (Theorem 5.4).
///
/// Keeps at most `2r + 1` stream points; the hull of the sample is within
/// `O(D/r²)` of the true convex hull at all times.
///
/// # Example
/// ```
/// use adaptive_hull::{AdaptiveHull, AdaptiveHullConfig, HullSummary};
/// use geom::Point2;
///
/// let mut hull = AdaptiveHull::new(AdaptiveHullConfig::new(16));
/// for i in 0..1000 {
///     let t = i as f64 * 0.1;
///     hull.insert(Point2::new(t.cos() * 10.0, t.sin() * 3.0));
/// }
/// assert!(hull.sample_size() <= 2 * 16 + 1);
/// let poly = hull.hull();
/// assert!(poly.len() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveHull {
    grid: DirGrid,
    uniform: UniformHull,
    arena: Arena<Node>,
    /// Root node per uniform sector; empty until the first point.
    roots: Vec<NodeId>,
    queue: QueueImpl,
    internal_count: usize,
    cache: HullCache,
    distinct: GenCache<usize>,
}

impl AdaptiveHull {
    /// Creates the summary.
    pub fn new(config: AdaptiveHullConfig) -> Self {
        let depth = config.depth.unwrap_or_else(|| config.r.trailing_zeros());
        let grid = DirGrid::new(config.r, depth);
        AdaptiveHull {
            grid,
            uniform: UniformHull::new(config.r),
            arena: Arena::new(),
            roots: Vec::new(),
            queue: match config.queue {
                QueueKind::Heap => QueueImpl::Heap(HeapQueue::new()),
                QueueKind::Bucket => QueueImpl::Bucket(BucketQueue::new()),
            },
            internal_count: 0,
            cache: HullCache::new(),
            distinct: GenCache::new(),
        }
    }

    /// Convenience constructor with defaults.
    pub fn with_r(r: u32) -> Self {
        Self::new(AdaptiveHullConfig::new(r))
    }

    /// Number of uniform directions `r`.
    pub fn r(&self) -> u32 {
        self.grid.r()
    }

    /// The direction grid in use.
    pub fn grid(&self) -> &DirGrid {
        &self.grid
    }

    /// Number of active adaptive sample directions (= internal tree nodes).
    pub fn adaptive_direction_count(&self) -> usize {
        self.internal_count
    }

    /// The underlying uniform structure (perimeter `P`, uniform extrema).
    pub fn uniform(&self) -> &UniformHull {
        &self.uniform
    }

    /// Queue length (diagnostics; includes stale lazy entries).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    // ------------------------------------------------------------------
    // Tree plumbing
    // ------------------------------------------------------------------

    fn node(&self, id: NodeId) -> &Node {
        self.arena
            .get(id)
            .expect("dangling refinement-tree node id")
    }

    /// Stored extremum at the left boundary of `id`'s range.
    fn leftmost(&self, id: NodeId) -> Point2 {
        let mut cur = id;
        loop {
            match self.node(cur).kind {
                NodeKind::Leaf { a, .. } => return a,
                NodeKind::Internal { left, .. } => cur = left,
            }
        }
    }

    /// Stored extremum at the right boundary of `id`'s range.
    fn rightmost(&self, id: NodeId) -> Point2 {
        let mut cur = id;
        loop {
            match self.node(cur).kind {
                NodeKind::Leaf { b, .. } => return b,
                NodeKind::Internal { right, .. } => cur = right,
            }
        }
    }

    fn endpoints(&self, id: NodeId) -> (Point2, Point2) {
        (self.leftmost(id), self.rightmost(id))
    }

    /// Frees a whole subtree, decrementing the active-direction count for
    /// every internal node removed.
    fn free_subtree(&mut self, id: NodeId) {
        if let Some(node) = self.arena.remove(id) {
            if let NodeKind::Internal { left, right } = node.kind {
                self.internal_count -= 1;
                self.free_subtree(left);
                self.free_subtree(right);
            }
        }
    }

    /// Collapses an internal node back into a leaf (unrefinement).
    fn collapse(&mut self, id: NodeId) {
        let (a, b) = self.endpoints(id);
        let node = self.node(id);
        let NodeKind::Internal { left, right } = node.kind else {
            return;
        };
        self.internal_count -= 1;
        // Free children (their own Internal descendants decrement too).
        if let Some(n) = self.arena.remove(left) {
            if let NodeKind::Internal {
                left: l2,
                right: r2,
            } = n.kind
            {
                self.internal_count -= 1;
                self.free_subtree(l2);
                self.free_subtree(r2);
            }
        }
        if let Some(n) = self.arena.remove(right) {
            if let NodeKind::Internal {
                left: l2,
                right: r2,
            } = n.kind
            {
                self.internal_count -= 1;
                self.free_subtree(l2);
                self.free_subtree(r2);
            }
        }
        let node = self.arena.get_mut(id).unwrap();
        node.kind = NodeKind::Leaf { a, b };
    }

    /// Refines a leaf while its weight exceeds 1 (depth-capped). The mid
    /// extremum is chosen among the stored endpoints — exactly the
    /// information available in a single pass (§5.2 step 5).
    fn try_refine(&mut self, id: NodeId) {
        let node = *self.node(id);
        let NodeKind::Leaf { a, b } = node.kind else {
            return;
        };
        if a == b || !node.range.bisectable(&self.grid) {
            return;
        }
        let p = self.uniform.perimeter();
        let s = slant(&self.grid, &node.range, a, b);
        if weight(s, node.range.depth, self.grid.r(), p) <= 1.0 {
            return;
        }
        let mid = node.range.mid(&self.grid);
        let um = self.grid.unit(mid);
        let t = if a.dot(um) >= b.dot(um) { a } else { b };
        let (lr, rr) = node.range.bisect(&self.grid);
        let left = self.arena.insert(Node {
            range: lr,
            kind: NodeKind::Leaf { a, b: t },
        });
        let right = self.arena.insert(Node {
            range: rr,
            kind: NodeKind::Leaf { a: t, b },
        });
        let n = self.arena.get_mut(id).unwrap();
        n.kind = NodeKind::Internal { left, right };
        self.internal_count += 1;
        self.queue
            .push(unrefine_threshold(s, node.range.depth, self.grid.r()), id);
        self.try_refine(left);
        self.try_refine(right);
    }

    /// Does the node's angular range intersect the (padded) beaten arc?
    fn range_overlaps_arc(&self, range: &DirRange, arc: &BeatenArc) -> bool {
        const PAD: f64 = 1e-9;
        let a_start = self.grid.angle(range.lo);
        let a_span = range.width(&self.grid);
        let b_start = arc.start;
        let b_span = (arc.end - arc.start).rem_euclid(TAU);
        let contains = |s: f64, span: f64, x: f64| ((x - s).rem_euclid(TAU)) <= span + 2.0 * PAD;
        contains(a_start - PAD, a_span, b_start) || contains(b_start - PAD, b_span, a_start)
    }

    /// Recursive update of a tree with a new point `q`. Returns `true` iff
    /// anything under `id` changed.
    fn update_node(&mut self, id: NodeId, q: Point2, arc: &BeatenArc) -> bool {
        let node = *self.node(id);
        if !self.range_overlaps_arc(&node.range, arc) {
            return false;
        }
        match node.kind {
            NodeKind::Leaf { a, b } => {
                let ul = self.grid.unit(node.range.lo);
                let ur = self.grid.unit(node.range.hi);
                let beats_l = q.dot(ul) > a.dot(ul);
                let beats_r = q.dot(ur) > b.dot(ur);
                if !beats_l && !beats_r {
                    return false;
                }
                let n = self.arena.get_mut(id).unwrap();
                n.kind = NodeKind::Leaf {
                    a: if beats_l { q } else { a },
                    b: if beats_r { q } else { b },
                };
                self.try_refine(id);
                true
            }
            NodeKind::Internal { left, right } => {
                let cl = self.update_node(left, q, arc);
                let cr = self.update_node(right, q, arc);
                if !(cl || cr) {
                    return false;
                }
                // Endpoints may have moved: re-evaluate this node.
                let (a, b) = self.endpoints(id);
                let s = slant(&self.grid, &node.range, a, b);
                let p = self.uniform.perimeter();
                if weight(s, node.range.depth, self.grid.r(), p) <= 1.0 {
                    self.collapse(id);
                    // A collapsed edge may immediately need re-refinement
                    // with the new endpoints (weights are not monotone in
                    // endpoint moves); keep the leaf invariant.
                    self.try_refine(id);
                } else {
                    self.queue
                        .push(unrefine_threshold(s, node.range.depth, self.grid.r()), id);
                }
                true
            }
        }
    }

    /// Step 4: unrefine everything whose threshold the grown perimeter has
    /// passed.
    fn drain_queue(&mut self) {
        let p = self.uniform.perimeter();
        while let Some((_, id)) = self.queue.pop_due(p) {
            let Some(node) = self.arena.get(id) else {
                continue; // stale id
            };
            let node = *node;
            let NodeKind::Internal { .. } = node.kind else {
                continue; // node was collapsed and is a leaf now
            };
            let (a, b) = self.endpoints(id);
            let s = slant(&self.grid, &node.range, a, b);
            let t = unrefine_threshold(s, node.range.depth, self.grid.r());
            if self.queue.due(t, p) {
                self.collapse(id);
            } else {
                self.queue.push(t, id);
            }
        }
    }

    /// Circular range of sector indices whose trees the arc may touch
    /// (padded one sector each side for floating-point safety).
    fn sectors_for_arc(&self, arc: &BeatenArc) -> (u32, u32) {
        let r = self.grid.r();
        let theta0 = TAU / r as f64;
        let s_start = (arc.start / theta0).floor() as i64;
        let span = (arc.end - arc.start).rem_euclid(TAU);
        let sectors_spanned = (span / theta0).ceil() as i64 + 1;
        let first = (s_start - 1).rem_euclid(r as i64) as u32;
        let count = (sectors_spanned + 2).min(r as i64) as u32;
        (first, count)
    }

    // ------------------------------------------------------------------
    // Introspection used by metrics, tests, and visualisation
    // ------------------------------------------------------------------

    /// In-order leaves (range, a, b) across all sectors.
    pub(crate) fn leaves(&self) -> Vec<(DirRange, Point2, Point2)> {
        let mut out = Vec::new();
        for &root in &self.roots {
            self.collect_leaves(root, &mut out);
        }
        out
    }

    fn collect_leaves(&self, id: NodeId, out: &mut Vec<(DirRange, Point2, Point2)>) {
        let node = self.node(id);
        match node.kind {
            NodeKind::Leaf { a, b } => out.push((node.range, a, b)),
            NodeKind::Internal { left, right } => {
                self.collect_leaves(left, out);
                self.collect_leaves(right, out);
            }
        }
    }

    /// The uncertainty triangles of the current adaptive hull's
    /// (non-degenerate) edges — the paper's per-edge error certificates.
    pub fn uncertainty_triangles(&self) -> Vec<UncertaintyTriangle> {
        self.leaves()
            .into_iter()
            .filter(|(_, a, b)| a != b)
            .map(|(range, a, b)| crate::adaptive::weight::uncertainty(&self.grid, &range, a, b))
            .collect()
    }

    /// Distinct stored sample points, in direction order.
    pub fn sample_points(&self) -> Vec<Point2> {
        let mut pts = Vec::new();
        for (_, a, b) in self.leaves() {
            for p in [a, b] {
                if pts.last() != Some(&p) {
                    pts.push(p);
                }
            }
        }
        // Cross-sector duplicates and the wrap-around duplicate.
        let mut dedup: Vec<Point2> = Vec::with_capacity(pts.len());
        for p in pts {
            if dedup.last() == Some(&p) {
                continue;
            }
            dedup.push(p);
        }
        while dedup.len() > 1 && dedup.first() == dedup.last() {
            dedup.pop();
        }
        dedup
    }

    /// Verifies the structural invariants (used heavily in tests):
    /// adjacent leaves share endpoints, sector boundaries agree with the
    /// uniform extrema, and every internal node still deserves to exist
    /// (`w > 1`, up to the queue's factor-2 rounding).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.roots.is_empty() {
            return Ok(());
        }
        let r = self.grid.r();
        if self.roots.len() != r as usize {
            return Err(format!("{} roots for r = {r}", self.roots.len()));
        }
        let leaves = self.leaves();
        // 1. Leaf ranges tile the circle in order.
        let mut expected = geom::dyadic::Dir(0);
        for (range, _, _) in &leaves {
            if range.lo != expected {
                return Err(format!(
                    "leaf range gap at {:?}, expected lo {:?}",
                    range, expected
                ));
            }
            expected = range.hi;
        }
        if expected != geom::dyadic::Dir(0) {
            return Err("leaf ranges do not close the circle".into());
        }
        // 2. Adjacent leaves share their boundary extremum.
        for w in leaves.windows(2) {
            let (_, _, b0) = w[0];
            let (_, a1, _) = w[1];
            if b0 != a1 {
                return Err(format!("adjacent leaves disagree: {b0:?} vs {a1:?}"));
            }
        }
        let (_, first_a, _) = leaves[0];
        let (_, _, last_b) = leaves[leaves.len() - 1];
        if first_a != last_b {
            return Err("wrap-around leaves disagree".into());
        }
        // 3. Sector boundary extrema match the uniform structure.
        for (range, a, _) in &leaves {
            if range.lo.0 % self.grid.sector_steps() == 0 {
                let j = self.grid.sector_of(range.lo);
                let e = self.uniform.extremum(j).expect("uniform initialised");
                let u = self.uniform.unit(j);
                if (e.dot(u) - a.dot(u)).abs() > 1e-9 * e.dot(u).abs().max(1.0) {
                    return Err(format!(
                        "sector {j} boundary extremum mismatch: tree {a:?} vs uniform {e:?}"
                    ));
                }
            }
        }
        // 4. Every internal node has weight > 1 after draining.
        let p = self.uniform.perimeter();
        for &root in &self.roots {
            self.check_internal_weights(root, p)?
        }
        Ok(())
    }

    fn check_internal_weights(&self, id: NodeId, p: f64) -> Result<(), String> {
        let node = self.node(id);
        if let NodeKind::Internal { left, right } = node.kind {
            let (a, b) = self.endpoints(id);
            let s = slant(&self.grid, &node.range, a, b);
            let w = weight(s, node.range.depth, self.grid.r(), p);
            if w <= 1.0 - 1e-9 {
                return Err(format!(
                    "internal node {:?} has weight {w} <= 1 (should have unrefined)",
                    node.range
                ));
            }
            self.check_internal_weights(left, p)?;
            self.check_internal_weights(right, p)?;
        }
        Ok(())
    }
}

impl AdaptiveHull {
    /// Snapshot payload: grid shape, queue discipline, the uniform
    /// substrate, and every refinement tree in preorder.
    ///
    /// Nodes carry no explicit ranges on the wire: a root's range is its
    /// sector and children are the parent's bisection, so the decoder
    /// rebuilds them exactly. The unrefinement queue is **not** encoded —
    /// its live content is a function of the tree: every internal node
    /// always has a queue entry carrying its current threshold (creation,
    /// endpoint updates, and pop-recompute all re-push it), and the extra
    /// stale/duplicate entries the lazy discipline accumulates are
    /// behaviourally inert (popping one recomputes the current threshold
    /// and either re-pushes or performs exactly the collapse the fresh
    /// entry would). The decoder therefore re-seeds one entry per internal
    /// node from its restored endpoints, which keeps snapshots at the
    /// summary's own `O(r)` size instead of the queue's unbounded lazy
    /// backlog — behaviour identity is pinned by the round-trip property
    /// tests in `tests/failure_injection.rs`.
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_u32, put_u8};
        put_u32(out, self.grid.r());
        put_u32(out, self.grid.depth());
        put_u8(
            out,
            match self.queue {
                QueueImpl::Heap(_) => 0,
                QueueImpl::Bucket(_) => 1,
            },
        );
        self.uniform.snapshot_payload(out);
        put_u8(out, !self.roots.is_empty() as u8);
        if !self.roots.is_empty() {
            for &root in &self.roots {
                self.write_node(root, out);
            }
        }
    }

    fn write_node(&self, id: NodeId, out: &mut Vec<u8>) {
        use crate::snapshot::{put_point, put_u8};
        match self.node(id).kind {
            NodeKind::Leaf { a, b } => {
                put_u8(out, 0);
                put_point(out, a);
                put_point(out, b);
            }
            NodeKind::Internal { left, right } => {
                put_u8(out, 1);
                self.write_node(left, out);
                self.write_node(right, out);
            }
        }
    }

    /// Inverse of [`AdaptiveHull::snapshot_payload`].
    pub(crate) fn from_snapshot_payload(
        reader: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let r = reader.u32()?;
        let depth = reader.u32()?;
        if !r.is_power_of_two() || !(8..=1 << 20).contains(&r) || depth > 32 {
            return Err(SnapshotError::Malformed("invalid adaptive grid shape"));
        }
        let queue_kind = match reader.u8()? {
            0 => QueueKind::Heap,
            1 => QueueKind::Bucket,
            _ => return Err(SnapshotError::Malformed("unknown queue kind")),
        };
        let grid = DirGrid::new(r, depth);
        let uniform = UniformHull::from_snapshot_payload(reader)?;
        if uniform.r() != r {
            return Err(SnapshotError::Malformed("uniform r disagrees with grid"));
        }
        let mut s = AdaptiveHull {
            grid,
            uniform,
            arena: Arena::new(),
            roots: Vec::new(),
            queue: match queue_kind {
                QueueKind::Heap => QueueImpl::Heap(HeapQueue::new()),
                QueueKind::Bucket => QueueImpl::Bucket(BucketQueue::new()),
            },
            internal_count: 0,
            cache: HullCache::new(),
            distinct: GenCache::new(),
        };
        let has_roots = reader.u8()? != 0;
        if has_roots {
            let mut roots = Vec::with_capacity(r as usize);
            for j in 0..r {
                let range = DirRange::sector(&s.grid, j);
                roots.push(s.read_node(reader, range)?);
            }
            s.roots = roots;
            // Re-seed the unrefinement queue: one entry per internal node
            // with its current threshold (see `snapshot_payload` for why
            // this is behaviourally equivalent to the original backlog).
            for i in 0..s.roots.len() {
                s.seed_queue(s.roots[i]);
            }
        }
        Ok(s)
    }

    /// Pushes the current unrefinement threshold of every internal node
    /// under `id` (decode support).
    fn seed_queue(&mut self, id: NodeId) {
        let node = *self.node(id);
        let NodeKind::Internal { left, right } = node.kind else {
            return;
        };
        let (a, b) = self.endpoints(id);
        let s = slant(&self.grid, &node.range, a, b);
        self.queue
            .push(unrefine_threshold(s, node.range.depth, self.grid.r()), id);
        self.seed_queue(left);
        self.seed_queue(right);
    }

    fn read_node(
        &mut self,
        reader: &mut crate::snapshot::Reader<'_>,
        range: DirRange,
    ) -> Result<NodeId, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        // Insert a placeholder first so ids are allocated in preorder,
        // back-patching the node kind after the children are read.
        let id = self.arena.insert(Node {
            range,
            kind: NodeKind::Leaf {
                a: Point2::ORIGIN,
                b: Point2::ORIGIN,
            },
        });
        match reader.u8()? {
            0 => {
                let a = reader.point()?;
                let b = reader.point()?;
                if !(a.is_finite() && b.is_finite()) {
                    // Tree endpoints pass the uniform substrate's finite
                    // assert on every live path; forged non-finite points
                    // would panic later query/merge code.
                    return Err(SnapshotError::Malformed("non-finite tree endpoint"));
                }
                self.arena.get_mut(id).unwrap().kind = NodeKind::Leaf { a, b };
            }
            1 => {
                if !range.bisectable(&self.grid) {
                    return Err(SnapshotError::Malformed("refinement below the depth cap"));
                }
                let (lr, rr) = range.bisect(&self.grid);
                let left = self.read_node(reader, lr)?;
                let right = self.read_node(reader, rr)?;
                self.arena.get_mut(id).unwrap().kind = NodeKind::Internal { left, right };
                self.internal_count += 1;
            }
            _ => return Err(SnapshotError::Malformed("unknown tree node tag")),
        }
        Ok(id)
    }
}

impl AdaptiveHull {
    /// One point of Algorithm AdaptiveHull without cache bookkeeping;
    /// returns `true` iff the summarised state changed (the caller decides
    /// when to invalidate — per point for `insert`, once per batch for
    /// `insert_batch`).
    fn insert_inner(&mut self, q: Point2) -> bool {
        match self.uniform.insert_detailed(q) {
            UniformEffect::First => {
                let r = self.grid.r();
                self.roots = (0..r)
                    .map(|j| {
                        self.arena.insert(Node {
                            range: DirRange::sector(&self.grid, j),
                            kind: NodeKind::Leaf { a: q, b: q },
                        })
                    })
                    .collect();
                true
            }
            UniformEffect::Interior => false, // sample unchanged: keep the cache
            UniformEffect::Outside { arc, .. } => {
                let (first, count) = self.sectors_for_arc(&arc);
                let r = self.grid.r();
                for i in 0..count {
                    let s = (first + i) % r;
                    let root = self.roots[s as usize];
                    self.update_node(root, q, &arc);
                }
                self.drain_queue();
                true
            }
        }
    }
}

impl HullSummary for AdaptiveHull {
    fn insert(&mut self, q: Point2) {
        // Non-finite points are dropped, not counted (see `HullSummary`).
        if !q.is_finite() {
            return;
        }
        if self.insert_inner(q) {
            self.cache.invalidate();
        }
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them one
            // by one); recursing on the all-finite remainder preserves the
            // batch == loop equivalence contract.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        if points.len() <= BATCH_LEAF {
            for &q in points {
                if self.insert_inner(q) {
                    self.cache.invalidate();
                }
            }
            return;
        }
        // Interior-certificate fast path: a point inside the inscribed
        // circle of `A` is exactly one step 1 would discard after its
        // O(log r) point location — discard it here for two multiplies,
        // bump the seen-count like the `Interior` branch, and keep the
        // `HullCache` untouched. The certificate rebuilds only when the
        // uniform substrate's hull generation advances; all invalidations
        // of this summary's own cache coalesce into one per batch.
        // Non-finite points never pass the certificate and panic inside
        // `insert_detailed` exactly like the loop.
        let mut cert = CertCache::new(8);
        let mut changed = false;
        for &q in points {
            if cert.covers(q, || incircle(self.uniform.hull_ref())) {
                self.uniform.add_seen(1);
                continue;
            }
            let before = self.uniform.hull_generation();
            changed |= self.insert_inner(q);
            if self.uniform.hull_generation() != before {
                cert.invalidate();
            }
        }
        if changed {
            self.cache.invalidate();
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| ConvexPolygon::hull_of(&self.sample_points()))
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.distinct.get_or_compute(self.cache.generation(), || {
            let mut pts = self.sample_points();
            pts.sort_by(|a, b| a.lex_cmp(*b));
            pts.dedup();
            pts.len()
        })
    }

    fn points_seen(&self) -> u64 {
        self.uniform.points_seen()
    }

    fn approx_bytes(&self) -> usize {
        // The live structure is the uniform substrate plus the refinement
        // tree: arena slots (nodes and free-list bookkeeping), the
        // refinement priority queue, and one root per uniform sector.
        // Coarser than allocator truth, but unlike the trait default it
        // stays above the snapshot envelope, so spilling an idle adaptive
        // tenant genuinely shrinks its accounted footprint.
        self.uniform.approx_bytes()
            + 64
            + self.arena.len() * (size_of::<Node>() + 8)
            + self.queue.len() * 32
            + self.roots.len() * size_of::<NodeId>()
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn error_bound(&self) -> Option<f64> {
        // Corollary 5.2 / Theorem 5.4: d∞ = 16πP/r² with P the live
        // perimeter of the uniformly sampled hull.
        let r = self.grid.r() as f64;
        Some(16.0 * core::f64::consts::PI * self.uniform.perimeter() / (r * r))
    }
}

impl Mergeable for AdaptiveHull {
    fn sample_points(&self) -> Vec<Point2> {
        AdaptiveHull::sample_points(self)
    }

    fn absorb_seen(&mut self, n: u64) {
        self.uniform.add_seen(n);
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn lcg_points(seed: u64, n: usize, sx: f64, sy: f64) -> Vec<Point2> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| p((next() - 0.5) * sx, (next() - 0.5) * sy))
            .collect()
    }

    fn feed(hull: &mut AdaptiveHull, pts: &[Point2], check_every: usize) {
        for (i, &q) in pts.iter().enumerate() {
            hull.insert(q);
            if check_every > 0 && i % check_every == 0 {
                hull.check_invariants()
                    .unwrap_or_else(|e| panic!("after point {i}: {e}"));
            }
        }
        hull.check_invariants().expect("final invariants");
    }

    #[test]
    fn single_point_stream() {
        let mut h = AdaptiveHull::with_r(8);
        h.insert(p(3.0, 4.0));
        h.check_invariants().unwrap();
        assert_eq!(h.sample_size(), 1);
        assert_eq!(h.hull().len(), 1);
        assert_eq!(h.adaptive_direction_count(), 0);
    }

    #[test]
    fn duplicate_points_stay_degenerate() {
        let mut h = AdaptiveHull::with_r(8);
        for _ in 0..100 {
            h.insert(p(1.0, 1.0));
        }
        assert_eq!(h.sample_size(), 1);
        assert_eq!(h.points_seen(), 100);
    }

    #[test]
    fn collinear_stream() {
        let mut h = AdaptiveHull::with_r(16);
        let pts: Vec<Point2> = (0..200)
            .map(|i| p(i as f64 * 0.1, i as f64 * 0.2))
            .collect();
        feed(&mut h, &pts, 7);
        let hull = h.hull();
        assert_eq!(hull.len(), 2, "collinear stream has a segment hull");
        let d = geom::calipers::diameter(&hull).unwrap().2;
        let expect = p(0.0, 0.0).distance(p(19.9, 39.8));
        assert!((d - expect).abs() < 1e-9);
    }

    #[test]
    fn random_cloud_invariants_and_budget() {
        for r in [8u32, 16, 32] {
            let mut h = AdaptiveHull::with_r(r);
            let pts = lcg_points(42 + r as u64, 3000, 20.0, 20.0);
            feed(&mut h, &pts, 31);
            assert!(
                h.sample_size() <= (2 * r + 1) as usize,
                "r={r}: sample {} exceeds 2r+1",
                h.sample_size()
            );
            assert!(
                h.adaptive_direction_count() <= (r + 1) as usize,
                "r={r}: {} adaptive directions exceeds r+1",
                h.adaptive_direction_count()
            );
        }
    }

    #[test]
    fn skinny_ellipse_budget_and_invariants() {
        // The adaptive scheme's home turf: aspect-16 ellipse.
        let mut s = 7u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point2> = (0..5000)
            .map(|_| {
                let (x, y) = loop {
                    let x = next() * 2.0 - 1.0;
                    let y = next() * 2.0 - 1.0;
                    if x * x + y * y <= 1.0 {
                        break (x, y);
                    }
                };
                let v = geom::Vec2::new(x * 16.0, y).rotate(0.13);
                Point2::ORIGIN + v
            })
            .collect();
        let r = 16u32;
        let mut h = AdaptiveHull::with_r(r);
        feed(&mut h, &pts, 53);
        assert!(
            h.sample_size() <= (2 * r + 1) as usize,
            "sample {}",
            h.sample_size()
        );
        assert!(
            h.adaptive_direction_count() > 0,
            "ellipse must trigger refinement"
        );
    }

    #[test]
    fn approx_hull_is_inside_exact_hull() {
        use crate::exact::ExactHull;
        let pts = lcg_points(5, 2000, 30.0, 10.0);
        let mut a = AdaptiveHull::with_r(16);
        let mut e = ExactHull::new();
        for &q in &pts {
            a.insert(q);
            e.insert(q);
        }
        let exact = e.hull();
        for &v in a.hull().vertices() {
            assert!(
                exact.contains_linear(v),
                "adaptive hull vertex {v:?} outside the exact hull"
            );
        }
        // Every sample is an actual input point.
        for s in a.sample_points() {
            assert!(pts.contains(&s), "sample {s:?} is not an input point");
        }
    }

    #[test]
    fn error_bound_on_circle_stream() {
        use crate::exact::ExactHull;
        // Points on a circle of radius R: D = 2R. The adaptive error must be
        // O(D/r²) with a modest constant (16π P / r² is the paper's d_∞).
        let pts: Vec<Point2> = (0..4000)
            .map(|i| {
                let t = TAU * (i as f64) * 0.618033988749895;
                p(5.0 * t.cos(), 5.0 * t.sin())
            })
            .collect();
        for r in [16u32, 32, 64] {
            let mut a = AdaptiveHull::with_r(r);
            let mut e = ExactHull::new();
            for &q in &pts {
                a.insert(q);
                e.insert(q);
            }
            let err = a.hull().directed_hausdorff_from(&e.hull());
            let d = 10.0;
            let bound =
                16.0 * core::f64::consts::PI * core::f64::consts::PI * d / (r as f64 * r as f64);
            assert!(err <= bound, "r={r}: error {err} > {bound}");
        }
    }

    #[test]
    fn adaptive_beats_uniform_on_rotated_ellipse() {
        use crate::exact::ExactHull;
        use crate::uniform::NaiveUniformHull;
        let mut s = 11u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let rot = TAU / 32.0 / 4.0; // θ0/4 for r = 32
        let pts: Vec<Point2> = (0..20000)
            .map(|_| {
                let (x, y) = loop {
                    let x = next() * 2.0 - 1.0;
                    let y = next() * 2.0 - 1.0;
                    if x * x + y * y <= 1.0 {
                        break (x, y);
                    }
                };
                let v = geom::Vec2::new(x * 16.0, y).rotate(rot);
                Point2::ORIGIN + v
            })
            .collect();
        // Equal sample budget: uniform with 2r directions vs adaptive r.
        let mut uni = NaiveUniformHull::new(32);
        let mut ada = AdaptiveHull::with_r(16);
        let mut exact = ExactHull::new();
        for &q in &pts {
            uni.insert(q);
            ada.insert(q);
            exact.insert(q);
        }
        let truth = exact.hull();
        let ue = uni.hull().directed_hausdorff_from(&truth);
        let ae = ada.hull().directed_hausdorff_from(&truth);
        assert!(
            ae < ue,
            "adaptive ({ae}) should beat uniform ({ue}) on the rotated ellipse"
        );
    }

    #[test]
    fn spiral_stress_with_bucket_queue() {
        for kind in [QueueKind::Heap, QueueKind::Bucket] {
            let mut h = AdaptiveHull::new(AdaptiveHullConfig::new(16).with_queue(kind));
            let pts: Vec<Point2> = (0..2000)
                .map(|i| {
                    let t = 2.399963229728653 * i as f64;
                    let rad = 1.0 + 0.01 * i as f64;
                    p(rad * t.cos(), rad * t.sin())
                })
                .collect();
            feed(&mut h, &pts, 101);
            assert!(
                h.sample_size() <= 33,
                "{kind:?}: sample {}",
                h.sample_size()
            );
            // The final hull approximates a disk of radius ~21.
            let d = geom::calipers::diameter(&h.hull()).unwrap().2;
            assert!(d > 38.0 && d < 42.5, "{kind:?}: diameter {d}");
        }
    }

    #[test]
    fn merge_from_preserves_error_bound() {
        use crate::exact::ExactHull;
        // Two gateways each see half the stream; the collector merges.
        let all = lcg_points(99, 4000, 30.0, 10.0);
        let (first, second) = all.split_at(2000);
        let r = 16u32;
        let mut g1 = AdaptiveHull::with_r(r);
        let mut g2 = AdaptiveHull::with_r(r);
        for &p in first {
            g1.insert(p);
        }
        for &p in second {
            g2.insert(p);
        }
        let mut merged = g1.clone();
        merged.merge_from(&g2);
        merged.check_invariants().unwrap();
        assert_eq!(merged.points_seen(), 4000);
        assert!(merged.sample_size() <= (2 * r + 1) as usize);

        let mut exact = ExactHull::new();
        for &p in &all {
            exact.insert(p);
        }
        let err = merged.hull().directed_hausdorff_from(&exact.hull());
        // Sum of three O(D/r²) terms with the paper constant is generous.
        let bound = 3.0 * 16.0 * core::f64::consts::PI * merged.uniform().perimeter()
            / (r as f64 * r as f64);
        assert!(err <= bound, "merged error {err} > {bound}");
        // Merge must dominate neither direction: merged hull contains both
        // parts' hulls up to their own error (sanity: vertices inside exact).
        for &v in merged.hull().vertices() {
            assert!(exact.hull().contains_linear(v));
        }
    }

    #[test]
    fn depth_zero_is_uniform_sampling() {
        // k = 0 disables refinement: behaves like the uniform hull (§5.1).
        let pts = lcg_points(13, 1000, 10.0, 3.0);
        let mut h = AdaptiveHull::new(AdaptiveHullConfig::new(16).with_depth(0));
        let mut u = UniformHull::new(16);
        for &q in &pts {
            h.insert(q);
            u.insert(q);
        }
        assert_eq!(h.adaptive_direction_count(), 0);
        assert_eq!(h.hull().vertices(), u.hull().vertices());
    }

    #[test]
    fn uncertainty_triangles_cover_all_points() {
        // Invariant behind step 1: every stream point is inside the union
        // of the adaptive hull and its uncertainty triangles, *at the time
        // it arrives*. We verify a weaker but testable form: at the end, every
        // point is within the max triangle height of the hull.
        let pts = lcg_points(17, 1500, 12.0, 12.0);
        let mut h = AdaptiveHull::with_r(16);
        for &q in &pts {
            h.insert(q);
        }
        let hull = h.hull();
        let max_h = h
            .uncertainty_triangles()
            .iter()
            .map(|t| t.height())
            .fold(0.0f64, f64::max);
        // Lemma 5.1/Corollary 5.2: discarded points may additionally sit up
        // to d_∞ = 16πP/r² beyond the current supporting lines.
        let slack = 16.0 * core::f64::consts::PI * h.uniform().perimeter() / (16.0f64 * 16.0);
        for &q in &pts {
            let d = hull.distance_to_point(q);
            assert!(
                d <= max_h + slack,
                "point {q:?} lies {d} outside, max uncertainty {max_h} + slack {slack}"
            );
        }
    }
}
