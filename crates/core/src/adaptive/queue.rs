//! Unrefinement threshold queues (paper §5.2 step 4 and §5.3).
//!
//! Every internal refinement-tree node carries a perimeter threshold
//! `Thresh(e) = r·ℓ̃(e)/(1 + d(e))`: once the uniform-hull perimeter `P`
//! grows past it, the node's sample weight has dropped to `w(e) <= 1` and it
//! should be unrefined. The queue stores `(threshold, node id)` pairs and
//! pops everything at or below the current `P`; entries are *lazy* — stale
//! ids (nodes already rebuilt or collapsed) are filtered by the caller via
//! the generational arena.
//!
//! Two implementations, compared by the `queue_ablation` bench:
//!
//! * [`HeapQueue`] — a plain binary min-heap, `O(log n)` per operation;
//! * [`BucketQueue`] — Matias' power-of-two bucketing: thresholds are
//!   rounded down to `2^⌊log2⌋`, making every operation `O(1)` at the cost
//!   of unrefining slightly early (the error stays `O(D/r²)`, §5.3).

use crate::adaptive::arena::NodeId;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Common interface of the unrefinement queues.
pub trait UnrefineQueue {
    /// Registers (or re-registers) a node with its threshold.
    fn push(&mut self, threshold: f64, id: NodeId);

    /// Pops one entry whose threshold is `<= p`, if any.
    fn pop_due(&mut self, p: f64) -> Option<(f64, NodeId)>;

    /// Number of queued entries (including stale ones).
    fn len(&self) -> usize;

    /// `true` iff no entries are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Min-heap entry ordered by threshold.
#[derive(Debug, Clone, Copy)]
struct Entry {
    threshold: f64,
    id: NodeId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.threshold == other.threshold
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest threshold.
        // total_cmp keeps the heap invariant even if a non-finite threshold
        // ever slips in (it sorts NaN to an extreme instead of panicking).
        other.threshold.total_cmp(&self.threshold)
    }
}

/// Standard binary-heap threshold queue (`PriQ(r) = O(log r)`).
#[derive(Debug, Default, Clone)]
pub struct HeapQueue {
    heap: BinaryHeap<Entry>,
}

impl HeapQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UnrefineQueue for HeapQueue {
    fn push(&mut self, threshold: f64, id: NodeId) {
        self.heap.push(Entry { threshold, id });
    }

    fn pop_due(&mut self, p: f64) -> Option<(f64, NodeId)> {
        if self.heap.peek().map(|e| e.threshold <= p)? {
            let e = self.heap.pop().unwrap();
            Some((e.threshold, e.id))
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Power-of-two bucket queue (`PriQ(r) = O(1)`, §5.3).
///
/// Thresholds are bucketed by binary exponent (`f64::log2` floor via the
/// exponent bits). A node in bucket `e` becomes due when `P >= 2^e`, which
/// is at most a factor 2 earlier than its exact threshold — the "unrefine
/// slightly too early" relaxation the paper proves harmless.
#[derive(Debug, Default, Clone)]
pub struct BucketQueue {
    /// Sparse buckets: (exponent, entries). Kept sorted by exponent.
    buckets: Vec<(i16, Vec<NodeId>)>,
    len: usize,
}

impl BucketQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn exponent(threshold: f64) -> i16 {
        debug_assert!(threshold.is_finite());
        if threshold <= 0.0 {
            return i16::MIN;
        }
        // floor(log2(threshold)): IEEE exponent of the rounded-down power.
        threshold.log2().floor() as i16
    }
}

impl UnrefineQueue for BucketQueue {
    fn push(&mut self, threshold: f64, id: NodeId) {
        let e = Self::exponent(threshold);
        self.len += 1;
        match self.buckets.binary_search_by_key(&e, |(k, _)| *k) {
            Ok(i) => self.buckets[i].1.push(id),
            Err(i) => self.buckets.insert(i, (e, vec![id])),
        }
    }

    fn pop_due(&mut self, p: f64) -> Option<(f64, NodeId)> {
        let (e, bucket) = self.buckets.first_mut()?;
        // Bucket e holds thresholds in [2^e, 2^(e+1)); it is due when
        // P >= 2^e (the early-unrefinement relaxation).
        let floor = if *e == i16::MIN {
            0.0
        } else {
            (*e as f64).exp2()
        };
        if p < floor {
            return None;
        }
        let id = bucket.pop()?;
        self.len -= 1;
        if bucket.is_empty() {
            self.buckets.remove(0);
        }
        Some((floor, id))
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::arena::Arena;

    fn ids(n: usize) -> Vec<NodeId> {
        let mut a = Arena::new();
        (0..n).map(|i| a.insert(i)).collect()
    }

    #[test]
    fn heap_pops_in_threshold_order() {
        let ids = ids(3);
        let mut q = HeapQueue::new();
        q.push(5.0, ids[0]);
        q.push(1.0, ids[1]);
        q.push(3.0, ids[2]);
        assert_eq!(q.pop_due(0.5), None, "nothing due below the minimum");
        assert_eq!(q.pop_due(4.0).map(|(t, _)| t), Some(1.0));
        assert_eq!(q.pop_due(4.0).map(|(t, _)| t), Some(3.0));
        assert_eq!(q.pop_due(4.0), None, "5.0 not yet due");
        assert_eq!(q.pop_due(5.0).map(|(t, _)| t), Some(5.0));
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_pops_everything_due_possibly_early() {
        let ids = ids(4);
        let mut q = BucketQueue::new();
        q.push(5.0, ids[0]); // bucket 2 -> due at P >= 4
        q.push(1.5, ids[1]); // bucket 0 -> due at P >= 1
        q.push(3.0, ids[2]); // bucket 1 -> due at P >= 2
        q.push(100.0, ids[3]); // bucket 6 -> due at P >= 64
        assert_eq!(q.len(), 4);
        let mut popped = Vec::new();
        while let Some((_, id)) = q.pop_due(4.0) {
            popped.push(id);
        }
        // Everything with true threshold <= 4 must pop; 5.0 may pop early
        // (bucket floor 4 <= 4); 100.0 must not.
        assert!(popped.contains(&ids[1]));
        assert!(popped.contains(&ids[2]));
        assert!(
            popped.contains(&ids[0]),
            "5.0 pops early at P = 4 (factor-2 rule)"
        );
        assert!(!popped.contains(&ids[3]));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bucket_never_pops_more_than_factor_two_early() {
        let ids = ids(1);
        let mut q = BucketQueue::new();
        q.push(7.9, ids[0]); // bucket 2, floor 4.0
        assert_eq!(q.pop_due(3.9), None, "below half the threshold: never due");
        assert!(q.pop_due(4.0).is_some());
    }

    #[test]
    fn zero_and_tiny_thresholds() {
        let ids = ids(2);
        let mut q = BucketQueue::new();
        q.push(0.0, ids[0]);
        q.push(1e-300, ids[1]);
        assert!(q.pop_due(0.0).is_some(), "zero threshold immediately due");
        assert!(q.pop_due(1e-299).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn heap_handles_duplicate_thresholds() {
        let ids = ids(3);
        let mut q = HeapQueue::new();
        for &id in &ids {
            q.push(2.0, id);
        }
        let mut n = 0;
        while q.pop_due(2.0).is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }
}
