//! Adaptive sampling (papers §4 and §5): the static scheme, the streaming
//! scheme, and the fixed-budget variant used by the paper's experiments.

pub mod arena;
pub mod fixed_budget;
pub mod queue;
pub mod static_;
pub mod stream;
pub mod weight;

pub use fixed_budget::FixedBudgetAdaptiveHull;
pub use static_::adaptive_sample_static;
pub use stream::{AdaptiveHull, AdaptiveHullConfig, QueueKind};
