//! The sample-weight function of paper §4.
//!
//! For a hull edge `e = (a, b)` whose endpoints are extreme in the
//! directions bounding the dyadic range of `e`:
//!
//! ```text
//! w(e) = ℓ̃(e) · r / P  −  d(e)
//! ```
//!
//! where `ℓ̃(e)` is the total length of the two non-base sides of `e`'s
//! uncertainty triangle, `P` the perimeter of the uniformly sampled hull,
//! and `d(e)` the number of bisections that produced `e`'s angular range.
//! An edge is refined while `w(e) > 1` and unrefined once `w(e) <= 1`,
//! which in terms of `P` is the threshold `P >= r·ℓ̃/(1 + d)`.

use geom::dyadic::{DirGrid, DirRange};
use geom::{Point2, UncertaintyTriangle};

/// Uncertainty triangle of edge `(a, b)` over the dyadic range: supporting
/// normals are the unit vectors of the range's two boundary directions.
pub fn uncertainty(grid: &DirGrid, range: &DirRange, a: Point2, b: Point2) -> UncertaintyTriangle {
    UncertaintyTriangle::new(a, b, grid.unit(range.lo), grid.unit(range.hi))
}

/// `ℓ̃(e)`: total length of the two non-base sides of the uncertainty
/// triangle (equals `|ab|` when the triangle is flat, 0 when degenerate).
pub fn slant(grid: &DirGrid, range: &DirRange, a: Point2, b: Point2) -> f64 {
    if a == b {
        return 0.0;
    }
    uncertainty(grid, range, a, b).slant_length()
}

/// The sample weight `w(e)`. With `P <= 0` (degenerate hull) the weight is
/// `-∞`: nothing refines until the hull has positive perimeter.
pub fn weight(slant_len: f64, depth: u32, r: u32, perimeter: f64) -> f64 {
    if perimeter <= 0.0 {
        return f64::NEG_INFINITY;
    }
    slant_len * (r as f64) / perimeter - depth as f64
}

/// The perimeter threshold at which a node with the given slant length and
/// depth should be unrefined: `w(e) <= 1  ⇔  P >= r·ℓ̃/(1 + d)`.
pub fn unrefine_threshold(slant_len: f64, depth: u32, r: u32) -> f64 {
    (r as f64) * slant_len / (1.0 + depth as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Vec2;

    #[test]
    fn weight_matches_threshold_boundary() {
        let (slant_len, depth, r) = (3.0, 2u32, 16u32);
        let t = unrefine_threshold(slant_len, depth, r);
        // At P = threshold, w = 1 exactly.
        assert!((weight(slant_len, depth, r, t) - 1.0).abs() < 1e-12);
        // Just below threshold: w > 1 (still refined); above: w < 1.
        assert!(weight(slant_len, depth, r, t * 0.99) > 1.0);
        assert!(weight(slant_len, depth, r, t * 1.01) < 1.0);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact sentinel value, not approximate agreement
    fn degenerate_perimeter_never_refines() {
        assert_eq!(weight(10.0, 0, 16, 0.0), f64::NEG_INFINITY);
        assert_eq!(weight(10.0, 0, 16, -1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn slant_of_symmetric_edge() {
        // r = 8, depth 0 sector: 45° range. Edge from angle -22.5°+90° ...
        // use sector 1 (45°..90°), endpoints symmetric about 67.5°.
        let grid = DirGrid::new(8, 3);
        let range = geom::dyadic::DirRange::sector(&grid, 1);
        let mid = Vec2::from_angle(grid.angle(range.lo) + core::f64::consts::PI / 8.0);
        let t = mid.perp(); // tangent direction
        let a = Point2::ORIGIN + t * 1.0;
        let b = Point2::ORIGIN - t * 1.0;
        // a extreme at range.lo? Build so the edge is perpendicular to mid:
        // the slant must exceed the base length |ab| = 2 but not wildly.
        let s = slant(&grid, &range, b, a);
        assert!(s >= 2.0, "slant {s} is at least the base");
        assert!(s < 2.2, "45° supporting lines stay close: {s}");
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact zero for a degenerate edge, by construction
    fn slant_zero_for_degenerate_edge() {
        let grid = DirGrid::new(8, 3);
        let range = geom::dyadic::DirRange::sector(&grid, 0);
        let p = Point2::new(1.0, 2.0);
        assert_eq!(slant(&grid, &range, p, p), 0.0);
    }

    #[test]
    fn refinement_shrinks_total_slant() {
        // The Fig. 6 lemma behind Lemma 4.1: when an edge (a, b) is refined
        // at its bisecting direction with extremum t, the children satisfy
        // ℓ̃(e1) + ℓ̃(e2) <= ℓ̃(e), and each child's weight drops by at
        // least 1 relative to the slant term.
        let grid = DirGrid::new(16, 4);
        let sector = geom::dyadic::DirRange::sector(&grid, 0);
        let a = Point2::new(10.0, 0.0);
        let b = Point2::new(9.0, 4.0);
        let s0 = slant(&grid, &sector, a, b);
        // Mid extremum as the streaming algorithm picks it: best of {a, b}.
        let um = grid.unit(sector.mid(&grid));
        let t = if a.dot(um) >= b.dot(um) { a } else { b };
        let (lr, rr) = sector.bisect(&grid);
        let s1 = slant(&grid, &lr, a, t);
        let s2 = slant(&grid, &rr, t, b);
        assert!(
            s1 + s2 <= s0 + 1e-9,
            "slant must not grow under refinement: {s1} + {s2} vs {s0}"
        );
        // Weights: each child has depth + 1, so for any P the larger child
        // weight is at least 1 below the parent's.
        let p = 40.0;
        let w0 = weight(s0, sector.depth, 16, p);
        let w_max = weight(s1, lr.depth, 16, p).max(weight(s2, rr.depth, 16, p));
        assert!(
            w_max <= w0 - 1.0 + 1e-9,
            "child weight {w_max} vs parent {w0}"
        );
    }
}
