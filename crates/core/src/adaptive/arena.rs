//! A tiny generational arena for refinement-tree nodes.
//!
//! Nodes are addressed by [`NodeId`] = (slot index, generation). Freeing a
//! slot bumps its generation, so stale ids held by the lazy unrefinement
//! queue (§5.3) are detected instead of resurrecting unrelated nodes.

/// Handle to an arena slot; invalidated when the slot is freed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId {
    idx: u32,
    gen: u32,
}

impl NodeId {
    /// Slot index (for debugging/statistics).
    pub fn index(&self) -> u32 {
        self.idx
    }
}

#[derive(Clone, Debug)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// Generational arena.
#[derive(Clone, Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a value, returning its id.
    pub fn insert(&mut self, value: T) -> NodeId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            NodeId { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena overflow");
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
            });
            NodeId { idx, gen: 0 }
        }
    }

    /// Removes a node, returning its value; `None` if the id is stale.
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen != id.gen || slot.value.is_none() {
            return None;
        }
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
        slot.value.take()
    }

    /// Shared access; `None` if stale.
    pub fn get(&self, id: NodeId) -> Option<&T> {
        let slot = self.slots.get(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access; `None` if stale.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// `true` iff the id refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let id1 = a.insert("one");
        let id2 = a.insert("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(id1), Some(&"one"));
        assert_eq!(a.remove(id1), Some("one"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(id1), None);
        assert_eq!(a.get(id2), Some(&"two"));
    }

    #[test]
    fn stale_ids_are_rejected_after_reuse() {
        let mut a = Arena::new();
        let id1 = a.insert(1);
        a.remove(id1);
        let id2 = a.insert(2);
        // Slot reused, generation bumped.
        assert_eq!(id1.index(), id2.index());
        assert_ne!(id1, id2);
        assert_eq!(a.get(id1), None, "stale id must not see the new value");
        assert_eq!(a.remove(id1), None);
        assert_eq!(a.get(id2), Some(&2));
    }

    #[test]
    fn double_remove_is_none() {
        let mut a = Arena::new();
        let id = a.insert(7);
        assert_eq!(a.remove(id), Some(7));
        assert_eq!(a.remove(id), None);
        assert!(a.is_empty());
    }

    #[test]
    fn get_mut_updates() {
        let mut a = Arena::new();
        let id = a.insert(vec![1]);
        a.get_mut(id).unwrap().push(2);
        assert_eq!(a.get(id), Some(&vec![1, 2]));
    }
}
