//! The fixed-budget adaptive variant used in the paper's experiments (§7).
//!
//! For a fair comparison against a uniform hull with `2r` directions, the
//! paper modifies the adaptive algorithm to maintain *exactly* `2r` sample
//! directions: it refines maximum-weight edges even when their weight is
//! below the threshold, and unrefines minimum-weight refinements when over
//! budget. This module implements that variant as a self-contained
//! structure (a flat, cyclic list of dyadic leaf edges rebalanced greedily
//! after every insertion), independent of the threshold-driven
//! [`AdaptiveHull`](crate::adaptive::stream::AdaptiveHull) — which also
//! makes it a useful cross-check of the tree-based implementation.

use crate::adaptive::weight::{slant, uncertainty, weight};
use crate::batch::{incircle, CertCache, BATCH_LEAF};
use crate::summary::{GenCache, HullCache, HullSummary, Mergeable};
use crate::uniform::{BeatenArc, UniformEffect, UniformHull};
use core::f64::consts::TAU;
use geom::dyadic::{DirGrid, DirRange};
use geom::{ConvexPolygon, Point2, UncertaintyTriangle, Vec2};

/// A leaf edge of the flattened refinement forest.
#[derive(Clone, Copy, Debug)]
struct Leaf {
    range: DirRange,
    a: Point2,
    b: Point2,
}

/// Adaptive hull with a hard budget of `2r` sample directions
/// (`r` uniform + `r` adaptive), per §7's experimental setup.
#[derive(Clone, Debug)]
pub struct FixedBudgetAdaptiveHull {
    grid: DirGrid,
    uniform: UniformHull,
    /// Cyclic tiling of the direction circle by leaf edges, ordered by
    /// `range.lo`. Empty until the first point.
    leaves: Vec<Leaf>,
    /// Target number of *extra* (adaptive) directions; total budget is
    /// `r + extra_budget`.
    extra_budget: usize,
    cache: HullCache,
    distinct: GenCache<usize>,
    bound: GenCache<f64>,
}

impl FixedBudgetAdaptiveHull {
    /// Creates the summary with `r` uniform directions and `r` adaptive
    /// ones (total `2r`, the paper's experimental configuration).
    pub fn new(r: u32) -> Self {
        Self::with_budget(r, r as usize)
    }

    /// Creates the summary with an explicit adaptive-direction budget.
    pub fn with_budget(r: u32, extra: usize) -> Self {
        let grid = DirGrid::with_default_depth(r);
        FixedBudgetAdaptiveHull {
            grid,
            uniform: UniformHull::new(r),
            leaves: Vec::new(),
            extra_budget: extra,
            cache: HullCache::new(),
            distinct: GenCache::new(),
            bound: GenCache::new(),
        }
    }

    /// Number of uniform directions.
    pub fn r(&self) -> u32 {
        self.grid.r()
    }

    /// Number of currently active adaptive directions.
    pub fn adaptive_direction_count(&self) -> usize {
        self.leaves.len().saturating_sub(self.grid.r() as usize)
    }

    /// All active sample directions with their stored extrema (used to
    /// build a [`FrozenHull`](crate::frozen::FrozenHull) for the "partially
    /// adaptive" comparison).
    pub fn directions(&self) -> Vec<(Vec2, Point2)> {
        self.leaves
            .iter()
            .map(|leaf| (self.grid.unit(leaf.range.lo), leaf.a))
            .collect()
    }

    /// Uncertainty triangles of the non-degenerate edges.
    pub fn uncertainty_triangles(&self) -> Vec<UncertaintyTriangle> {
        self.leaves
            .iter()
            .filter(|l| l.a != l.b)
            .map(|l| uncertainty(&self.grid, &l.range, l.a, l.b))
            .collect()
    }

    /// Distinct stored sample points in direction order.
    pub fn sample_points(&self) -> Vec<Point2> {
        let mut pts: Vec<Point2> = Vec::new();
        for leaf in &self.leaves {
            for p in [leaf.a, leaf.b] {
                if pts.last() != Some(&p) {
                    pts.push(p);
                }
            }
        }
        while pts.len() > 1 && pts.first() == pts.last() {
            pts.pop();
        }
        pts
    }

    fn leaf_weight(&self, leaf: &Leaf) -> f64 {
        weight(
            slant(&self.grid, &leaf.range, leaf.a, leaf.b),
            leaf.range.depth,
            self.grid.r(),
            self.uniform.perimeter(),
        )
    }

    /// Weight the merged parent of leaves `i` and `i+1` would have, if they
    /// are dyadic siblings; `None` otherwise.
    fn merge_weight(&self, i: usize) -> Option<f64> {
        let l1 = self.leaves[i];
        let l2 = self.leaves[(i + 1) % self.leaves.len()];
        if l1.range.depth != l2.range.depth || l1.range.depth == 0 || l1.range.hi != l2.range.lo {
            return None;
        }
        // Sibling check: l1 must be the left child of their common parent,
        // i.e. its offset within the sector is aligned to the parent span.
        let span = l1.range.span(&self.grid);
        let offset = l1.range.lo.0 % self.grid.sector_steps();
        if !offset.is_multiple_of(2 * span) {
            return None;
        }
        let parent = DirRange {
            lo: l1.range.lo,
            hi: l2.range.hi,
            depth: l1.range.depth - 1,
        };
        Some(weight(
            slant(&self.grid, &parent, l1.a, l2.b),
            parent.depth,
            self.grid.r(),
            self.uniform.perimeter(),
        ))
    }

    fn split_leaf(&mut self, i: usize) {
        let leaf = self.leaves[i];
        let mid = leaf.range.mid(&self.grid);
        let um = self.grid.unit(mid);
        let t = if leaf.a.dot(um) >= leaf.b.dot(um) {
            leaf.a
        } else {
            leaf.b
        };
        let (lr, rr) = leaf.range.bisect(&self.grid);
        self.leaves[i] = Leaf {
            range: lr,
            a: leaf.a,
            b: t,
        };
        self.leaves.insert(
            i + 1,
            Leaf {
                range: rr,
                a: t,
                b: leaf.b,
            },
        );
    }

    fn merge_pair(&mut self, i: usize) {
        let n = self.leaves.len();
        let l1 = self.leaves[i];
        let l2 = self.leaves[(i + 1) % n];
        let parent = DirRange {
            lo: l1.range.lo,
            hi: l2.range.hi,
            depth: l1.range.depth - 1,
        };
        self.leaves[i] = Leaf {
            range: parent,
            a: l1.a,
            b: l2.b,
        };
        self.leaves.remove((i + 1) % n);
    }

    /// Greedy rebalance toward the budget: split the max-weight bisectable
    /// leaf while under budget; merge the min-weight sibling pair while
    /// over; then perform strictly improving swaps.
    fn rebalance(&mut self) {
        let best_split = |this: &Self| -> Option<(usize, f64)> {
            this.leaves
                .iter()
                .enumerate()
                .filter(|(_, l)| l.a != l.b && l.range.bisectable(&this.grid))
                .map(|(i, l)| (i, this.leaf_weight(l)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
        };
        let best_merge = |this: &Self| -> Option<(usize, f64)> {
            (0..this.leaves.len())
                .filter_map(|i| this.merge_weight(i).map(|w| (i, w)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
        };

        // Reach the budget.
        while self.adaptive_direction_count() < self.extra_budget {
            match best_split(self) {
                Some((i, w)) if w > f64::NEG_INFINITY => self.split_leaf(i),
                _ => break, // everything degenerate or at the depth cap
            }
        }
        while self.adaptive_direction_count() > self.extra_budget {
            match best_merge(self) {
                Some((i, _)) => self.merge_pair(i),
                None => break,
            }
        }
        // Improving swaps: move budget from low-value refinements to
        // high-value ones (this is what lets the sample directions migrate
        // when the distribution changes, §7 "changing ellipse").
        for _ in 0..(2 * self.grid.r() as usize) {
            let (Some((mi, mw)), Some((si, sw))) = (best_merge(self), best_split(self)) else {
                break;
            };
            // Strict improvement with hysteresis so we never oscillate.
            if sw <= mw + 1e-9 {
                break;
            }
            // Merging shifts indices; merge first, then re-find the split
            // candidate (cheap and simple).
            self.merge_pair(mi);
            let _ = si;
            if let Some((i, _)) = best_split(self) {
                self.split_leaf(i);
            }
        }
    }

    fn update_leaves(&mut self, q: Point2, arc: &BeatenArc) {
        const PAD: f64 = 1e-9;
        let b_span = (arc.end - arc.start).rem_euclid(TAU);
        let grid = self.grid;
        for leaf in &mut self.leaves {
            let a_start = grid.angle(leaf.range.lo);
            let a_span = leaf.range.width(&grid);
            let contains =
                |s: f64, span: f64, x: f64| ((x - s).rem_euclid(TAU)) <= span + 2.0 * PAD;
            let overlaps = contains(a_start - PAD, a_span, arc.start)
                || contains(arc.start - PAD, b_span, a_start);
            if !overlaps {
                continue;
            }
            let ul = grid.unit(leaf.range.lo);
            let ur = grid.unit(leaf.range.hi);
            if q.dot(ul) > leaf.a.dot(ul) {
                leaf.a = q;
            }
            if q.dot(ur) > leaf.b.dot(ur) {
                leaf.b = q;
            }
        }
    }

    /// Snapshot payload: grid shape, adaptive budget, the uniform
    /// substrate, and the flat cyclic leaf tiling (ranges stored as raw
    /// grid steps — the flat structure has no tree to reconstruct them
    /// from).
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_point, put_u32, put_u64};
        put_u32(out, self.grid.r());
        put_u32(out, self.grid.depth());
        put_u64(out, self.extra_budget as u64);
        self.uniform.snapshot_payload(out);
        put_u64(out, self.leaves.len() as u64);
        for leaf in &self.leaves {
            put_u64(out, leaf.range.lo.0);
            put_u64(out, leaf.range.hi.0);
            put_u32(out, leaf.range.depth);
            put_point(out, leaf.a);
            put_point(out, leaf.b);
        }
    }

    /// Inverse of [`FixedBudgetAdaptiveHull::snapshot_payload`].
    pub(crate) fn from_snapshot_payload(
        reader: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        use geom::dyadic::Dir;
        let r = reader.u32()?;
        let depth = reader.u32()?;
        if !r.is_power_of_two() || !(8..=1 << 20).contains(&r) || depth > 32 {
            return Err(SnapshotError::Malformed("invalid adaptive grid shape"));
        }
        let extra_budget = reader.u64()? as usize;
        let grid = DirGrid::new(r, depth);
        let uniform = UniformHull::from_snapshot_payload(reader)?;
        if uniform.r() != r {
            return Err(SnapshotError::Malformed("uniform r disagrees with grid"));
        }
        let leaf_count = reader.count(52)?;
        let mut leaves = Vec::with_capacity(leaf_count);
        for _ in 0..leaf_count {
            let lo = reader.u64()?;
            let hi = reader.u64()?;
            let leaf_depth = reader.u32()?;
            if lo >= grid.resolution() || hi >= grid.resolution() || leaf_depth > grid.depth() {
                return Err(SnapshotError::Malformed("leaf range outside the grid"));
            }
            let a = reader.point()?;
            let b = reader.point()?;
            if !(a.is_finite() && b.is_finite()) {
                // Leaf endpoints pass the uniform substrate's finite
                // assert on every live path (see the tree decoder).
                return Err(SnapshotError::Malformed("non-finite leaf endpoint"));
            }
            leaves.push(Leaf {
                range: DirRange {
                    lo: Dir(lo),
                    hi: Dir(hi),
                    depth: leaf_depth,
                },
                a,
                b,
            });
        }
        Ok(FixedBudgetAdaptiveHull {
            grid,
            uniform,
            leaves,
            extra_budget,
            cache: HullCache::new(),
            distinct: GenCache::new(),
            bound: GenCache::new(),
        })
    }

    /// One point without cache bookkeeping; `true` iff state changed.
    fn insert_inner(&mut self, q: Point2) -> bool {
        match self.uniform.insert_detailed(q) {
            UniformEffect::First => {
                self.leaves = (0..self.grid.r())
                    .map(|j| Leaf {
                        range: DirRange::sector(&self.grid, j),
                        a: q,
                        b: q,
                    })
                    .collect();
                true
            }
            UniformEffect::Interior => false, // sample unchanged: keep the cache
            UniformEffect::Outside { arc, .. } => {
                self.update_leaves(q, &arc);
                self.rebalance();
                true
            }
        }
    }
}

impl HullSummary for FixedBudgetAdaptiveHull {
    fn insert(&mut self, q: Point2) {
        // Non-finite points are dropped, not counted (see `HullSummary`).
        if !q.is_finite() {
            return;
        }
        if self.insert_inner(q) {
            self.cache.invalidate();
        }
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them one
            // by one); recursing on the all-finite remainder preserves the
            // batch == loop equivalence contract.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        if points.len() <= BATCH_LEAF {
            for &q in points {
                if self.insert_inner(q) {
                    self.cache.invalidate();
                }
            }
            return;
        }
        // Same interior-certificate fast path as `AdaptiveHull` (see
        // there): certified points are exactly the `Interior` no-ops, the
        // cert tracks the uniform substrate's hull generation, and this
        // summary's own cache invalidations coalesce into one per batch.
        let mut cert = CertCache::new(8);
        let mut changed = false;
        for &q in points {
            if cert.covers(q, || incircle(self.uniform.hull_ref())) {
                self.uniform.add_seen(1);
                continue;
            }
            let before = self.uniform.hull_generation();
            changed |= self.insert_inner(q);
            if self.uniform.hull_generation() != before {
                cert.invalidate();
            }
        }
        if changed {
            self.cache.invalidate();
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| ConvexPolygon::hull_of(&self.sample_points()))
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.distinct.get_or_compute(self.cache.generation(), || {
            let mut pts = self.sample_points();
            pts.sort_by(|a, b| a.lex_cmp(*b));
            pts.dedup();
            pts.len()
        })
    }

    fn points_seen(&self) -> u64 {
        self.uniform.points_seen()
    }

    fn approx_bytes(&self) -> usize {
        // Uniform substrate plus the cyclic leaf tiling (up to `2r` edges,
        // each a direction range and two endpoints).
        self.uniform.approx_bytes() + 64 + self.leaves.len() * size_of::<Leaf>()
    }

    fn name(&self) -> &'static str {
        "adaptive-2r"
    }

    fn error_bound(&self) -> Option<f64> {
        // The budgeted variant may unrefine below the weight threshold, so
        // only the uniform substrate's Lemma 3.2 guarantee is always live:
        // the tallest uncertainty triangle over the r uniform directions.
        Some(self.bound.get_or_compute(self.cache.generation(), || {
            crate::metrics::uniform_uncertainty_triangles(&self.uniform)
                .iter()
                .map(|t| t.height())
                .fold(0.0f64, f64::max)
        }))
    }
}

impl Mergeable for FixedBudgetAdaptiveHull {
    fn sample_points(&self) -> Vec<Point2> {
        FixedBudgetAdaptiveHull::sample_points(self)
    }

    fn absorb_seen(&mut self, n: u64) {
        self.uniform.add_seen(n);
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ellipse_pts(seed: u64, n: usize, aspect: f64, rot: f64) -> Vec<Point2> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let (x, y) = loop {
                    let x = next() * 2.0 - 1.0;
                    let y = next() * 2.0 - 1.0;
                    if x * x + y * y <= 1.0 {
                        break (x, y);
                    }
                };
                Point2::ORIGIN + geom::Vec2::new(x * aspect, y).rotate(rot)
            })
            .collect()
    }

    #[test]
    fn budget_is_respected() {
        let mut h = FixedBudgetAdaptiveHull::new(16);
        for q in ellipse_pts(1, 3000, 16.0, 0.1) {
            h.insert(q);
            assert!(
                h.adaptive_direction_count() <= 16,
                "budget exceeded: {}",
                h.adaptive_direction_count()
            );
        }
        // With an aspect-16 ellipse the budget should be fully used.
        assert_eq!(h.adaptive_direction_count(), 16);
        assert_eq!(h.leaves.len(), 32);
    }

    #[test]
    fn leaves_always_tile_the_circle() {
        let mut h = FixedBudgetAdaptiveHull::new(8);
        for (i, q) in ellipse_pts(2, 1000, 8.0, 0.3).into_iter().enumerate() {
            h.insert(q);
            if i % 19 != 0 || h.leaves.is_empty() {
                continue;
            }
            let mut expected = geom::dyadic::Dir(0);
            for leaf in &h.leaves {
                assert_eq!(leaf.range.lo, expected, "gap at insertion {i}");
                expected = leaf.range.hi;
            }
            assert_eq!(expected, geom::dyadic::Dir(0), "tiling must close");
            // Shared endpoints.
            for w in h.leaves.windows(2) {
                assert_eq!(w[0].b, w[1].a, "endpoint mismatch at insertion {i}");
            }
        }
    }

    #[test]
    fn matches_uniform_2r_on_disk_roughly() {
        use crate::exact::ExactHull;
        use crate::uniform::NaiveUniformHull;
        // On a disk, adaptive-r and uniform-2r should be comparable
        // (paper Table 1 row 1: adaptive at most ~25% worse).
        let pts = ellipse_pts(3, 20000, 1.0, 0.0); // aspect 1 = disk
        let mut ada = FixedBudgetAdaptiveHull::new(16);
        let mut uni = NaiveUniformHull::new(32);
        let mut ex = ExactHull::new();
        for &q in &pts {
            ada.insert(q);
            uni.insert(q);
            ex.insert(q);
        }
        let truth = ex.hull();
        let ae = ada.hull().directed_hausdorff_from(&truth);
        let ue = uni.hull().directed_hausdorff_from(&truth);
        assert!(
            ae < ue * 3.0,
            "adaptive {ae} vs uniform {ue}: should be comparable"
        );
    }

    #[test]
    fn beats_uniform_on_rotated_ellipse() {
        use crate::exact::ExactHull;
        use crate::uniform::NaiveUniformHull;
        let rot = TAU / 32.0 / 4.0;
        let pts = ellipse_pts(4, 20000, 16.0, rot);
        let mut ada = FixedBudgetAdaptiveHull::new(16);
        let mut uni = NaiveUniformHull::new(32);
        let mut ex = ExactHull::new();
        for &q in &pts {
            ada.insert(q);
            uni.insert(q);
            ex.insert(q);
        }
        let truth = ex.hull();
        let ae = ada.hull().directed_hausdorff_from(&truth);
        let ue = uni.hull().directed_hausdorff_from(&truth);
        assert!(
            ae < ue,
            "adaptive {ae} should beat uniform {ue} on the ellipse"
        );
    }

    #[test]
    fn directions_migrate_on_changing_distribution() {
        // First a vertical ellipse, then a containing horizontal one: the
        // adaptive directions should end up concentrated near the x axis.
        let mut h = FixedBudgetAdaptiveHull::new(16);
        for q in ellipse_pts(5, 2000, 4.0, core::f64::consts::FRAC_PI_2) {
            h.insert(q);
        }
        for q in ellipse_pts(6, 2000, 16.0, 0.0)
            .into_iter()
            .map(|p| Point2::new(p.x, p.y * 5.0 / 3.0))
        {
            h.insert(q);
        }
        // For a long horizontal ellipse the *flat* top and bottom produce
        // the long hull edges, so refinement concentrates on directions
        // near ±y. Count adaptive (depth > 0) leaves within 45° of ±y.
        let near_y = h
            .leaves
            .iter()
            .filter(|l| l.range.depth > 0)
            .filter(|l| {
                let ang = h.grid.angle(l.range.lo);
                (ang - TAU / 4.0).abs() < TAU / 8.0 || (ang - 3.0 * TAU / 4.0).abs() < TAU / 8.0
            })
            .count();
        let total_adaptive = h.leaves.iter().filter(|l| l.range.depth > 0).count();
        assert!(
            near_y * 2 >= total_adaptive,
            "directions should migrate to the flat ±y sides: {near_y}/{total_adaptive}"
        );
    }

    #[test]
    fn degenerate_streams() {
        let mut h = FixedBudgetAdaptiveHull::new(8);
        for _ in 0..10 {
            h.insert(Point2::new(2.0, 2.0));
        }
        assert_eq!(h.sample_size(), 1);
        let mut h2 = FixedBudgetAdaptiveHull::new(8);
        for i in 0..100 {
            h2.insert(Point2::new(i as f64, 0.0));
        }
        assert_eq!(h2.hull().len(), 2);
    }
}
