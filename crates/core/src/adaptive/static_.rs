//! The static (offline) adaptive sampling scheme of paper §4.
//!
//! For a fixed point set: take the extrema in `r` uniform directions, then
//! repeatedly refine any hull edge whose sample weight exceeds 1 by
//! bisecting its angular range and adding the extremum in the bisecting
//! direction — this time with the *whole set* available (unlike the
//! streaming version, which only has its stored samples). Lemma 4.2 bounds
//! the extra extrema by `r + 1`; Lemma 4.3 bounds every uncertainty
//! triangle height by `O(D/r²)`.

use crate::adaptive::weight::{slant, uncertainty, weight};
use geom::dyadic::{DirGrid, DirRange};
use geom::{ConvexPolygon, Point2, UncertaintyTriangle};

/// Output of the static adaptive sampling scheme.
#[derive(Clone, Debug)]
pub struct StaticSample {
    /// The sampled points in direction order (deduplicated, cyclic).
    pub points: Vec<Point2>,
    /// The final edges: dyadic range plus the two endpoint extrema.
    pub edges: Vec<(DirRange, Point2, Point2)>,
    /// Perimeter `P` of the uniformly sampled hull (the weight normaliser).
    pub perimeter: f64,
    /// Number of adaptive refinements performed.
    pub refinements: usize,
    grid: DirGrid,
    /// Distinct sample count, computed once at construction (callers poll
    /// `sample_size` in tight sweeps; no reason to re-sort per call).
    distinct: usize,
}

impl StaticSample {
    /// Convex hull of the sample.
    pub fn hull(&self) -> ConvexPolygon {
        ConvexPolygon::hull_of(&self.points)
    }

    /// Number of distinct sample points (precomputed at construction).
    pub fn sample_size(&self) -> usize {
        self.distinct
    }

    /// Uncertainty triangles of the non-degenerate edges.
    pub fn uncertainty_triangles(&self) -> Vec<UncertaintyTriangle> {
        self.edges
            .iter()
            .filter(|(_, a, b)| a != b)
            .map(|(range, a, b)| uncertainty(&self.grid, range, *a, *b))
            .collect()
    }
}

/// Runs static adaptive sampling on `points` with `r` uniform directions
/// and tree height limit `depth` (`None` = the paper's `log2 r`).
///
/// Returns `None` for an empty input.
pub fn adaptive_sample_static(
    points: &[Point2],
    r: u32,
    depth: Option<u32>,
) -> Option<StaticSample> {
    if points.is_empty() {
        return None;
    }
    let depth = depth.unwrap_or_else(|| r.trailing_zeros());
    let grid = DirGrid::new(r, depth);

    // Extremum over the whole set in an arbitrary grid direction.
    let extremum = |d: geom::dyadic::Dir| -> Point2 {
        let u = grid.unit(d);
        *points
            .iter()
            .max_by(|a, b| a.dot(u).total_cmp(&b.dot(u)))
            .unwrap()
    };

    // Uniform extrema and the weight normaliser P.
    let uniform: Vec<Point2> = (0..r).map(|j| extremum(grid.uniform_dir(j))).collect();
    let perimeter = ConvexPolygon::hull_of(&uniform).perimeter();

    let mut edges: Vec<(DirRange, Point2, Point2)> = Vec::new();
    let mut refinements = 0usize;

    // Depth-first refinement; recursion depth bounded by `depth`.
    #[allow(clippy::too_many_arguments)]
    fn refine(
        grid: &DirGrid,
        extremum: &dyn Fn(geom::dyadic::Dir) -> Point2,
        range: DirRange,
        a: Point2,
        b: Point2,
        perimeter: f64,
        edges: &mut Vec<(DirRange, Point2, Point2)>,
        refinements: &mut usize,
    ) {
        let needs = a != b
            && range.bisectable(grid)
            && weight(slant(grid, &range, a, b), range.depth, grid.r(), perimeter) > 1.0;
        if !needs {
            edges.push((range, a, b));
            return;
        }
        *refinements += 1;
        let mid = range.mid(grid);
        let t = extremum(mid);
        let (lr, rr) = range.bisect(grid);
        refine(grid, extremum, lr, a, t, perimeter, edges, refinements);
        refine(grid, extremum, rr, t, b, perimeter, edges, refinements);
    }

    for j in 0..r {
        let range = DirRange::sector(&grid, j);
        let a = uniform[j as usize];
        let b = uniform[((j + 1) % r) as usize];
        refine(
            &grid,
            &extremum,
            range,
            a,
            b,
            perimeter,
            &mut edges,
            &mut refinements,
        );
    }

    // Collect the cyclic point sequence.
    let mut pts: Vec<Point2> = Vec::new();
    for (_, a, b) in &edges {
        for p in [*a, *b] {
            if pts.last() != Some(&p) {
                pts.push(p);
            }
        }
    }
    while pts.len() > 1 && pts.first() == pts.last() {
        pts.pop();
    }
    let distinct = {
        let mut sorted = pts.clone();
        sorted.sort_by(|a, b| a.lex_cmp(*b));
        sorted.dedup();
        sorted.len()
    };

    Some(StaticSample {
        points: pts,
        edges,
        perimeter,
        refinements,
        grid,
        distinct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::hull::monotone_chain;

    fn circle_points(n: usize, radius: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / n as f64;
                Point2::new(radius * t.cos(), radius * t.sin())
            })
            .collect()
    }

    fn ellipse_points(n: usize, aspect: f64, rot: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / n as f64;
                let v = geom::Vec2::new(aspect * t.cos(), t.sin()).rotate(rot);
                Point2::ORIGIN + v
            })
            .collect()
    }

    #[test]
    fn sample_budget_matches_lemma_4_2() {
        // At most r uniform extrema + r + 1 adaptive ones.
        for r in [8u32, 16, 32, 64] {
            let pts = ellipse_points(5000, 16.0, 0.1);
            let s = adaptive_sample_static(&pts, r, None).unwrap();
            assert!(
                s.sample_size() <= (2 * r + 1) as usize,
                "r={r}: {} samples",
                s.sample_size()
            );
            assert!(
                s.refinements <= (2 * r + 2) as usize,
                "r={r}: {} refinements (Lemma 4.1 allows ~r+1 weight-reducing ones, \
                 each split counts once here)",
                s.refinements
            );
        }
    }

    #[test]
    fn error_bound_matches_lemma_4_3() {
        // Every uncertainty triangle height is O(D/r²); the paper's constant
        // works out below 2πP/r² ≤ 2π²D/r² for the worst k.
        for r in [16u32, 32, 64] {
            let pts = circle_points(10000, 5.0);
            let s = adaptive_sample_static(&pts, r, None).unwrap();
            let d = 10.0;
            let bound =
                4.0 * core::f64::consts::PI * core::f64::consts::PI * d / (r as f64 * r as f64);
            for t in s.uncertainty_triangles() {
                assert!(
                    t.height() <= bound,
                    "r={r}: triangle height {} > bound {bound}",
                    t.height()
                );
            }
        }
    }

    #[test]
    fn quadratic_error_decay() {
        // On a circle every uniform edge sits right at the refinement
        // threshold (w ≈ 1), so the constant in h·r² jitters between
        // adjacent r values depending on whether the extremal edge got one
        // more refinement. The robust quadratic-decay statements are:
        // (a) heights never increase with r, and (b) across the whole sweep
        // 16 -> 128 the total decay is the quadratic (8² = 64) up to a
        // constant-factor allowance.
        let pts = circle_points(20000, 1.0);
        let heights: Vec<f64> = [16u32, 32, 64, 128]
            .iter()
            .map(|&r| {
                adaptive_sample_static(&pts, r, None)
                    .unwrap()
                    .uncertainty_triangles()
                    .iter()
                    .map(|t| t.height())
                    .fold(0.0f64, f64::max)
            })
            .collect();
        for w in heights.windows(2) {
            assert!(
                w[1] <= w[0] * 1.01,
                "heights must not grow with r: {heights:?}"
            );
        }
        let total = heights[0] / heights[3];
        assert!(
            total >= 64.0 / 8.0,
            "8x r should give ~64x less error (allowing 8x constant drift): {heights:?}"
        );
        // And h·r² stays bounded (the O(D/r²) constant).
        for (h, r) in heights.iter().zip([16.0f64, 32.0, 64.0, 128.0]) {
            assert!(h * r * r <= 16.0, "h·r² = {} too large", h * r * r);
        }
    }

    #[test]
    fn all_samples_are_input_points_and_hull_is_inside() {
        let pts = ellipse_points(3000, 8.0, 0.37);
        let s = adaptive_sample_static(&pts, 16, None).unwrap();
        for p in &s.points {
            assert!(pts.contains(p));
        }
        let truth = monotone_chain(&pts);
        let truth_poly = geom::ConvexPolygon::from_ccw_unchecked(truth);
        for &v in s.hull().vertices() {
            assert!(truth_poly.contains_linear(v));
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(adaptive_sample_static(&[], 16, None).is_none());
        let one = adaptive_sample_static(&[Point2::new(1.0, 2.0)], 16, None).unwrap();
        assert_eq!(one.sample_size(), 1);
        let seg: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64, 0.0)).collect();
        let s = adaptive_sample_static(&seg, 16, None).unwrap();
        assert!(s.sample_size() <= 4, "collinear set needs few samples");
        assert_eq!(s.hull().len(), 2);
    }

    #[test]
    fn depth_zero_reduces_to_uniform() {
        let pts = ellipse_points(1000, 16.0, 0.2);
        let s = adaptive_sample_static(&pts, 16, Some(0)).unwrap();
        assert_eq!(s.refinements, 0);
        assert!(s.sample_size() <= 16);
    }
}
