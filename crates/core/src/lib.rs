//! # sh-core — adaptive sampling convex-hull summaries
//!
//! Rust implementation of Hershberger & Suri, *"Adaptive sampling for
//! geometric problems over data streams"* (PODS 2004 / Computational
//! Geometry 39 (2008)).
//!
//! The flagship type is [`AdaptiveHull`]: a single-pass summary keeping at
//! most `2r + 1` stream points whose convex hull is within `O(D/r²)` of the
//! true hull (`D` = diameter), with `O(log r)`-flavoured per-point cost.
//! Baselines and substrates:
//!
//! * [`ExactHull`] — exact insert-only hull (ground truth, not small-space);
//! * [`NaiveUniformHull`] / [`UniformHull`] — `O(D/r)` uniform direction
//!   sampling (§3, the FKZ baseline);
//! * [`RadialHull`] — Cormode–Muthukrishnan radial histogram baseline;
//! * [`FrozenHull`] — fixed direction set ("partially adaptive", Table 1);
//! * [`adaptive`] — the static and streaming adaptive schemes (§4, §5);
//! * [`parallel`] — the sharded ingestion engine ([`ShardedIngest`]):
//!   scoped worker threads per shard, deterministic [`Mergeable`] reduce;
//! * [`window`] — sliding-window summaries ([`WindowedSummary`]): extent
//!   queries over the last `N` points / last `T` time units of the stream
//!   via an exponential-histogram chain of buckets, over any backend;
//! * [`snapshot`] — versioned binary snapshot/restore for every backend
//!   (and windowed chains): checkpoint shards, ship summaries across
//!   processes, recover after crashes
//!   ([`SummaryBuilder::restore`](builder::SummaryBuilder::restore),
//!   [`ShardedIngest::merge_snapshots`](parallel::ShardedIngest::merge_snapshots));
//! * [`recovery`] — fault-tolerant supervised ingestion
//!   ([`SupervisedIngest`]): per-shard checkpointing, deterministic fault
//!   injection ([`FaultPlan`]), checkpoint-replay recovery under a seeded
//!   [`RetryPolicy`], and degraded completion with a [`RecoveryReport`];
//! * [`tenant`] — the resource-governed multi-tenant engine
//!   ([`TenantEngine`]): millions of per-stream summaries under a byte
//!   budget, with per-tenant quotas, admission control, load shedding
//!   ([`OverloadPolicy`]), hot/cold spill with hardened bit-exact restore
//!   and per-tenant quarantine, and a [`PressureReport`] ledger;
//! * [`telemetry`] — zero-dependency observability ([`Telemetry`]):
//!   striped counters, gauges, log-scale histograms and a deterministic
//!   trace ring threaded through the engines above, with Prometheus-text
//!   and JSON-lines exporters and a [`telemetry::Scrape`] snapshot API;
//! * [`queries`] — diameter/width/extent/separation/containment/overlap
//!   (§6) plus a multi-stream tracker, and the serving layer
//!   ([`queries::serving::QueryEngine`]): cached, error-bounded analytics
//!   over a whole [`TenantEngine`] fleet with bbox/incircle-pruned
//!   top-k scans and separation joins;
//! * [`metrics`] — the error measures of §2/§7 (uncertainty triangles,
//!   points-outside, Hausdorff error vs the exact hull);
//! * [`viz`] — SVG rendering of hulls, sample directions and uncertainty
//!   triangles (Fig. 10).
//!
//! Every summary implements the object-safe [`HullSummary`] trait (plus
//! [`Mergeable`] for sharded ingestion) and can be constructed at runtime
//! through [`SummaryBuilder`]:
//!
//! ```
//! use adaptive_hull::{HullSummary, SummaryBuilder, SummaryKind};
//! use geom::Point2;
//!
//! let mut summary = SummaryBuilder::new(SummaryKind::Adaptive).with_r(32).build();
//! summary.insert_batch(&[Point2::new(0.0, 1.0), Point2::new(2.0, 0.5)]);
//! assert!(summary.hull_ref().len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub(crate) mod batch;
pub mod builder;
pub mod cluster;
pub mod dudley;
pub mod exact;
pub mod frozen;
pub(crate) mod fxhash;
pub mod metrics;
pub mod parallel;
pub mod queries;
pub mod radial;
pub mod recovery;
pub mod snapshot;
pub mod summary;
pub mod telemetry;
pub mod tenant;
pub mod uniform;
pub mod viz;
pub mod window;

pub use adaptive::{AdaptiveHull, AdaptiveHullConfig, FixedBudgetAdaptiveHull};
pub use builder::{SummaryBuilder, SummaryKind};
pub use cluster::{ClusterHull, ClusterHullConfig};
pub use exact::ExactHull;
pub use frozen::FrozenHull;
pub use parallel::{CheckpointedRun, ShardCheckpoint, ShardRun, ShardStats, ShardedIngest};
pub use queries::serving::{
    Estimate, JoinAnswer, JoinCertificate, JoinPair, PairAnswer, QDir, QueryCacheStats,
    QueryEngine, QueryError, TopKAnswer, TopKEntry,
};
pub use radial::RadialHull;
pub use recovery::{
    DetectedFault, Fault, FaultEvent, FaultPlan, RecoveryAction, RecoveryReport, RetryPolicy,
    ShardHealth, ShardStatus, SupervisedIngest, SupervisedRun, SupervisedWindowedRun,
};
pub use snapshot::{CheckpointEnvelope, Snapshot, SnapshotError};
pub use summary::{GenCache, HullCache, HullSummary, HullSummaryExt, Mergeable, NonFiniteInput};
pub use telemetry::{Counter, Gauge, Histogram, Scrape, Span, Telemetry, TraceEvent};
pub use tenant::{
    AdmissionError, OverloadPolicy, PressureAction, PressureEvent, PressureReport, ShardedTenants,
    StreamId, TenantConfig, TenantEngine, TenantStats, Tier,
};
pub use uniform::{NaiveUniformHull, UniformHull};
pub use window::{WindowAnswer, WindowConfig, WindowPolicy, WindowedSummary};
