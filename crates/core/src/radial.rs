//! Radial histogram hull — the Cormode–Muthukrishnan baseline (§1.2).
//!
//! The plane is divided into `r` angular sectors around a fixed origin (the
//! first stream point); each sector keeps the point farthest from the
//! origin. The hull of the kept points approximates the convex hull with
//! error `O(D/r)`, like uniform direction sampling but with a different
//! failure mode (it is sensitive to where the origin lands).

use crate::summary::{HullCache, HullSummary, Mergeable};
use core::f64::consts::TAU;
use geom::{ConvexPolygon, Point2, Vec2};
use std::sync::Arc;

/// `true` iff the angle of `(x, y)` under the `atan2().rem_euclid(TAU)`
/// convention lies in the lower half-turn `[π, 2π)`. The zero vector never
/// reaches this (callers reject `p == origin` first).
#[inline]
fn lower_half(x: f64, y: f64) -> bool {
    y < 0.0 || (y == 0.0 && x < 0.0) // lint:allow(float-cmp): exact half-turn boundary — either signed zero lands the π ray in the lower half iff x < 0, matching atan2().rem_euclid(TAU) bit-for-bit
}

/// Radial-histogram convex hull summary.
#[derive(Clone, Debug)]
pub struct RadialHull {
    r: u32,
    origin: Option<Point2>,
    /// Farthest point per sector (`None` = sector empty so far).
    buckets: Vec<Option<(f64, Point2)>>,
    /// Sector boundary directions `(cos, sin)(2πj/r)` with a precomputed
    /// half-turn flag, in ascending angular order — the lookup table for
    /// the trig-free [`sector`](RadialHull::sector_of) search. A pure
    /// function of `r`, held behind an [`Arc`] so a fleet of same-`r`
    /// summaries ([`crate::tenant`]) shares one table allocation.
    bounds: Arc<[(Vec2, bool)]>,
    seen: u64,
    cache: HullCache,
}

impl RadialHull {
    /// Creates the summary with `r >= 4` angular sectors.
    pub fn new(r: u32) -> Self {
        assert!(r >= 4, "need at least 4 sectors, got {r}");
        RadialHull::with_shared_bounds(r, RadialHull::sector_bounds(r))
    }

    /// The sector-boundary lookup table for `r` sectors — build it once and
    /// hand the same `Arc` to [`RadialHull::with_shared_bounds`] for every
    /// stream of a fleet.
    pub fn sector_bounds(r: u32) -> Arc<[(Vec2, bool)]> {
        (0..r)
            .map(|j| {
                let d = Vec2::from_angle(TAU * j as f64 / r as f64);
                (d, lower_half(d.x, d.y))
            })
            .collect()
    }

    /// Like [`RadialHull::new`], but sharing a boundary table owned
    /// elsewhere (must come from [`RadialHull::sector_bounds`]`(r)`; a
    /// table of the wrong length is discarded and recomputed, so the
    /// constructor is total apart from the `r >= 4` contract).
    pub fn with_shared_bounds(r: u32, bounds: Arc<[(Vec2, bool)]>) -> Self {
        assert!(r >= 4, "need at least 4 sectors, got {r}");
        let bounds = if bounds.len() == r as usize {
            bounds
        } else {
            RadialHull::sector_bounds(r)
        };
        RadialHull {
            r,
            origin: None,
            buckets: vec![None; r as usize],
            bounds,
            seen: 0,
            cache: HullCache::new(),
        }
    }

    /// Re-points `bounds` at `table` when it matches (same length — the
    /// table is a pure function of `r`, so same length means bit-identical
    /// contents). Restore-path dedup for the tenant engine.
    pub(crate) fn intern_bounds(&mut self, table: &Arc<[(Vec2, bool)]>) {
        if !Arc::ptr_eq(&self.bounds, table) && table.len() == self.r as usize {
            self.bounds = table.clone();
        }
    }

    /// Number of sectors.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// The origin (first stream point), if any input has been seen.
    pub fn origin(&self) -> Option<Point2> {
        self.origin
    }

    /// The sector index `p` falls in relative to the current origin
    /// (`None` before the first point, or for `p` equal to the origin).
    ///
    /// Exposed for the property tests pinning the trig-free assignment
    /// against the direct `⌊angle/(2π/r)⌋` formula.
    pub fn sector_of(&self, p: Point2) -> Option<usize> {
        let origin = self.origin?;
        // distance_sq is a sum of squares, so `<= 0.0` is exactly the
        // "p coincides with the origin" test (and rejects nothing else).
        if origin.distance_sq(p) <= 0.0 {
            return None;
        }
        Some(self.sector(p, origin))
    }

    /// Sector of `p` around `origin` — **no trig in the hot loop**: where
    /// the v1 formula computed `⌊atan2(v)·r/2π⌋` per point, this compares
    /// `v` against the precomputed boundary directions. A boundary at or
    /// below `v`'s angle is detected by half-turn flag (one comparison)
    /// or, within the same half-turn (spans < π, so the sign of the cross
    /// product is the sign of the angle difference), by one cross product.
    /// The boundaries are in ascending angular order, so the count of
    /// boundaries not exceeding `v` is a partition point: `O(log r)`
    /// multiply/compare steps, no `atan2`, no division.
    fn sector(&self, p: Point2, origin: Point2) -> usize {
        let v = p - origin;
        let vh = lower_half(v.x, v.y);
        let count = self.bounds.partition_point(|&(d, dh)| {
            if dh != vh {
                // Different half-turns: the boundary precedes `v` iff it
                // is the upper-half one.
                !dh
            } else {
                d.cross(v) >= 0.0
            }
        });
        // `bounds[0]` is angle 0 and always counted, so `count >= 1`.
        count - 1
    }

    /// One point without cache bookkeeping; `true` iff the sample changed.
    ///
    /// No chunk pre-hull here: the per-sector *farthest-from-origin* winner
    /// need not lie on the chunk's convex hull (a narrow sector can be won
    /// by an interior point), so every point must be bucketed — the batch
    /// win is the deferred single cache invalidation.
    #[inline]
    fn insert_inner(&mut self, p: Point2) -> bool {
        // Non-finite points are dropped, not counted (see `HullSummary`).
        if !p.is_finite() {
            return false;
        }
        self.seen += 1;
        let origin = match self.origin {
            None => {
                self.origin = Some(p);
                return true;
            }
            Some(o) => o,
        };
        let d2 = origin.distance_sq(p);
        // Sum of squares: `<= 0.0` is exactly the duplicate-origin test.
        if d2 <= 0.0 {
            return false;
        }
        let s = self.sector(p, origin);
        match &mut self.buckets[s] {
            slot @ None => {
                *slot = Some((d2, p));
                true
            }
            Some((best, q)) => {
                if d2 > *best {
                    *best = d2;
                    *q = p;
                    true
                } else {
                    false
                }
            }
        }
    }
}

impl RadialHull {
    /// Snapshot payload: `r`, seen count, the origin, and each sector's
    /// stored point (the cached distance is recomputed on restore with the
    /// exact expression that produced it, so it is bit-identical).
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_point, put_u32, put_u64, put_u8};
        put_u32(out, self.r);
        put_u64(out, self.seen);
        put_u8(out, self.origin.is_some() as u8);
        if let Some(o) = self.origin {
            put_point(out, o);
        }
        for bucket in &self.buckets {
            put_u8(out, bucket.is_some() as u8);
            if let Some((_, p)) = bucket {
                put_point(out, *p);
            }
        }
    }

    /// Inverse of [`RadialHull::snapshot_payload`].
    pub(crate) fn from_snapshot_payload(
        reader: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let r = reader.u32()?;
        if r < 4 || r as u64 > reader.remaining() as u64 {
            return Err(SnapshotError::Malformed("implausible radial sector count"));
        }
        let seen = reader.u64()?;
        let origin = if reader.u8()? != 0 {
            Some(reader.point()?)
        } else {
            None
        };
        let mut s = RadialHull::new(r);
        s.seen = seen;
        s.origin = origin;
        for bucket in &mut s.buckets {
            if reader.u8()? != 0 {
                let p = reader.point()?;
                let o = origin.ok_or(SnapshotError::Malformed("occupied sector without origin"))?;
                *bucket = Some((o.distance_sq(p), p));
            }
        }
        Ok(s)
    }
}

impl HullSummary for RadialHull {
    fn insert(&mut self, p: Point2) {
        if self.insert_inner(p) {
            self.cache.invalidate();
        }
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them one
            // by one); recursing on the all-finite remainder preserves the
            // batch == loop equivalence contract.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        let mut changed = false;
        for &p in points {
            changed |= self.insert_inner(p);
        }
        if changed {
            self.cache.invalidate();
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache.get_or_rebuild(|| {
            let mut pts: Vec<Point2> = self.buckets.iter().flatten().map(|&(_, p)| p).collect();
            if let Some(o) = self.origin {
                pts.push(o);
            }
            ConvexPolygon::hull_of(&pts)
        })
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        let occupied = self.buckets.iter().flatten().count();
        occupied + usize::from(self.origin.is_some())
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn name(&self) -> &'static str {
        "radial"
    }

    fn error_bound(&self) -> Option<f64> {
        // Every stream point shares a sector with a stored point at least
        // as far from the origin, so it lies within `R·sin(θ0)` of the
        // segment origin→stored (Cormode–Muthukrishnan, `O(D/r)`).
        let r_max = self
            .buckets
            .iter()
            .flatten()
            .map(|&(d2, _)| d2)
            .fold(0.0f64, f64::max)
            .sqrt();
        Some(r_max * (TAU / self.r as f64).sin())
    }

    fn approx_bytes(&self) -> usize {
        // The boundary table is charged only when this summary is its sole
        // owner — a shared table costs the fleet one allocation.
        let table = if Arc::strong_count(&self.bounds) > 1 {
            0
        } else {
            self.bounds.len() * core::mem::size_of::<(Vec2, bool)>()
        };
        96 + table + self.buckets.len() * core::mem::size_of::<Option<(f64, Point2)>>()
    }
}

impl Mergeable for RadialHull {
    fn sample_points(&self) -> Vec<Point2> {
        let mut pts: Vec<Point2> = self.buckets.iter().flatten().map(|&(_, p)| p).collect();
        if let Some(o) = self.origin {
            pts.push(o);
        }
        pts
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_farthest_per_sector() {
        let mut h = RadialHull::new(4);
        h.insert(Point2::new(0.0, 0.0)); // origin
        h.insert(Point2::new(1.0, 0.1));
        h.insert(Point2::new(3.0, 0.1)); // same sector, farther
        h.insert(Point2::new(2.0, 0.1)); // same sector, nearer: ignored
        assert_eq!(h.sample_size(), 2);
        let hull = h.hull();
        assert!(hull.vertices().contains(&Point2::new(3.0, 0.1)));
        assert!(!hull.vertices().contains(&Point2::new(2.0, 0.1)));
    }

    #[test]
    fn error_is_bounded_on_circle() {
        use crate::exact::ExactHull;
        let pts: Vec<Point2> = (0..2000)
            .map(|i| {
                let t = TAU * (i as f64) * 0.618033988749895;
                Point2::new(4.0 * t.cos(), 4.0 * t.sin())
            })
            .collect();
        let mut h = RadialHull::new(32);
        let mut e = ExactHull::new();
        // Seed the origin near the centre for a fair radial run.
        h.insert(Point2::new(0.1, 0.0));
        e.insert(Point2::new(0.1, 0.0));
        for &q in &pts {
            h.insert(q);
            e.insert(q);
        }
        let err = h.hull().directed_hausdorff_from(&e.hull());
        let d = 8.0;
        assert!(err <= TAU * d / 32.0, "radial error {err} too large");
        assert!(h.sample_size() <= 33);
    }

    #[test]
    fn degenerate_streams() {
        let mut h = RadialHull::new(8);
        for _ in 0..5 {
            h.insert(Point2::new(1.0, 1.0));
        }
        assert_eq!(h.sample_size(), 1);
        assert_eq!(h.hull().len(), 1);
        assert_eq!(h.points_seen(), 5);
    }

    #[test]
    fn collinear_stream() {
        let mut h = RadialHull::new(8);
        for i in 0..100 {
            h.insert(Point2::new(i as f64, 0.0));
        }
        let hull = h.hull();
        assert_eq!(hull.len(), 2);
        assert!((geom::calipers::diameter(&hull).unwrap().2 - 99.0).abs() < 1e-12);
    }

    /// The v1 trig formula the cross-product search replaced.
    fn sector_atan2(r: u32, v: geom::Vec2) -> usize {
        let ang = v.angle().rem_euclid(TAU);
        let idx = (ang / TAU * r as f64).floor() as usize;
        idx.min(r as usize - 1)
    }

    #[test]
    fn sector_matches_atan2_formula_on_dense_sweep() {
        // Dense angular sweep at several radii, deliberately avoiding the
        // exact boundary angles (where the two formulas may legitimately
        // disagree by one ulp of rounding); the axis directions themselves
        // are covered by the cardinal cases below.
        for r in [4u32, 5, 8, 16, 32, 37] {
            let mut h = RadialHull::new(r);
            h.insert(Point2::new(0.0, 0.0));
            for k in 0..4096 {
                let ang = TAU * (k as f64 + 0.13) / 4096.0;
                for rad in [1e-6, 1.0, 1e9] {
                    let v = geom::Vec2::from_angle(ang) * rad;
                    let p = Point2::new(v.x, v.y);
                    assert_eq!(
                        h.sector_of(p),
                        Some(sector_atan2(r, v)),
                        "r={r} ang={ang} rad={rad}"
                    );
                }
            }
        }
    }

    #[test]
    fn sector_cardinal_directions() {
        // The four axis directions hit sector boundaries head on; the
        // assignment must stay in range and halve the plane consistently
        // with the atan2 convention for r = 4 (whose boundaries are exactly
        // representable directions (±1, 0), (0, ±1)).
        let mut h = RadialHull::new(4);
        h.insert(Point2::new(0.0, 0.0));
        assert_eq!(h.sector_of(Point2::new(2.0, 0.0)), Some(0));
        assert_eq!(h.sector_of(Point2::new(0.0, 2.0)), Some(1));
        assert_eq!(h.sector_of(Point2::new(-2.0, 0.0)), Some(2));
        assert_eq!(h.sector_of(Point2::new(0.0, -2.0)), Some(3));
        assert_eq!(h.sector_of(Point2::new(0.0, 0.0)), None, "origin itself");
    }
}
