//! Sharded parallel ingestion: the engine behind the
//! [`Mergeable`] story.
//!
//! [`ShardedIngest`] splits a point stream across `N` worker shards, runs
//! each shard through its own [`SummaryBuilder`]-constructed summary on a
//! scoped thread (so the whole engine works on borrowed slices, with no
//! `'static` bounds and no extra dependencies), and reduces the workers
//! with [`Mergeable::merge_from`] **in shard order** into a fresh collector
//! of the same kind.
//!
//! # Determinism contract
//!
//! For a fixed input stream, summary configuration (including its seed),
//! shard count, and chunk size, the result is **bit-identical across
//! runs** regardless of how the OS schedules the worker threads:
//!
//! * shard assignment is a pure function of point index and shard count
//!   (contiguous split for [`run`](ShardedIngest::run), round-robin over
//!   chunks for [`run_stream`](ShardedIngest::run_stream)) — never of
//!   thread timing;
//! * each worker is sequential and deterministic;
//! * the reduce always merges workers in shard order `0, 1, …, N-1`.
//!
//! Changing the shard count is allowed to change the result (the collector
//! re-summarises different shard samples); the property tests in
//! `tests/sharded_parallel.rs` pin the contract per shard count for every
//! [`SummaryKind`](crate::builder::SummaryKind).
//!
//! # Error guarantee
//!
//! Merging re-inserts each worker's stored sample (actual stream points),
//! so the merged hull's error against the union stream is at most the sum
//! of the workers' live [`error_bound`](crate::summary::HullSummary::error_bound)s
//! plus the collector's own bound — the [`ShardRun`] report carries the
//! per-shard bounds so callers (and the property tests) can evaluate the
//! composed guarantee.

use crate::builder::SummaryBuilder;
use crate::snapshot::SnapshotError;
use crate::summary::{Mergeable, NonFiniteInput};
use crate::telemetry::{names, Telemetry};
use crate::window::{WindowConfig, WindowPolicy, WindowedRun};
use geom::Point2;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A boxed shard worker summary.
type Worker = Box<dyn Mergeable + Send + Sync>;

/// Default points per `insert_batch` call inside each worker.
pub const DEFAULT_CHUNK: usize = 1024;

/// Per-shard observability snapshot, taken after the shard finished
/// ingesting and before it was merged away.
#[derive(Clone, Copy, Debug)]
#[must_use = "shard statistics carry the per-shard error bounds of the composed guarantee"]
pub struct ShardStats {
    /// Stream points this shard consumed.
    pub points_seen: u64,
    /// Points the shard's summary stored at the end of its run.
    pub sample_size: usize,
    /// The shard's live error guarantee at the end of its run, when its
    /// kind reports one.
    pub error_bound: Option<f64>,
}

/// The result of a sharded run: the merged collector summary plus the
/// per-shard statistics needed to evaluate the composed error guarantee.
#[derive(Debug)]
#[must_use = "a shard run carries the merged summary; dropping it discards the whole ingestion"]
pub struct ShardRun {
    /// The collector: a summary of the configured kind that absorbed every
    /// worker in shard order.
    pub summary: Box<dyn Mergeable + Send + Sync>,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Wall-clock time of the whole run (fan-out through the final
    /// reduce), so callers can report throughput without wrapping every
    /// entry point in their own timers.
    pub elapsed: Duration,
}

impl ShardRun {
    /// Sum of the per-shard error bounds, when **every** shard reports
    /// one. Adding the collector's own
    /// [`error_bound`](crate::summary::HullSummary::error_bound) gives the
    /// guarantee of the merged hull against the union stream.
    #[must_use]
    pub fn shard_bound_sum(&self) -> Option<f64> {
        self.shards
            .iter()
            .map(|s| s.error_bound)
            .try_fold(0.0, |acc, b| b.map(|b| acc + b))
    }
}

/// Sharded parallel ingestion engine over any
/// [`SummaryKind`](crate::builder::SummaryKind).
///
/// ```
/// use adaptive_hull::parallel::ShardedIngest;
/// use adaptive_hull::{SummaryBuilder, SummaryKind};
/// use geom::Point2;
///
/// let pts: Vec<Point2> = (0..10_000)
///     .map(|i| {
///         let t = i as f64 * 0.01;
///         Point2::new(t.cos() * 3.0, t.sin() * 2.0)
///     })
///     .collect();
/// let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16), 4);
/// let run = engine.run(&pts);
/// assert_eq!(run.summary.points_seen(), 10_000);
/// assert_eq!(run.shards.len(), 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ShardedIngest {
    builder: SummaryBuilder,
    shards: usize,
    chunk: usize,
    telemetry: Telemetry,
}

impl ShardedIngest {
    /// An engine fanning out to `shards` workers, each building its
    /// summary from `builder`. `shards` must be at least 1.
    pub fn new(builder: SummaryBuilder, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedIngest {
            builder,
            shards,
            chunk: DEFAULT_CHUNK,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the worker batch size (points per `insert_batch` call).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk must be at least 1");
        self.chunk = chunk;
        self
    }

    /// Attaches an observability handle: every entry point then records
    /// per-backend point/batch counters and a per-chunk ns/point
    /// histogram (labelled `backend=<kind>`), at chunk granularity so
    /// the hot path cost is one timestamp and three relaxed atomic adds
    /// per *chunk*. The default is [`Telemetry::disabled`], under which
    /// the instrumentation collapses to a branch per chunk.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The observability handle this engine records through.
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured worker batch size.
    #[must_use]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The summary configuration each worker (and the collector) uses.
    #[must_use]
    pub fn builder(&self) -> SummaryBuilder {
        self.builder
    }

    /// Ingests a materialised stream: shard `i` gets the `i`-th of `N`
    /// near-equal **contiguous** slices (first `len % N` shards take one
    /// extra point), runs on its own scoped thread, and the workers are
    /// merged in shard order.
    ///
    /// Contiguous slices keep each worker's stream locality intact, which
    /// is what the batched fast paths (interior certificate, pre-hull)
    /// feed on.
    pub fn run(&self, points: &[Point2]) -> ShardRun {
        let start = Instant::now();
        let workers = self.fan_out_slices(points, |_, s, piece| {
            s.insert_batch(piece);
        });
        self.reduce(workers, start)
    }

    /// Checked variant of [`run`](ShardedIngest::run): validates the whole
    /// slice up front and rejects the first non-finite point with a typed
    /// error instead of silently dropping it. No threads are spawned and
    /// no work is done on rejection.
    pub fn try_run(&self, points: &[Point2]) -> Result<ShardRun, NonFiniteInput> {
        if let Some((index, &point)) = points.iter().enumerate().find(|(_, p)| !p.is_finite()) {
            return Err(NonFiniteInput { index, point });
        }
        Ok(self.run(points))
    }

    /// Shared fan-out scaffold of the slice-based entry points: shard `i`
    /// runs `per_chunk(shard, summary, chunk)` over its contiguous slice
    /// on a scoped thread; workers are returned in shard order.
    fn fan_out_slices<F>(&self, points: &[Point2], per_chunk: F) -> Vec<Worker>
    where
        F: Fn(usize, &mut Worker, &[Point2]) + Sync,
    {
        let per_chunk = &per_chunk;
        // Instruments are registered once here (registration locks); the
        // Copy handles then ride into every worker closure for free.
        let backend = self.builder.kind().label();
        let points_total = self
            .telemetry
            .counter(names::INGEST_POINTS, &[("backend", backend)]);
        let batches_total = self
            .telemetry
            .counter(names::INGEST_BATCHES, &[("backend", backend)]);
        let ns_per_point = self
            .telemetry
            .histogram(names::INGEST_NS_PER_POINT, &[("backend", backend)]);
        std::thread::scope(|scope| {
            let handles: Vec<_> = split_contiguous(points, self.shards)
                .enumerate()
                .map(|(shard, slice)| {
                    let builder = self.builder;
                    let chunk = self.chunk;
                    scope.spawn(move || {
                        let mut s = builder.build_mergeable();
                        for piece in slice.chunks(chunk) {
                            if ns_per_point.enabled() && !piece.is_empty() {
                                let t0 = Instant::now();
                                per_chunk(shard, &mut s, piece);
                                let ns = t0.elapsed().as_nanos() as u64 / piece.len() as u64;
                                ns_per_point.record(ns);
                            } else {
                                per_chunk(shard, &mut s, piece);
                            }
                            points_total.add(piece.len() as u64);
                            batches_total.inc();
                        }
                        s
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked")) // lint:allow(no-panic): re-raising a worker panic on the coordinator is the only sound way to surface it
                .collect()
        })
    }

    /// [`run`](ShardedIngest::run) with periodic durability: each worker
    /// serialises its summary with the snapshot codec every
    /// `interval` ingested points (and once more at the end of its
    /// slice), so a crashed or migrated shard resumes from its last
    /// checkpoint instead of replaying the stream.
    ///
    /// The ingestion itself is bit-identical to [`run`](ShardedIngest::run)
    /// — snapshots are taken between chunks and never mutate the summary —
    /// and the per-shard *final* checkpoints are exactly the inputs
    /// [`merge_snapshots`](ShardedIngest::merge_snapshots) needs to rebuild
    /// the same collector in another process.
    pub fn run_checkpointed(&self, points: &[Point2], interval: u64) -> CheckpointedRun {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        let start = Instant::now();
        let cps: Mutex<Vec<Vec<ShardCheckpoint>>> =
            Mutex::new((0..self.shards).map(|_| Vec::new()).collect());
        let since_last: Mutex<Vec<u64>> = Mutex::new(vec![0; self.shards]);
        let encode_ns = self.telemetry.histogram(names::CHECKPOINT_ENCODE_NS, &[]);
        let timed_encode = |s: &Worker| {
            if encode_ns.enabled() {
                let t0 = Instant::now();
                let bytes = s.encode_snapshot();
                encode_ns.record(t0.elapsed().as_nanos() as u64);
                bytes
            } else {
                s.encode_snapshot()
            }
        };
        let workers = self.fan_out_slices(points, |shard, s, piece| {
            s.insert_batch(piece);
            let mut since = since_last.lock().unwrap_or_else(|e| e.into_inner());
            since[shard] += piece.len() as u64;
            if since[shard] >= interval {
                since[shard] = 0;
                drop(since);
                cps.lock().unwrap_or_else(|e| e.into_inner())[shard].push(ShardCheckpoint {
                    shard,
                    points_seen: s.points_seen(),
                    bytes: timed_encode(s),
                });
            }
        });
        let mut checkpoints = Vec::new();
        for (shard, (mut shard_cps, worker)) in cps
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .zip(&workers)
            .enumerate()
        {
            // Final checkpoint: always present, so the set of
            // last-per-shard checkpoints reconstructs the run.
            if shard_cps.last().map(|c| c.points_seen) != Some(worker.points_seen()) {
                shard_cps.push(ShardCheckpoint {
                    shard,
                    points_seen: worker.points_seen(),
                    bytes: worker.encode_snapshot(),
                });
            }
            checkpoints.extend(shard_cps);
        }
        CheckpointedRun {
            run: self.reduce(workers, start),
            checkpoints,
        }
    }

    /// Reduces snapshots produced in *other* processes (or machines, or
    /// earlier crashed runs) exactly as [`run`](ShardedIngest::run)'s
    /// in-process reduce would: each snapshot is restored via the kind
    /// tag, per-shard stats recorded, and the summaries merged **in
    /// iteration order** into a fresh collector built from this engine's
    /// builder — feed the per-shard final snapshots in shard order and the
    /// result is bit-identical to the in-process run on the same input.
    ///
    /// Fails with a typed [`SnapshotError`] (and no partial state) if any
    /// snapshot is corrupted, truncated, version-skewed, or windowed.
    pub fn merge_snapshots<I>(&self, snapshots: I) -> Result<ShardRun, SnapshotError>
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        let start = Instant::now();
        let workers = snapshots
            .into_iter()
            .map(|bytes| SummaryBuilder::restore(bytes.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.reduce(workers, start))
    }

    /// Ingests an unmaterialised stream: points are gathered into chunks
    /// of the configured size as they arrive and chunk `c` is dispatched
    /// to shard `c % N` over a bounded channel (backpressure: a slow shard
    /// stalls the reader instead of buffering the stream).
    ///
    /// The chunk→shard assignment depends only on the chunk index, so the
    /// determinism contract holds exactly as for
    /// [`run`](ShardedIngest::run) (the two entry points partition the
    /// stream differently and therefore may produce different — each
    /// individually reproducible — results).
    ///
    /// A worker panic is re-raised on the caller (pinned by a
    /// characterization test); for fault tolerance wrap the engine in
    /// [`SupervisedIngest`](crate::recovery::SupervisedIngest), which
    /// shares this dispatch loop but recovers via checkpoint replay.
    pub fn run_stream<I>(&self, points: I) -> ShardRun
    where
        I: IntoIterator<Item = Point2>,
    {
        crate::recovery::run_stream_propagating(self, crate::recovery::FaultPlan::new(), points)
    }

    /// Windowed variant of [`run_stream`](ShardedIngest::run_stream):
    /// each shard keeps a [`WindowedSummary`](crate::window::WindowedSummary)
    /// over its round-robin share of the stream, with every point stamped
    /// by a **global** auto-tick (1 per stream point) so all shards share
    /// one clock.
    ///
    /// Both window policies work: a count-based `LastN(n)` window is
    /// carried on the tick clock (each point has a distinct tick, so
    /// "ticks newer than `now - n`" is exactly the last `n` stream
    /// points), which is what keeps the policy meaningful when the stream
    /// is split across shards. The determinism contract of
    /// [`run_stream`](ShardedIngest::run_stream) carries over: chunk →
    /// shard assignment is pure round-robin, workers are sequential, and
    /// [`WindowedRun::query_window`] merges live buckets in shard order.
    pub fn run_stream_windowed<I>(&self, points: I, config: WindowConfig) -> WindowedRun
    where
        I: IntoIterator<Item = Point2>,
    {
        let shard_config = crate::window::shard_window_config(config);
        self.run_stream_windowed_at(
            points.into_iter().enumerate().map(|(i, p)| (p, i as f64)),
            shard_config,
        )
    }

    /// Windowed sharded ingestion of an externally timestamped stream
    /// (timestamps non-decreasing in stream order). Requires a
    /// [`LastDur`](crate::window::WindowPolicy::LastDur) policy: a
    /// count-based window cannot be evaluated from one shard's share of
    /// the stream — use [`run_stream_windowed`](ShardedIngest::run_stream_windowed),
    /// whose global tick clock carries `LastN` exactly.
    pub fn run_stream_windowed_at<I>(&self, points: I, config: WindowConfig) -> WindowedRun
    where
        I: IntoIterator<Item = (Point2, f64)>,
    {
        assert!(
            matches!(config.policy, WindowPolicy::LastDur(_)),
            "sharded count windows need the global tick clock: use run_stream_windowed"
        );
        crate::recovery::run_stream_windowed_at_propagating(self, points, config)
    }

    /// Deterministic reduce: snapshot per-shard stats, then merge the
    /// workers into a fresh collector in shard order.
    pub(crate) fn reduce(
        &self,
        workers: Vec<Box<dyn Mergeable + Send + Sync>>,
        start: Instant,
    ) -> ShardRun {
        let shards = workers
            .iter()
            .map(|w| ShardStats {
                points_seen: w.points_seen(),
                sample_size: w.sample_size(),
                error_bound: w.error_bound(),
            })
            .collect();
        let mut collector = self.builder.build_mergeable();
        for w in &workers {
            collector.merge_from(w.as_ref());
        }
        ShardRun {
            summary: collector,
            shards,
            elapsed: start.elapsed(),
        }
    }
}

/// One durable snapshot taken during
/// [`ShardedIngest::run_checkpointed`].
#[derive(Clone, Debug)]
pub struct ShardCheckpoint {
    /// Which shard produced it.
    pub shard: usize,
    /// The shard's cumulative seen-count at snapshot time.
    pub points_seen: u64,
    /// The sealed snapshot envelope
    /// ([`SummaryBuilder::restore`](crate::builder::SummaryBuilder::restore)
    /// reads it back).
    pub bytes: Vec<u8>,
}

/// The result of [`ShardedIngest::run_checkpointed`]: the ordinary
/// [`ShardRun`] plus every checkpoint taken along the way, ordered by
/// shard then by progress (each shard's last entry is its final state).
#[derive(Debug)]
#[must_use = "dropping a checkpointed run discards both the summary and the checkpoints"]
pub struct CheckpointedRun {
    /// The merged result, identical to what [`ShardedIngest::run`] returns
    /// for the same input.
    pub run: ShardRun,
    /// All checkpoints, ordered by `(shard, points_seen)`.
    pub checkpoints: Vec<ShardCheckpoint>,
}

impl CheckpointedRun {
    /// The final checkpoint of each shard, in shard order — exactly the
    /// snapshot set [`ShardedIngest::merge_snapshots`] reduces to the same
    /// collector.
    pub fn final_snapshots(&self) -> Vec<&[u8]> {
        let mut last: Vec<Option<&ShardCheckpoint>> = vec![None; self.run.shards.len()];
        for cp in &self.checkpoints {
            if let Some(slot) = last.get_mut(cp.shard) {
                *slot = Some(cp);
            }
        }
        last.into_iter()
            .flatten()
            .map(|cp| cp.bytes.as_slice())
            .collect()
    }
}

/// Splits `points` into `n` near-equal contiguous slices (the first
/// `len % n` slices get one extra point). Always yields exactly `n`
/// slices; trailing ones are empty when `len < n`.
fn split_contiguous(points: &[Point2], n: usize) -> impl Iterator<Item = &[Point2]> {
    let base = points.len() / n;
    let extra = points.len() % n;
    let mut start = 0;
    (0..n).map(move |i| {
        let len = base + usize::from(i < extra);
        let slice = &points[start..start + len];
        start += len;
        slice
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SummaryKind;
    use crate::summary::HullSummary;

    fn spiral(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = 2.399963229728653 * i as f64;
                let rad = 1.0 + 0.01 * i as f64;
                Point2::new(rad * t.cos(), rad * t.sin())
            })
            .collect()
    }

    #[test]
    fn contiguous_split_covers_everything_in_order() {
        let pts = spiral(10);
        let slices: Vec<&[Point2]> = split_contiguous(&pts, 3).collect();
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].len(), 4, "first shard takes the remainder");
        assert_eq!(slices[1].len(), 3);
        assert_eq!(slices[2].len(), 3);
        let rejoined: Vec<Point2> = slices.concat();
        assert_eq!(rejoined, pts);
        // More shards than points: trailing slices are empty.
        let tiny: Vec<&[Point2]> = split_contiguous(&pts[..2], 4).collect();
        assert_eq!(
            tiny.iter().map(|s| s.len()).collect::<Vec<_>>(),
            [1, 1, 0, 0]
        );
    }

    #[test]
    fn every_kind_runs_sharded_with_exact_seen_counts() {
        let pts = spiral(997); // deliberately not divisible by the shard counts
        for &kind in &SummaryKind::ALL {
            for shards in [1, 2, 4] {
                let engine = ShardedIngest::new(SummaryBuilder::new(kind).with_r(16), shards)
                    .with_chunk(128);
                let run = engine.run(&pts);
                assert_eq!(run.summary.points_seen(), 997, "{kind}/{shards}");
                assert_eq!(run.shards.len(), shards, "{kind}/{shards}");
                let shard_total: u64 = run.shards.iter().map(|s| s.points_seen).sum();
                assert_eq!(shard_total, 997, "{kind}/{shards}: shard accounting");
            }
        }
    }

    #[test]
    fn fixed_shard_count_is_deterministic() {
        let pts = spiral(1500);
        for &kind in &[
            SummaryKind::Adaptive,
            SummaryKind::Cluster,
            SummaryKind::Radial,
        ] {
            let engine = ShardedIngest::new(SummaryBuilder::new(kind).with_r(16), 3).with_chunk(64);
            let a = engine.run(&pts);
            let b = engine.run(&pts);
            assert_eq!(
                a.summary.hull_ref().vertices(),
                b.summary.hull_ref().vertices(),
                "{kind}: hull must not depend on scheduling"
            );
            assert_eq!(a.summary.sample_size(), b.summary.sample_size(), "{kind}");
            assert_eq!(a.summary.error_bound(), b.summary.error_bound(), "{kind}");
            let sa = engine.run_stream(pts.iter().copied());
            let sb = engine.run_stream(pts.iter().copied());
            assert_eq!(
                sa.summary.hull_ref().vertices(),
                sb.summary.hull_ref().vertices(),
                "{kind}: stream entry point must be deterministic too"
            );
        }
    }

    #[test]
    fn stream_and_slice_entry_points_agree_on_single_shard() {
        // With one shard both entry points feed one worker the whole
        // stream in order, in chunk-sized batches — and insert_batch is
        // contractually identical to the loop, so the results coincide.
        let pts = spiral(700);
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(8), 1)
            .with_chunk(100);
        let a = engine.run(&pts);
        let b = engine.run_stream(pts.iter().copied());
        assert_eq!(
            a.summary.hull_ref().vertices(),
            b.summary.hull_ref().vertices()
        );
        assert_eq!(a.summary.points_seen(), b.summary.points_seen());
    }

    #[test]
    fn empty_and_tiny_streams() {
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Uniform).with_r(8), 4);
        let run = engine.run(&[]);
        assert_eq!(run.summary.points_seen(), 0);
        assert_eq!(run.shards.len(), 4);
        let one = engine.run(&[Point2::new(1.0, 2.0)]);
        assert_eq!(one.summary.points_seen(), 1);
        assert_eq!(one.summary.hull_ref().len(), 1);
        let s = engine.run_stream(std::iter::empty());
        assert_eq!(s.summary.points_seen(), 0);
    }

    #[test]
    fn windowed_sharded_run_is_deterministic_and_covers_window() {
        let pts = spiral(3000);
        for &kind in &[
            SummaryKind::Exact,
            SummaryKind::Adaptive,
            SummaryKind::Radial,
        ] {
            let engine = ShardedIngest::new(SummaryBuilder::new(kind).with_r(16), 3).with_chunk(64);
            let config = WindowConfig::last_n(500).with_granularity(32);
            let a = engine.run_stream_windowed(pts.iter().copied(), config);
            let b = engine.run_stream_windowed(pts.iter().copied(), config);
            assert_eq!(a.points_seen(), 3000, "{kind}");
            let (ans_a, ans_b) = (a.query_window(), b.query_window());
            assert_eq!(
                ans_a.summary.hull_ref().vertices(),
                ans_b.summary.hull_ref().vertices(),
                "{kind}: windowed shard merge must not depend on scheduling"
            );
            assert_eq!(ans_a.merged_points, ans_b.merged_points, "{kind}");
            // Every in-window point lives in some live bucket, so the
            // merge covers at least the window (window_points() is a
            // conservative lower bound and may undershoot here: each
            // shard can contribute one straddling bucket's slack).
            assert!(ans_a.merged_points >= 500, "{kind}");
            // Exact backend: the union-window hull contains every point of
            // the true global window suffix.
            if kind == SummaryKind::Exact {
                for &p in &pts[pts.len() - 500..] {
                    assert!(ans_a.hull().contains_linear(p), "{kind}: lost {p:?}");
                }
            }
        }
    }

    #[test]
    fn windowed_sharded_empty_and_timestamped_runs() {
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Uniform).with_r(8), 4);
        let empty = engine.run_stream_windowed(std::iter::empty(), WindowConfig::last_n(10));
        assert_eq!(empty.points_seen(), 0);
        assert!(empty.query_window().is_empty());
        assert_eq!(empty.now(), None);

        // Timestamped entry point: two phases far apart in time; the old
        // phase must be invisible in the union window.
        let pts = spiral(1000);
        let stamped = pts.iter().enumerate().map(|(i, &p)| {
            if i < 500 {
                (p, i as f64)
            } else {
                (p, 1e6 + i as f64)
            }
        });
        let run = engine.run_stream_windowed_at(stamped, WindowConfig::last_dur(2000.0));
        let ans = run.query_window();
        assert!(ans.merged_points >= 500, "whole recent phase covered");
        assert!(
            ans.merged_points < 1000,
            "ancient phase must have expired (merged {})",
            ans.merged_points
        );
    }

    #[test]
    #[should_panic(expected = "global tick clock")]
    fn windowed_timestamped_rejects_count_policy() {
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Exact), 2);
        let _ =
            engine.run_stream_windowed_at([(Point2::new(0.0, 0.0), 0.0)], WindowConfig::last_n(5));
    }

    #[test]
    fn telemetry_counts_every_point_and_chunk() {
        let tel = Telemetry::new();
        let pts = spiral(1000);
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16), 2)
            .with_chunk(128)
            .with_telemetry(tel);
        let run = engine.run(&pts);
        assert_eq!(run.summary.points_seen(), 1000);
        let s = tel.scrape();
        let backend = SummaryKind::Adaptive.label();
        assert_eq!(
            s.counter_with(names::INGEST_POINTS, &[("backend", backend)]),
            Some(1000)
        );
        // 500 points per shard in chunks of 128 → 4 chunks each.
        assert_eq!(s.counter_total(names::INGEST_BATCHES), 8);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].count, 8);
    }

    #[test]
    fn shard_bound_sum_composes() {
        let pts = spiral(400);
        let engine = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16), 3);
        let run = engine.run(&pts);
        let sum = run
            .shard_bound_sum()
            .expect("adaptive shards report bounds");
        assert!(sum.is_finite() && sum >= 0.0);
        // Frozen reports no bound, so the sum is None.
        let frozen = ShardedIngest::new(SummaryBuilder::new(SummaryKind::Frozen).with_r(16), 3);
        assert!(frozen.run(&pts).shard_bound_sum().is_none());
    }
}
