//! Resource-governed multi-tenant summary engine.
//!
//! The paper's premise is that one summary is a tiny, bounded-memory
//! stand-in for one unbounded stream. A service holds *millions* of them —
//! one per user, sensor, or shard key — and at that scale the binding
//! constraint is no longer a single summary's `2r + 1` sample but the
//! fleet's total footprint. [`TenantEngine`] is the governed registry for
//! that fleet:
//!
//! * **Accounting & quotas** — every summary reports
//!   [`approx_bytes`](crate::summary::HullSummary::approx_bytes); the
//!   engine tracks a global budget and per-tenant caps and refuses work
//!   past quota with a typed [`AdmissionError`], never a panic or abort.
//! * **Admission control & load shedding** — overload resolves by explicit
//!   [`OverloadPolicy`]: reject with an error, shed the coldest work, or
//!   degrade hot streams to a cheaper backend (snapshot round-trip, with
//!   the error bound honestly widened — or withdrawn when the donor had
//!   none). Everything shed, degraded, or refused is tallied in a
//!   [`PressureReport`], the resource-pressure mirror of
//!   [`crate::recovery::RecoveryReport`].
//! * **Hot/cold tiering** — idle streams spill to
//!   [`snapshot`](crate::snapshot) envelopes on an idle-tick policy and
//!   restore bit-exactly on touch. A corrupt or truncated spill is caught
//!   by the hardened decode path and quarantines *only that tenant*; every
//!   other stream keeps serving.
//! * **Shared immutable tables** — the frozen direction fan and the radial
//!   sector table are pure functions of `(r, seed)` and `r`; the engine
//!   builds each once and shares the allocation across every stream of
//!   that configuration (and re-interns it on restore), so a million
//!   radial tenants carry one sector table, not a million.
//! * **Bulk interleaved ingest** — `(stream, point)` traffic is grouped
//!   per call and, via [`ShardedTenants`], routed across engine shards by
//!   stream-id hash on scoped threads. Per-stream backfill composes with
//!   [`ShardedIngest`] and [`crate::recovery::SupervisedIngest`], so PR
//!   7's crash/stall recovery story holds at tenant scale.
//!
//! This module is a declared **no-panic zone** (enforced by `hull-lint`):
//! every overload, corruption, and quota outcome is a value, not a crash.

use crate::builder::{SummaryBuilder, SummaryKind};
use crate::frozen::FrozenHull;
use crate::fxhash::FxBuild;
use crate::parallel::ShardedIngest;
use crate::queries::MultiStreamTracker;
use crate::radial::RadialHull;
use crate::recovery::{RecoveryReport, SupervisedIngest};
use crate::snapshot::{peek_kind, Snapshot, SnapshotError};
use crate::summary::{HullSummary, Mergeable};
use crate::telemetry::{names, Counter, Gauge, Telemetry};
use geom::{ConvexPolygon, Point2, Vec2};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies one tenant stream. Plain `u64` newtype: dense ids, hash
/// keys, and foreign keys from an upstream router all work unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for StreamId {
    fn from(v: u64) -> Self {
        StreamId(v)
    }
}

/// What the engine does when the global budget (or a bounded ingest
/// queue) cannot absorb more work after spilling idle streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse the work with a typed [`AdmissionError`]. Nothing already
    /// admitted is touched; the caller decides what to drop.
    #[default]
    Reject,
    /// Evict the least-recently-touched tenants (and drop the oldest
    /// points of an over-long bulk batch) until the budget holds. The
    /// engine never errors; everything dropped is tallied.
    ShedOldest,
    /// Swap the coldest streams' backends for the cheaper fallback kind
    /// via a snapshot round-trip, honestly widening (or withdrawing) each
    /// victim's error bound; evicts as a last resort if even the degraded
    /// fleet cannot fit.
    DegradeToCoarser,
}

/// Why the engine refused work. Every variant is a recoverable value —
/// the no-panic zone's contract is that quota pressure and corruption
/// surface here, never as a crash.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionError {
    /// The registry already holds `limit` streams and the policy is
    /// [`OverloadPolicy::Reject`].
    StreamLimit {
        /// Configured `max_streams`.
        limit: usize,
    },
    /// The global byte budget is exhausted and spilling idle streams was
    /// not enough (policy [`OverloadPolicy::Reject`]).
    OverBudget {
        /// Bytes in use after spill relief.
        in_use: usize,
        /// The configured global budget.
        budget: usize,
    },
    /// This tenant's own byte cap is exhausted.
    TenantCap {
        /// The tenant at cap.
        stream: StreamId,
        /// Its current footprint.
        bytes: usize,
        /// The configured per-tenant cap.
        cap: usize,
    },
    /// The tenant's spilled state failed the hardened decode — it is
    /// quarantined and no longer serves until dropped.
    Quarantined {
        /// The poisoned tenant.
        stream: StreamId,
        /// What the decoder rejected.
        error: SnapshotError,
    },
    /// A bulk batch exceeded the bounded ingest queue under
    /// [`OverloadPolicy::Reject`]. Nothing from the batch was admitted.
    QueueFull {
        /// Points offered in the batch.
        offered: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The stream is not registered (query-path errors only; ingest
    /// registers on first touch).
    UnknownStream {
        /// The unknown id.
        stream: StreamId,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::StreamLimit { limit } => {
                write!(f, "stream registry full ({limit} streams)")
            }
            AdmissionError::OverBudget { in_use, budget } => {
                write!(
                    f,
                    "global budget exhausted ({in_use} B in use, budget {budget} B)"
                )
            }
            AdmissionError::TenantCap { stream, bytes, cap } => {
                write!(f, "tenant {stream} at cap ({bytes} B, cap {cap} B)")
            }
            AdmissionError::Quarantined { stream, error } => {
                write!(f, "tenant {stream} quarantined: {error}")
            }
            AdmissionError::QueueFull { offered, capacity } => {
                write!(
                    f,
                    "ingest queue full ({offered} points offered, capacity {capacity})"
                )
            }
            AdmissionError::UnknownStream { stream } => {
                write!(f, "unknown stream {stream}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Where a tenant's state currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Live summary in memory.
    Hot,
    /// Spilled to a snapshot envelope; restores bit-exactly on touch.
    Cold,
    /// Its envelope failed the hardened decode; refuses to serve.
    Quarantined,
}

/// One resource event, in the order it happened (log bounded by
/// [`TenantConfig::with_event_capacity`]; overflow is counted, not kept).
#[derive(Clone, Debug)]
pub struct PressureEvent {
    /// The tenant involved.
    pub stream: StreamId,
    /// Engine clock when it happened.
    pub tick: u64,
    /// What happened.
    pub action: PressureAction,
}

/// What a [`PressureEvent`] records.
#[derive(Clone, Debug)]
pub enum PressureAction {
    /// Hot summary written out to a snapshot envelope.
    Spilled {
        /// Envelope size.
        bytes: usize,
    },
    /// Envelope decoded back to a hot summary.
    Restored {
        /// Envelope size.
        bytes: usize,
    },
    /// Points dropped by load shedding.
    ShedPoints {
        /// How many.
        points: u64,
    },
    /// The whole tenant evicted by [`OverloadPolicy::ShedOldest`] (or as
    /// the degrade ladder's last resort).
    Evicted {
        /// Points the evicted summary had consumed.
        seen: u64,
    },
    /// Backend swapped for the cheaper fallback kind.
    Degraded {
        /// Donor backend name.
        from: &'static str,
        /// Fallback backend name.
        to: &'static str,
    },
    /// Spilled state failed the hardened decode.
    Quarantined {
        /// The decode error.
        error: SnapshotError,
    },
    /// Work refused with a typed error under [`OverloadPolicy::Reject`].
    Rejected {
        /// Points refused.
        points: u64,
    },
}

/// Running tallies of everything the governor did — the resource-pressure
/// mirror of [`crate::recovery::RecoveryReport`]: exact
/// counts first, a bounded event log for the narrative.
#[derive(Clone, Debug, Default)]
pub struct PressureReport {
    /// Configured global budget (0 = unbounded).
    pub budget_bytes: usize,
    /// Accounted bytes at the time the report was taken.
    pub bytes_in_use: usize,
    /// High-water mark of accounted bytes.
    pub bytes_peak: usize,
    /// Streams ever admitted.
    pub streams_admitted: u64,
    /// Stream registrations refused ([`OverloadPolicy::Reject`]).
    pub streams_rejected: u64,
    /// Whole tenants evicted by shedding.
    pub streams_shed: u64,
    /// Tenants degraded to the fallback backend.
    pub streams_degraded: u64,
    /// Tenants quarantined by corrupt spills.
    pub streams_quarantined: u64,
    /// Finite points offered to admitted tenants (`== points_ingested +
    /// points_shed`, the exact-accounting invariant).
    pub points_seen: u64,
    /// Points actually fed to summaries.
    pub points_ingested: u64,
    /// Points dropped by load shedding.
    pub points_shed: u64,
    /// Points refused with a typed error (not counted in `points_seen`).
    pub points_rejected: u64,
    /// Hot → cold transitions.
    pub spills: u64,
    /// Cold → hot transitions.
    pub restores: u64,
    /// Total envelope bytes written by spills.
    pub spilled_bytes: u64,
    /// Bounded event log, oldest first. The bound is
    /// [`TenantConfig::with_event_capacity`] (default 256) and the log
    /// keeps the **first** `event_capacity` events — the onset of a
    /// pressure incident — counting overflow in `events_dropped` instead
    /// of storing it. (The telemetry trace ring makes the opposite
    /// choice and keeps the *newest* events; attach a registry via
    /// [`TenantConfig::with_telemetry`] to capture both ends.)
    pub events: Vec<PressureEvent>,
    /// Events that no longer fit the log. Nothing is lost silently: the
    /// exact counters above are unaffected by the bound, and when a
    /// telemetry registry is attached every event — kept or dropped —
    /// is still emitted into the trace ring.
    pub events_dropped: u64,
}

impl PressureReport {
    /// `true` when resource pressure cost anything: points or streams
    /// shed, backends degraded, tenants quarantined, or work rejected.
    pub fn is_degraded(&self) -> bool {
        self.points_shed > 0
            || self.points_rejected > 0
            || self.streams_shed > 0
            || self.streams_rejected > 0
            || self.streams_degraded > 0
            || self.streams_quarantined > 0
    }
}

/// Per-tenant observability snapshot (cheap: no restore, no decode).
#[derive(Clone, Copy, Debug)]
#[must_use]
pub struct TenantStats {
    /// The tenant.
    pub stream: StreamId,
    /// Where its state lives right now.
    pub tier: Tier,
    /// Accounted footprint (hot: `approx_bytes`; cold: envelope length;
    /// quarantined: 0 — the poisoned envelope is dropped).
    pub bytes: usize,
    /// Finite points offered (`== ingested + shed`).
    pub seen: u64,
    /// Points fed to the summary.
    pub ingested: u64,
    /// Points dropped by shedding.
    pub shed: u64,
    /// Whether the backend was degraded to the fallback kind.
    pub degraded: bool,
    /// Engine clock at last touch.
    pub last_touch: u64,
}

/// Configuration for a [`TenantEngine`].
#[derive(Clone, Copy, Debug)]
pub struct TenantConfig {
    builder: SummaryBuilder,
    degraded: SummaryBuilder,
    budget_bytes: usize,
    tenant_cap_bytes: usize,
    max_streams: usize,
    idle_ticks: u64,
    policy: OverloadPolicy,
    queue_points: usize,
    event_capacity: usize,
    telemetry: Telemetry,
}

impl TenantConfig {
    /// Governed engine over summaries built by `builder`, with everything
    /// unbounded and [`OverloadPolicy::Reject`] — budget-free by default,
    /// governed once you set caps. The degrade fallback defaults to a
    /// radial histogram at a quarter of the builder's `r` (min 4): the
    /// cheapest backend in this crate that still carries a live `O(D/r)`
    /// error bound.
    pub fn new(builder: SummaryBuilder) -> Self {
        let fallback_r = (builder.r() / 4).max(4);
        TenantConfig {
            builder,
            degraded: SummaryBuilder::new(SummaryKind::Radial).with_r(fallback_r),
            budget_bytes: 0,
            tenant_cap_bytes: 0,
            max_streams: 0,
            idle_ticks: 2,
            policy: OverloadPolicy::Reject,
            queue_points: 0,
            event_capacity: 256,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Global byte budget across all tenants, hot and cold (0 = unbounded).
    pub fn with_budget_bytes(mut self, bytes: usize) -> Self {
        self.budget_bytes = bytes;
        self
    }

    /// Per-tenant byte cap (0 = unbounded).
    pub fn with_tenant_cap_bytes(mut self, bytes: usize) -> Self {
        self.tenant_cap_bytes = bytes;
        self
    }

    /// Maximum registered streams (0 = unbounded).
    pub fn with_max_streams(mut self, n: usize) -> Self {
        self.max_streams = n;
        self
    }

    /// Ticks of idleness before [`TenantEngine::tick`] spills a hot
    /// stream (minimum 1).
    pub fn with_idle_ticks(mut self, ticks: u64) -> Self {
        self.idle_ticks = ticks.max(1);
        self
    }

    /// The overload policy.
    pub fn with_policy(mut self, policy: OverloadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The fallback backend [`OverloadPolicy::DegradeToCoarser`] swaps in.
    pub fn with_degraded(mut self, builder: SummaryBuilder) -> Self {
        self.degraded = builder;
        self
    }

    /// Bounded ingest queue: the most points one
    /// [`TenantEngine::ingest_bulk`] batch may carry (0 = unbounded).
    /// Overflow rejects or sheds oldest-first per the policy
    /// ([`OverloadPolicy::DegradeToCoarser`] treats the queue as advisory
    /// — it relieves memory, not arrival rate).
    pub fn with_queue_points(mut self, points: usize) -> Self {
        self.queue_points = points;
        self
    }

    /// Capacity of the [`PressureReport`] event log.
    pub fn with_event_capacity(mut self, events: usize) -> Self {
        self.event_capacity = events;
        self
    }

    /// Attaches a [`Telemetry`] registry: every [`PressureReport`] tally
    /// is mirrored into `streamhull_tenant_*` counters/gauges (see
    /// [`crate::telemetry::names`]) and every pressure event is emitted
    /// into the trace ring with the engine clock as its tick.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The builder for new tenants.
    pub fn builder(&self) -> &SummaryBuilder {
        &self.builder
    }

    /// The degrade fallback builder.
    pub fn degraded_builder(&self) -> &SummaryBuilder {
        &self.degraded
    }

    /// The global budget (0 = unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The overload policy.
    pub fn policy(&self) -> OverloadPolicy {
        self.policy
    }

    /// The attached telemetry registry (disabled by default).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry
    }
}

/// Registered handles mirroring every [`PressureReport`] tally — one
/// registration at engine construction, relaxed atomic adds afterwards.
#[derive(Clone, Copy, Debug)]
struct TenantInstruments {
    tel: Telemetry,
    streams_admitted: Counter,
    streams_rejected: Counter,
    points_seen: Counter,
    points_ingested: Counter,
    points_shed: Counter,
    points_rejected: Counter,
    evictions: Counter,
    degradations: Counter,
    quarantines: Counter,
    spills: Counter,
    restores: Counter,
    spilled_bytes: Counter,
    events_dropped: Counter,
    bytes_in_use: Gauge,
    bytes_peak: Gauge,
    hot_streams: Gauge,
    cold_streams: Gauge,
    quarantined_streams: Gauge,
}

impl TenantInstruments {
    fn register(tel: Telemetry) -> Self {
        TenantInstruments {
            tel,
            streams_admitted: tel.counter(names::TENANT_STREAMS, &[("outcome", "admitted")]),
            streams_rejected: tel.counter(names::TENANT_STREAMS, &[("outcome", "rejected")]),
            points_seen: tel.counter(names::TENANT_POINTS_SEEN, &[]),
            points_ingested: tel.counter(names::TENANT_POINTS_INGESTED, &[]),
            points_shed: tel.counter(names::TENANT_POINTS_SHED, &[]),
            points_rejected: tel.counter(names::TENANT_POINTS_REJECTED, &[]),
            evictions: tel.counter(names::TENANT_EVICTIONS, &[]),
            degradations: tel.counter(names::TENANT_DEGRADATIONS, &[]),
            quarantines: tel.counter(names::TENANT_QUARANTINES, &[]),
            spills: tel.counter(names::TENANT_TIER_OPS, &[("kind", "spill")]),
            restores: tel.counter(names::TENANT_TIER_OPS, &[("kind", "restore")]),
            spilled_bytes: tel.counter(names::TENANT_TIER_BYTES, &[("kind", "spill")]),
            events_dropped: tel.counter(names::TENANT_EVENTS_DROPPED, &[]),
            bytes_in_use: tel.gauge(names::TENANT_BYTES_IN_USE, &[]),
            bytes_peak: tel.gauge(names::TENANT_BYTES_PEAK, &[]),
            hot_streams: tel.gauge(names::TENANT_HOT_STREAMS, &[]),
            cold_streams: tel.gauge(names::TENANT_COLD_STREAMS, &[]),
            quarantined_streams: tel.gauge(names::TENANT_QUARANTINED_STREAMS, &[]),
        }
    }
}

/// Report values already published to the telemetry registry.
///
/// Counters are monotone but the Reject-policy rollback paths
/// (`unwrite` / `forget_admission`) *decrement* report tallies mid-call,
/// so the engine cannot mirror the ledger site-by-site. Instead it
/// publishes **deltas against this shadow** at the end of every public
/// mutating call — a point where each report field is at or above its
/// last published value again — which keeps every scrape exactly equal
/// to the [`PressureReport`] a caller would take at the same moment.
#[derive(Clone, Copy, Debug, Default)]
struct PublishedTallies {
    streams_admitted: u64,
    streams_rejected: u64,
    streams_shed: u64,
    streams_degraded: u64,
    streams_quarantined: u64,
    points_seen: u64,
    points_ingested: u64,
    points_shed: u64,
    points_rejected: u64,
    spills: u64,
    restores: u64,
    spilled_bytes: u64,
    events_dropped: u64,
    bytes_in_use: i64,
    bytes_peak: i64,
    hot: i64,
    cold: i64,
    quarantined: i64,
}

enum Residency {
    Hot(Box<dyn Mergeable + Send + Sync>),
    Cold(Vec<u8>),
    Quarantined(SnapshotError),
}

impl fmt::Debug for Residency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Residency::Hot(s) => write!(f, "Hot({})", s.name()),
            Residency::Cold(b) => write!(f, "Cold({} B)", b.len()),
            Residency::Quarantined(e) => write!(f, "Quarantined({e})"),
        }
    }
}

#[derive(Debug)]
struct Tenant {
    id: StreamId,
    residency: Residency,
    /// Identity of the live summary *object*: stamped from the engine-wide
    /// monotone counter whenever the slot's summary is created or replaced
    /// (admission, cold→hot restore, write rollback, degradation). The
    /// serving layer keys caches on `(epoch, hull_generation)` — the
    /// generation counter alone may restart when a snapshot round trip or
    /// a rebuild replaces the object, but never within one epoch.
    epoch: u64,
    /// Accounted footprint; kept in lockstep with the engine totals.
    bytes: usize,
    last_touch: u64,
    seen: u64,
    ingested: u64,
    shed: u64,
    degraded: bool,
    /// Error-bound widening carried across degradations and backfills
    /// (sums the donors' bounds at hand-off time).
    carried_bound: f64,
    /// A donor had no bound, so the composed bound is honestly `None`.
    bound_withdrawn: bool,
}

/// The governed multi-tenant engine. See the [module docs](self) for the
/// full contract; in one sentence: millions of per-stream summaries in a
/// slab, under a byte budget that degrades gracefully instead of
/// crashing.
#[derive(Debug)]
pub struct TenantEngine {
    config: TenantConfig,
    /// Slab storage: stable indices, `free` recycles evicted slots.
    slots: Vec<Option<Tenant>>,
    free: Vec<usize>,
    /// Id → slot lookup on every write and every query: keyed FxHash
    /// (see [`crate::fxhash`]) — ~4x cheaper than SipHash on the u64 key,
    /// still per-engine seeded.
    index: HashMap<StreamId, usize, FxBuild>,
    /// Shared frozen direction fans, one per `(r, seed)`.
    fans: HashMap<(u32, u64), Arc<[Vec2]>>,
    /// Shared radial sector tables, one per `r`.
    sectors: HashMap<u32, Arc<[(Vec2, bool)]>>,
    clock: u64,
    /// Source of [`Tenant::epoch`] stamps; see that field for the contract.
    next_epoch: u64,
    bytes_in_use: usize,
    hot: usize,
    cold: usize,
    quarantined: usize,
    report: PressureReport,
    inst: TenantInstruments,
    published: PublishedTallies,
}

impl TenantEngine {
    /// Creates an engine from its configuration.
    pub fn new(config: TenantConfig) -> Self {
        let mut report = PressureReport {
            budget_bytes: config.budget_bytes,
            ..PressureReport::default()
        };
        report.events.reserve(config.event_capacity.min(4096));
        TenantEngine {
            config,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::default(),
            fans: HashMap::new(),
            sectors: HashMap::new(),
            clock: 0,
            next_epoch: 0,
            bytes_in_use: 0,
            hot: 0,
            cold: 0,
            quarantined: 0,
            report,
            inst: TenantInstruments::register(config.telemetry),
            published: PublishedTallies::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// Registered streams (hot + cold + quarantined).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Hot (live in memory) streams.
    pub fn hot_count(&self) -> usize {
        self.hot
    }

    /// Cold (spilled) streams.
    pub fn cold_count(&self) -> usize {
        self.cold
    }

    /// Quarantined streams.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined
    }

    /// Accounted bytes across all tenants (hot summaries at
    /// `approx_bytes`, cold envelopes at their length).
    pub fn bytes_in_use(&self) -> usize {
        self.bytes_in_use
    }

    /// The engine clock (advanced by [`tick`](Self::tick) and once per
    /// [`ingest_bulk`](Self::ingest_bulk) batch).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: StreamId) -> bool {
        self.index.contains_key(&id)
    }

    /// All registered ids (arbitrary order; collect and sort for
    /// deterministic walks).
    pub fn ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.index.keys().copied()
    }

    /// Current tier of `id`, if registered.
    pub fn tier(&self, id: StreamId) -> Option<Tier> {
        let t = self.tenant(id)?;
        Some(match t.residency {
            Residency::Hot(_) => Tier::Hot,
            Residency::Cold(_) => Tier::Cold,
            Residency::Quarantined(_) => Tier::Quarantined,
        })
    }

    /// Per-tenant counters, if registered.
    pub fn stats(&self, id: StreamId) -> Option<TenantStats> {
        let t = self.tenant(id)?;
        Some(TenantStats {
            stream: t.id,
            tier: match t.residency {
                Residency::Hot(_) => Tier::Hot,
                Residency::Cold(_) => Tier::Cold,
                Residency::Quarantined(_) => Tier::Quarantined,
            },
            bytes: t.bytes,
            seen: t.seen,
            ingested: t.ingested,
            shed: t.shed,
            degraded: t.degraded,
            last_touch: t.last_touch,
        })
    }

    /// The report so far, with the live byte gauges filled in.
    pub fn pressure_report(&self) -> PressureReport {
        let mut r = self.report.clone();
        r.bytes_in_use = self.bytes_in_use;
        r.budget_bytes = self.config.budget_bytes;
        r
    }

    /// Feeds one point (registering the stream if new). Non-finite points
    /// are silently dropped — the summaries' own contract.
    pub fn insert(&mut self, id: StreamId, p: Point2) -> Result<(), AdmissionError> {
        self.write(id, &[p])
    }

    /// Feeds a batch into one stream (registering it if new).
    pub fn insert_batch(&mut self, id: StreamId, points: &[Point2]) -> Result<(), AdmissionError> {
        self.write(id, points)
    }

    /// Bulk interleaved ingest: `(stream, point)` traffic in arrival
    /// order. Points are grouped per stream (first-appearance order, so
    /// the outcome is deterministic), the bounded queue policy is applied
    /// up front, and — under a shedding or degrading policy — per-stream
    /// failures (a quarantined tenant, the stream limit) shed that
    /// stream's points instead of failing the batch. Advances the idle
    /// clock by one.
    pub fn ingest_bulk(&mut self, traffic: &[(StreamId, Point2)]) -> Result<(), AdmissionError> {
        let cap = self.config.queue_points;
        let mut start = 0;
        if cap != 0 && traffic.len() > cap {
            match self.config.policy {
                OverloadPolicy::Reject => {
                    // The whole batch is refused atomically.
                    self.report.points_rejected += traffic.len() as u64;
                    self.sync_telemetry();
                    return Err(AdmissionError::QueueFull {
                        offered: traffic.len(),
                        capacity: cap,
                    });
                }
                OverloadPolicy::ShedOldest => {
                    // Shed the oldest points of the batch; tally them on
                    // their tenants (admitting cheaply where possible).
                    start = traffic.len() - cap;
                    let mut shed_by: HashMap<StreamId, u64> = HashMap::new();
                    for &(id, p) in &traffic[..start] {
                        if p.is_finite() {
                            *shed_by.entry(id).or_insert(0) += 1;
                        }
                    }
                    for (id, n) in shed_by {
                        self.shed_points(id, n);
                    }
                }
                // Degrading relieves memory, not arrival rate: take the
                // whole batch.
                OverloadPolicy::DegradeToCoarser => {}
            }
        }
        // Group per stream, preserving first-appearance order.
        let mut order: Vec<StreamId> = Vec::new();
        let mut groups: HashMap<StreamId, Vec<Point2>> = HashMap::new();
        for &(id, p) in &traffic[start..] {
            match groups.entry(id) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(p),
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(id);
                    e.insert(vec![p]);
                }
            }
        }
        for id in order {
            let pts = groups.remove(&id).unwrap_or_default();
            match self.write(id, &pts) {
                Ok(()) => {}
                Err(e) if self.config.policy == OverloadPolicy::Reject => return Err(e),
                Err(_) => {
                    // Shedding/degrading engines never fail a bulk batch:
                    // the failing stream's points are shed and tallied.
                    let n = pts.iter().filter(|p| p.is_finite()).count() as u64;
                    self.shed_points(id, n);
                }
            }
        }
        self.clock += 1;
        self.sync_telemetry();
        Ok(())
    }

    /// Advances the idle clock and spills every hot stream untouched for
    /// [`TenantConfig::with_idle_ticks`] ticks. Cost is one pass over the
    /// slab — call it between batches, not per point.
    pub fn tick(&mut self) {
        self.clock += 1;
        let idle = self.config.idle_ticks;
        let clock = self.clock;
        let victims: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let t = slot.as_ref()?;
                match t.residency {
                    Residency::Hot(_) if clock.saturating_sub(t.last_touch) >= idle => Some(i),
                    _ => None,
                }
            })
            .collect();
        for idx in victims {
            self.spill_slot(idx);
        }
        self.sync_telemetry();
    }

    /// Spills one stream to its snapshot envelope now (idempotent; `false`
    /// if unknown or not hot).
    pub fn spill(&mut self, id: StreamId) -> bool {
        let spilled = match self.index.get(&id) {
            Some(&idx) => self.spill_slot_inner(idx, true),
            None => false,
        };
        self.sync_telemetry();
        spilled
    }

    /// The spilled envelope of a cold stream (`None` when hot, unknown, or
    /// quarantined) — the chaos hooks' read side.
    pub fn spilled_bytes(&self, id: StreamId) -> Option<&[u8]> {
        match &self.tenant(id)?.residency {
            Residency::Cold(bytes) => Some(bytes),
            _ => None,
        }
    }

    /// Deterministic chaos hook: XORs `mask` into byte `offset` of `id`'s
    /// spilled envelope. `false` if the stream is not cold, `offset` is
    /// out of range, or `mask == 0` (a no-op flip would *not* corrupt).
    /// The next touch must then surface a typed decode error and
    /// quarantine exactly this tenant.
    pub fn corrupt_spill(&mut self, id: StreamId, offset: usize, mask: u8) -> bool {
        if mask == 0 {
            return false;
        }
        let Some(&idx) = self.index.get(&id) else {
            return false;
        };
        let Some(Some(t)) = self.slots.get_mut(idx) else {
            return false;
        };
        match &mut t.residency {
            Residency::Cold(bytes) => match bytes.get_mut(offset) {
                Some(b) => {
                    *b ^= mask;
                    true
                }
                None => false,
            },
            _ => false,
        }
    }

    /// Truncates a cold stream's envelope to `len` bytes (chaos hook for
    /// the torn-write case). `false` if not cold or already shorter.
    pub fn truncate_spill(&mut self, id: StreamId, len: usize) -> bool {
        let Some(&idx) = self.index.get(&id) else {
            return false;
        };
        let Some(Some(t)) = self.slots.get_mut(idx) else {
            return false;
        };
        match &mut t.residency {
            Residency::Cold(bytes) if bytes.len() > len => {
                self.bytes_in_use -= bytes.len() - len;
                t.bytes = len;
                bytes.truncate(len);
                self.sync_telemetry();
                true
            }
            _ => false,
        }
    }

    /// Borrows a stream's summary, restoring it from its envelope first if
    /// cold (bit-exact) and touching its idle clock.
    pub fn summary(&mut self, id: StreamId) -> Result<&dyn HullSummary, AdmissionError> {
        let idx = self.lookup(id)?;
        let hot = self.make_hot(idx);
        self.sync_telemetry();
        hot?;
        self.touch(idx);
        match self.slots.get(idx).and_then(|s| s.as_ref()) {
            Some(Tenant {
                residency: Residency::Hot(s),
                ..
            }) => Ok(s.as_ref()),
            _ => Err(AdmissionError::UnknownStream { stream: id }),
        }
    }

    /// A stream's current hull (restores it if cold).
    pub fn hull(&mut self, id: StreamId) -> Result<ConvexPolygon, AdmissionError> {
        Ok(self.summary(id)?.hull())
    }

    /// The stream's cache-validation token: `(epoch, hull_generation)`.
    ///
    /// Two equal tokens guarantee the stream's hull is unchanged; any
    /// hull-affecting mutation advances the generation, and any
    /// replacement of the summary *object* (cold→hot restore, write
    /// rollback, degradation, re-admission after eviction) advances the
    /// epoch — so a restarted generation counter can never alias a stale
    /// token. The hot path is a plain index lookup (no restore, no
    /// telemetry flush); a cold stream is restored first, which itself
    /// bumps the epoch.
    pub fn query_token(&mut self, id: StreamId) -> Result<(u64, u64), AdmissionError> {
        let idx = self.lookup(id)?;
        if let Some(Some(Tenant {
            residency: Residency::Hot(s),
            epoch,
            ..
        })) = self.slots.get(idx)
        {
            let token = (*epoch, s.hull_generation());
            self.touch(idx);
            return Ok(token);
        }
        let hot = self.make_hot(idx);
        self.sync_telemetry();
        hot?;
        self.touch(idx);
        match self.slots.get(idx).and_then(|s| s.as_ref()) {
            Some(Tenant {
                residency: Residency::Hot(s),
                epoch,
                ..
            }) => Ok((*epoch, s.hull_generation())),
            _ => Err(AdmissionError::UnknownStream { stream: id }),
        }
    }

    /// The tenant-facing error bound: the live summary bound plus
    /// everything carried from degradations and backfills — `None` when
    /// either side offers no guarantee (degrading *widens* the bound, it
    /// never invents one).
    pub fn error_bound(&mut self, id: StreamId) -> Result<Option<f64>, AdmissionError> {
        let idx = self.lookup(id)?;
        let hot = self.make_hot(idx);
        self.sync_telemetry();
        hot?;
        match self.slots.get(idx).and_then(|s| s.as_ref()) {
            Some(t) => {
                if t.bound_withdrawn {
                    return Ok(None);
                }
                let own = match &t.residency {
                    Residency::Hot(s) => s.error_bound(),
                    _ => None,
                };
                Ok(own.map(|b| b + t.carried_bound))
            }
            None => Err(AdmissionError::UnknownStream { stream: id }),
        }
    }

    /// Backfills one stream from a point slice through the sharded engine
    /// ([`ShardedIngest`]): shards summarise in parallel, the reduce is
    /// merged into the tenant, and the tenant's carried bound widens by
    /// the run's composed shard + collector bound.
    pub fn backfill_sharded(
        &mut self,
        id: StreamId,
        points: &[Point2],
        shards: usize,
    ) -> Result<(), AdmissionError> {
        let run = ShardedIngest::new(self.config.builder, shards).run(points);
        let bound = match (run.shard_bound_sum(), run.summary.error_bound()) {
            (Some(parts), Some(own)) => Some(parts + own),
            _ => None,
        };
        self.absorb(id, &*run.summary, bound)
    }

    /// Backfills one stream through [`SupervisedIngest`] — checkpointed,
    /// fault-detecting, replay-recovering ingestion at tenant scale. The
    /// run's [`RecoveryReport`] is returned for inspection; its lost
    /// points (if the run degraded) are tallied as shed on the tenant.
    pub fn backfill_supervised(
        &mut self,
        id: StreamId,
        points: &[Point2],
        shards: usize,
        checkpoint_interval: u64,
    ) -> Result<RecoveryReport, AdmissionError> {
        let run = SupervisedIngest::new(ShardedIngest::new(self.config.builder, shards))
            .with_checkpoint_interval(checkpoint_interval)
            .run_stream(points.iter().copied());
        let bound = run.error_bound();
        let lost = run.report.lost_points;
        self.absorb(id, &*run.run.summary, bound)?;
        if lost > 0 {
            self.shed_points(id, lost);
            self.sync_telemetry();
        }
        Ok(run.report)
    }

    /// Merges a finished summary into `id` (registering it if new): the
    /// governed path for adopting shard results or migrated tenants. The
    /// tenant's carried bound widens by `donor_bound` (the donor's own
    /// composed error against its stream), or is withdrawn if `None`.
    pub fn absorb(
        &mut self,
        id: StreamId,
        donor: &dyn Mergeable,
        donor_bound: Option<f64>,
    ) -> Result<(), AdmissionError> {
        let result = self.absorb_inner(id, donor, donor_bound);
        self.sync_telemetry();
        result
    }

    fn absorb_inner(
        &mut self,
        id: StreamId,
        donor: &dyn Mergeable,
        donor_bound: Option<f64>,
    ) -> Result<(), AdmissionError> {
        let idx = self.admit(id)?;
        self.make_hot(idx)?;
        let Some(Some(t)) = self.slots.get_mut(idx) else {
            return Err(AdmissionError::UnknownStream { stream: id });
        };
        if let Residency::Hot(s) = &mut t.residency {
            let before = t.bytes;
            s.merge_from(donor);
            let after = s.approx_bytes();
            t.bytes = after;
            t.seen += donor.points_seen();
            t.ingested += donor.points_seen();
            match donor_bound {
                Some(b) => t.carried_bound += b,
                None => t.bound_withdrawn = true,
            }
            self.bytes_in_use = self.bytes_in_use + after - before;
            self.report.points_seen += donor.points_seen();
            self.report.points_ingested += donor.points_seen();
            self.note_peak();
        }
        self.touch(idx);
        self.enforce_budget(Some(idx))
    }

    /// Exports a set of tenants into a [`MultiStreamTracker`] for pairwise
    /// analytics (separation, containment, overlap). Each summary is
    /// cloned via a snapshot round-trip, so the tracker is independent of
    /// the engine; streams are named by their decimal id.
    pub fn export_tracker(
        &mut self,
        ids: &[StreamId],
    ) -> Result<MultiStreamTracker, AdmissionError> {
        let result = self.export_tracker_inner(ids);
        self.sync_telemetry();
        result
    }

    fn export_tracker_inner(
        &mut self,
        ids: &[StreamId],
    ) -> Result<MultiStreamTracker, AdmissionError> {
        let mut tracker = MultiStreamTracker::new(self.config.builder);
        for &id in ids {
            let idx = self.lookup(id)?;
            self.make_hot(idx)?;
            let encoded = match self.slots.get(idx).and_then(|s| s.as_ref()) {
                Some(Tenant {
                    residency: Residency::Hot(s),
                    ..
                }) => s.encode_snapshot(),
                _ => return Err(AdmissionError::UnknownStream { stream: id }),
            };
            match self.decode_interned(&encoded) {
                Ok(copy) => tracker.adopt_stream(&id.to_string(), copy),
                Err(error) => return Err(AdmissionError::Quarantined { stream: id, error }),
            }
        }
        Ok(tracker)
    }

    /// Drops a stream entirely (any tier — including quarantined, which is
    /// how an operator clears a poisoned tenant). Returns its final stats.
    pub fn remove(&mut self, id: StreamId) -> Option<TenantStats> {
        let stats = self.remove_inner(id);
        self.sync_telemetry();
        stats
    }

    fn remove_inner(&mut self, id: StreamId) -> Option<TenantStats> {
        let stats = self.stats(id)?;
        let idx = self.index.remove(&id)?;
        if let Some(slot) = self.slots.get_mut(idx) {
            if let Some(t) = slot.take() {
                self.bytes_in_use -= t.bytes;
                match t.residency {
                    Residency::Hot(_) => self.hot -= 1,
                    Residency::Cold(_) => self.cold -= 1,
                    Residency::Quarantined(_) => self.quarantined -= 1,
                }
            }
            self.free.push(idx);
        }
        Some(stats)
    }

    // ---- internals -----------------------------------------------------

    fn tenant(&self, id: StreamId) -> Option<&Tenant> {
        let &idx = self.index.get(&id)?;
        self.slots.get(idx)?.as_ref()
    }

    fn lookup(&self, id: StreamId) -> Result<usize, AdmissionError> {
        self.index
            .get(&id)
            .copied()
            .ok_or(AdmissionError::UnknownStream { stream: id })
    }

    fn note_peak(&mut self) {
        if self.bytes_in_use > self.report.bytes_peak {
            self.report.bytes_peak = self.bytes_in_use;
        }
    }

    fn touch(&mut self, idx: usize) {
        let clock = self.clock;
        if let Some(Some(t)) = self.slots.get_mut(idx) {
            t.last_touch = clock;
        }
    }

    /// The next summary-object epoch (engine-wide monotone, never reused
    /// — a re-admitted stream id can't alias an evicted tenant's epoch).
    fn fresh_epoch(&mut self) -> u64 {
        let e = self.next_epoch;
        self.next_epoch += 1;
        e
    }

    /// Publishes the report tallies to the telemetry registry as deltas
    /// against [`PublishedTallies`] (see its docs for why deltas, not
    /// per-site bumps). Called at the end of every public mutating call;
    /// `saturating_sub` keeps an out-of-order call harmless (it publishes
    /// nothing rather than underflowing).
    fn sync_telemetry(&mut self) {
        if !self.inst.tel.is_enabled() {
            return;
        }
        let inst = self.inst;
        let r = &self.report;
        let p = &mut self.published;
        inst.streams_admitted
            .add(r.streams_admitted.saturating_sub(p.streams_admitted));
        inst.streams_rejected
            .add(r.streams_rejected.saturating_sub(p.streams_rejected));
        inst.evictions
            .add(r.streams_shed.saturating_sub(p.streams_shed));
        inst.degradations
            .add(r.streams_degraded.saturating_sub(p.streams_degraded));
        inst.quarantines
            .add(r.streams_quarantined.saturating_sub(p.streams_quarantined));
        inst.points_seen
            .add(r.points_seen.saturating_sub(p.points_seen));
        inst.points_ingested
            .add(r.points_ingested.saturating_sub(p.points_ingested));
        inst.points_shed
            .add(r.points_shed.saturating_sub(p.points_shed));
        inst.points_rejected
            .add(r.points_rejected.saturating_sub(p.points_rejected));
        inst.spills.add(r.spills.saturating_sub(p.spills));
        inst.restores.add(r.restores.saturating_sub(p.restores));
        inst.spilled_bytes
            .add(r.spilled_bytes.saturating_sub(p.spilled_bytes));
        inst.events_dropped
            .add(r.events_dropped.saturating_sub(p.events_dropped));
        p.streams_admitted = r.streams_admitted;
        p.streams_rejected = r.streams_rejected;
        p.streams_shed = r.streams_shed;
        p.streams_degraded = r.streams_degraded;
        p.streams_quarantined = r.streams_quarantined;
        p.points_seen = r.points_seen;
        p.points_ingested = r.points_ingested;
        p.points_shed = r.points_shed;
        p.points_rejected = r.points_rejected;
        p.spills = r.spills;
        p.restores = r.restores;
        p.spilled_bytes = r.spilled_bytes;
        p.events_dropped = r.events_dropped;
        // Gauges publish as deltas too, so a fleet of engines sharing one
        // registry (`ShardedTenants`) sums to the fleet total.
        let bytes = self.bytes_in_use as i64;
        let peak = self.report.bytes_peak as i64;
        let (hot, cold, quarantined) = (self.hot as i64, self.cold as i64, self.quarantined as i64);
        inst.bytes_in_use.add(bytes - p.bytes_in_use);
        inst.bytes_peak.add(peak - p.bytes_peak);
        inst.hot_streams.add(hot - p.hot);
        inst.cold_streams.add(cold - p.cold);
        inst.quarantined_streams.add(quarantined - p.quarantined);
        p.bytes_in_use = bytes;
        p.bytes_peak = peak;
        p.hot = hot;
        p.cold = cold;
        p.quarantined = quarantined;
    }

    fn push_event(&mut self, stream: StreamId, action: PressureAction) {
        // Every event reaches the trace ring (which bounds itself by
        // keeping the newest) even when the report ledger below is full.
        if self.inst.tel.is_enabled() {
            let (name, extra) = match &action {
                PressureAction::Spilled { bytes } => ("spill", ("bytes", *bytes as i64)),
                PressureAction::Restored { bytes } => ("restore", ("bytes", *bytes as i64)),
                PressureAction::ShedPoints { points } => {
                    ("shed_points", ("points", *points as i64))
                }
                PressureAction::Evicted { seen } => ("evict", ("seen", *seen as i64)),
                PressureAction::Degraded { .. } => ("degrade", ("points", 0)),
                PressureAction::Quarantined { .. } => ("quarantine", ("points", 0)),
                PressureAction::Rejected { points } => ("reject", ("points", *points as i64)),
            };
            self.inst.tel.event(
                "tenant",
                name,
                self.clock,
                &[("stream", stream.0 as i64), extra],
            );
        }
        if self.report.events.len() < self.config.event_capacity {
            let tick = self.clock;
            self.report.events.push(PressureEvent {
                stream,
                tick,
                action,
            });
        } else {
            self.report.events_dropped += 1;
        }
    }

    /// Slot of `id`, registering a fresh tenant if new. Respects
    /// `max_streams` (under a shedding policy the coldest tenant makes
    /// room; under `Reject` the registration errors).
    fn admit(&mut self, id: StreamId) -> Result<usize, AdmissionError> {
        if let Some(&idx) = self.index.get(&id) {
            return Ok(idx);
        }
        let limit = self.config.max_streams;
        if limit != 0 && self.index.len() >= limit {
            match self.config.policy {
                OverloadPolicy::Reject => {
                    self.report.streams_rejected += 1;
                    self.push_event(id, PressureAction::Rejected { points: 0 });
                    return Err(AdmissionError::StreamLimit { limit });
                }
                _ => {
                    // Make room: evict the least-recently-touched tenant.
                    if let Some(victim) = self.coldest() {
                        self.evict_slot(victim);
                    }
                }
            }
        }
        let builder = self.config.builder;
        let summary = self.build_summary(&builder);
        let bytes = summary.approx_bytes();
        let epoch = self.fresh_epoch();
        let tenant = Tenant {
            id,
            residency: Residency::Hot(summary),
            epoch,
            bytes,
            last_touch: self.clock,
            seen: 0,
            ingested: 0,
            shed: 0,
            degraded: false,
            carried_bound: 0.0,
            bound_withdrawn: false,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                if let Some(slot) = self.slots.get_mut(i) {
                    *slot = Some(tenant);
                }
                i
            }
            None => {
                self.slots.push(Some(tenant));
                self.slots.len() - 1
            }
        };
        self.index.insert(id, idx);
        self.hot += 1;
        self.bytes_in_use += bytes;
        self.report.streams_admitted += 1;
        self.note_peak();
        Ok(idx)
    }

    /// Builds a summary for `builder`, sharing the frozen fan / radial
    /// sector table (one allocation per configuration, not per stream).
    fn build_summary(&mut self, builder: &SummaryBuilder) -> Box<dyn Mergeable + Send + Sync> {
        match builder.kind() {
            SummaryKind::Frozen => {
                let key = (builder.r(), builder.seed());
                let fan = self
                    .fans
                    .entry(key)
                    .or_insert_with(|| builder.frozen_fan().into())
                    .clone();
                Box::new(FrozenHull::from_shared_units(fan))
            }
            SummaryKind::Radial => {
                let r = builder.r().max(4);
                let table = self
                    .sectors
                    .entry(r)
                    .or_insert_with(|| RadialHull::sector_bounds(r))
                    .clone();
                Box::new(RadialHull::with_shared_bounds(r, table))
            }
            _ => builder.build_mergeable(),
        }
    }

    /// Hardened decode with table re-interning: a restored frozen/radial
    /// summary's private fan or sector table is swapped for the engine's
    /// shared allocation when bit-identical.
    fn decode_interned(
        &mut self,
        bytes: &[u8],
    ) -> Result<Box<dyn Mergeable + Send + Sync>, SnapshotError> {
        match peek_kind(bytes)? {
            Some(SummaryKind::Frozen) => {
                let mut f = FrozenHull::decode(bytes)?;
                for table in self.fans.values() {
                    f.intern_directions(table);
                }
                Ok(Box::new(f))
            }
            Some(SummaryKind::Radial) => {
                let mut h = RadialHull::decode(bytes)?;
                if let Some(table) = self.sectors.get(&h.r()) {
                    h.intern_bounds(table);
                }
                Ok(Box::new(h))
            }
            _ => crate::snapshot::restore_mergeable(bytes),
        }
    }

    /// Hot → cold. `true` if a spill happened.
    fn spill_slot(&mut self, idx: usize) -> bool {
        self.spill_slot_inner(idx, false)
    }

    /// `force: false` refuses counterproductive spills: a tiny summary's
    /// envelope can be *larger* than its live footprint, and an
    /// engine-initiated spill (idle tick, budget relief) that grows
    /// `bytes_in_use` would let a tick breach the budget with no write to
    /// answer for it. The explicit [`TenantEngine::spill`] hook forces the
    /// spill anyway (the chaos tests need a cold envelope to corrupt).
    fn spill_slot_inner(&mut self, idx: usize, force: bool) -> bool {
        let Some(Some(t)) = self.slots.get_mut(idx) else {
            return false;
        };
        let Residency::Hot(s) = &t.residency else {
            return false;
        };
        let envelope = s.encode_snapshot();
        let env_len = envelope.len();
        let freed = t.bytes;
        if !force && env_len >= freed {
            return false;
        }
        t.residency = Residency::Cold(envelope);
        t.bytes = env_len;
        let id = t.id;
        self.hot -= 1;
        self.cold += 1;
        self.bytes_in_use = self.bytes_in_use + env_len - freed;
        self.report.spills += 1;
        self.report.spilled_bytes += env_len as u64;
        self.note_peak();
        self.push_event(id, PressureAction::Spilled { bytes: env_len });
        true
    }

    /// Cold → hot (bit-exact), quarantining the tenant on a failed decode.
    fn make_hot(&mut self, idx: usize) -> Result<(), AdmissionError> {
        let (id, envelope) = match self.slots.get(idx).and_then(|s| s.as_ref()) {
            Some(t) => match &t.residency {
                Residency::Hot(_) => return Ok(()),
                Residency::Quarantined(e) => {
                    return Err(AdmissionError::Quarantined {
                        stream: t.id,
                        error: e.clone(),
                    })
                }
                Residency::Cold(bytes) => (t.id, bytes.clone()),
            },
            None => {
                return Err(AdmissionError::UnknownStream {
                    stream: StreamId(u64::MAX),
                })
            }
        };
        match self.decode_interned(&envelope) {
            Ok(summary) => {
                let live = summary.approx_bytes();
                let epoch = self.fresh_epoch();
                if let Some(Some(t)) = self.slots.get_mut(idx) {
                    t.residency = Residency::Hot(summary);
                    t.epoch = epoch;
                    self.bytes_in_use = self.bytes_in_use + live - t.bytes;
                    t.bytes = live;
                }
                self.cold -= 1;
                self.hot += 1;
                self.report.restores += 1;
                self.note_peak();
                self.push_event(
                    id,
                    PressureAction::Restored {
                        bytes: envelope.len(),
                    },
                );
                Ok(())
            }
            Err(error) => {
                // Quarantine exactly this tenant: drop the poisoned
                // envelope, keep the error, keep serving everyone else.
                if let Some(Some(t)) = self.slots.get_mut(idx) {
                    self.bytes_in_use -= t.bytes;
                    t.bytes = 0;
                    t.residency = Residency::Quarantined(error.clone());
                }
                self.cold -= 1;
                self.quarantined += 1;
                self.report.streams_quarantined += 1;
                self.push_event(
                    id,
                    PressureAction::Quarantined {
                        error: error.clone(),
                    },
                );
                Err(AdmissionError::Quarantined { stream: id, error })
            }
        }
    }

    /// Records `n` finite points offered to `id` as shed (admitting the
    /// tenant best-effort so the per-tenant ledger stays exact).
    fn shed_points(&mut self, id: StreamId, n: u64) {
        if n == 0 {
            return;
        }
        if let Ok(idx) = self.admit(id) {
            if let Some(Some(t)) = self.slots.get_mut(idx) {
                t.seen += n;
                t.shed += n;
            }
        }
        self.report.points_seen += n;
        self.report.points_shed += n;
        self.push_event(id, PressureAction::ShedPoints { points: n });
    }

    /// The single write path behind `insert`/`insert_batch`/`ingest_bulk`:
    /// runs the real write, then publishes the (now settled) ledger to
    /// telemetry — after any Reject-policy rollback, so counters never
    /// see a state the report would later retract.
    fn write(&mut self, id: StreamId, points: &[Point2]) -> Result<(), AdmissionError> {
        let result = self.write_inner(id, points);
        self.sync_telemetry();
        result
    }

    fn write_inner(&mut self, id: StreamId, points: &[Point2]) -> Result<(), AdmissionError> {
        // Non-finite points are silently dropped up front — the same
        // contract every summary honours — so the engine ledger counts
        // finite points only and `seen == ingested + shed` stays exact.
        let finite: Vec<Point2>;
        let points: &[Point2] = if points.iter().all(|p| p.is_finite()) {
            points
        } else {
            finite = points.iter().copied().filter(|p| p.is_finite()).collect();
            &finite
        };
        let n = points.len() as u64;
        // Reject-policy engines gate *before* mutating: once at budget (and
        // spilling cannot relieve), the points are refused, not half-taken.
        if self.config.policy == OverloadPolicy::Reject && self.over_budget() {
            self.spill_coldest_until_under();
            if self.over_budget() {
                self.report.points_rejected += n;
                self.push_event(id, PressureAction::Rejected { points: n });
                return Err(AdmissionError::OverBudget {
                    in_use: self.bytes_in_use,
                    budget: self.config.budget_bytes,
                });
            }
        }
        let was_known = self.index.contains_key(&id);
        let idx = self.admit(id)?;
        // Per-tenant cap gate.
        let cap = self.config.tenant_cap_bytes;
        if cap != 0 {
            let at_cap = match self.slots.get(idx).and_then(|s| s.as_ref()) {
                Some(t) => t.bytes >= cap,
                None => false,
            };
            if at_cap {
                match self.config.policy {
                    OverloadPolicy::Reject => {
                        let bytes = self.slots.get(idx).and_then(|s| s.as_ref());
                        let bytes = bytes.map(|t| t.bytes).unwrap_or(0);
                        self.report.points_rejected += n;
                        self.push_event(id, PressureAction::Rejected { points: n });
                        return Err(AdmissionError::TenantCap {
                            stream: id,
                            bytes,
                            cap,
                        });
                    }
                    OverloadPolicy::ShedOldest => {
                        self.shed_points(id, n);
                        self.touch(idx);
                        return Ok(());
                    }
                    OverloadPolicy::DegradeToCoarser => {
                        self.degrade_slot(idx);
                        let still = match self.slots.get(idx).and_then(|s| s.as_ref()) {
                            Some(t) => t.bytes >= cap,
                            None => false,
                        };
                        if still {
                            self.shed_points(id, n);
                            self.touch(idx);
                            return Ok(());
                        }
                    }
                }
            }
        }
        let was_cold = matches!(
            self.slots
                .get(idx)
                .and_then(|s| s.as_ref())
                .map(|t| &t.residency),
            Some(Residency::Cold(_))
        );
        self.make_hot(idx)?;
        // A Reject-policy engine may only discover the breach *after* the
        // summary absorbed the batch (growth is not predictable up front),
        // so it keeps a pre-write envelope and undoes the whole write —
        // bit-exactly, restores being lossless — when enforcement fails.
        let undo = if self.config.policy == OverloadPolicy::Reject
            && self.config.budget_bytes != 0
            && was_known
        {
            match self.slots.get(idx).and_then(|s| s.as_ref()) {
                Some(t) => match &t.residency {
                    Residency::Hot(s) => Some(s.encode_snapshot()),
                    _ => None,
                },
                None => None,
            }
        } else {
            None
        };
        if let Some(Some(t)) = self.slots.get_mut(idx) {
            if let Residency::Hot(s) = &mut t.residency {
                let before = t.bytes;
                s.insert_batch(points);
                let after = s.approx_bytes();
                t.bytes = after;
                t.seen += n;
                t.ingested += n;
                self.bytes_in_use = self.bytes_in_use + after - before;
            }
        }
        self.touch(idx);
        self.report.points_seen += n;
        self.report.points_ingested += n;
        self.note_peak();
        match self.enforce_budget(Some(idx)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let rolled_back = if was_known {
                    match &undo {
                        Some(envelope) => self.unwrite(idx, envelope, was_cold, n),
                        None => false,
                    }
                } else {
                    self.forget_admission(id, n)
                };
                if rolled_back {
                    Err(AdmissionError::OverBudget {
                        in_use: self.bytes_in_use,
                        budget: self.config.budget_bytes,
                    })
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Undoes one rejected write by restoring the tenant's pre-write
    /// state (bit-exact: the hot summary decoded from the envelope, or
    /// the envelope itself if the tenant was cold before the write) and
    /// withdrawing the write's ledger entries, re-recording the points as
    /// rejected. `false` (nothing undone) only if the pre-write envelope
    /// fails to decode — it was encoded from live state moments ago, so
    /// that path is effectively unreachable, and the engine then keeps
    /// the ingested state rather than corrupt it.
    fn unwrite(&mut self, idx: usize, envelope: &[u8], was_cold: bool, n: u64) -> bool {
        let summary = if was_cold {
            None
        } else {
            match self.decode_interned(envelope) {
                Ok(s) => Some(s),
                Err(_) => return false,
            }
        };
        let epoch = self.fresh_epoch();
        let Some(Some(t)) = self.slots.get_mut(idx) else {
            return false;
        };
        let id = t.id;
        let before = t.bytes;
        let currently_cold = matches!(t.residency, Residency::Cold(_));
        let after = match summary {
            // Hot before the write: back to the decoded pre-write summary.
            Some(s) => {
                if currently_cold {
                    self.cold -= 1;
                    self.hot += 1;
                }
                let after = s.approx_bytes();
                t.residency = Residency::Hot(s);
                t.epoch = epoch;
                after
            }
            // Cold before the write: back to the envelope, so the restore
            // the write forced does not leak footprint past the refusal.
            None => {
                if !currently_cold {
                    self.hot -= 1;
                    self.cold += 1;
                }
                t.residency = Residency::Cold(envelope.to_vec());
                envelope.len()
            }
        };
        t.bytes = after;
        t.seen -= n;
        t.ingested -= n;
        self.bytes_in_use = self.bytes_in_use + after - before;
        self.report.points_seen -= n;
        self.report.points_ingested -= n;
        self.report.points_rejected += n;
        self.push_event(id, PressureAction::Rejected { points: n });
        true
    }

    /// Undoes a rejected write that also admitted `id`: the slot goes away
    /// entirely, so a refused first write leaves no half-admitted tenant.
    fn forget_admission(&mut self, id: StreamId, n: u64) -> bool {
        if self.config.policy != OverloadPolicy::Reject {
            return false;
        }
        // `remove_inner`, not the syncing wrapper: the ledger still holds
        // the tentative write this rollback is about to retract, and a
        // publish here would freeze that overcount into the counters.
        if self.remove_inner(id).is_none() {
            return false;
        }
        self.report.streams_admitted = self.report.streams_admitted.saturating_sub(1);
        self.report.points_seen -= n;
        self.report.points_ingested -= n;
        self.report.points_rejected += n;
        self.push_event(id, PressureAction::Rejected { points: n });
        true
    }

    fn over_budget(&self) -> bool {
        let budget = self.config.budget_bytes;
        budget != 0 && self.bytes_in_use > budget
    }

    /// Spill relief low-water mark: an eighth of hysteresis below the
    /// budget, so relief is not re-triggered by the very next write.
    fn low_water(&self) -> usize {
        let b = self.config.budget_bytes;
        b.saturating_sub(b / 8)
    }

    /// Tenants in coldness order (least-recently-touched first; id breaks
    /// ties, so the order — and everything the governor does — is
    /// deterministic).
    fn coldness_order(&self) -> Vec<usize> {
        let mut order: Vec<(u64, u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|t| (t.last_touch, t.id.0, i)))
            .collect();
        order.sort_unstable();
        order.into_iter().map(|(_, _, i)| i).collect()
    }

    fn coldest(&self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|t| (t.last_touch, t.id.0, i)))
            .min()
            .map(|(_, _, i)| i)
    }

    fn spill_coldest_until_under(&mut self) {
        let target = self.low_water();
        if self.bytes_in_use <= target {
            return;
        }
        for idx in self.coldness_order() {
            if self.bytes_in_use <= target {
                break;
            }
            self.spill_slot(idx);
        }
    }

    fn evict_slot(&mut self, idx: usize) {
        let Some(Some(t)) = self.slots.get_mut(idx) else {
            return;
        };
        let id = t.id;
        let seen = t.seen;
        self.push_event(id, PressureAction::Evicted { seen });
        self.report.streams_shed += 1;
        self.remove_inner(id);
    }

    /// Swaps a tenant's backend for the degrade fallback via an in-memory
    /// merge (sample round-trip), widening — or withdrawing — the carried
    /// bound by the donor's composed bound at hand-off. `true` if the
    /// tenant was degraded by this call.
    fn degrade_slot(&mut self, idx: usize) -> bool {
        let already = match self.slots.get(idx).and_then(|s| s.as_ref()) {
            Some(t) => t.degraded,
            None => true,
        };
        if already || self.make_hot(idx).is_err() {
            return false;
        }
        let fallback = self.config.degraded;
        let mut coarse = self.build_summary(&fallback);
        let epoch = self.fresh_epoch();
        let Some(Some(t)) = self.slots.get_mut(idx) else {
            return false;
        };
        let Residency::Hot(old) = &t.residency else {
            return false;
        };
        let from = old.name();
        let donor_bound = match (old.error_bound(), t.bound_withdrawn) {
            (_, true) => None,
            (Some(b), false) => Some(b + t.carried_bound),
            (None, false) => None,
        };
        coarse.merge_from(&**old);
        let to = coarse.name();
        let before = t.bytes;
        let after = coarse.approx_bytes();
        t.residency = Residency::Hot(coarse);
        t.epoch = epoch;
        t.bytes = after;
        t.degraded = true;
        match donor_bound {
            Some(b) => t.carried_bound = b,
            None => {
                t.carried_bound = 0.0;
                t.bound_withdrawn = true;
            }
        }
        let id = t.id;
        self.bytes_in_use = self.bytes_in_use + after - before;
        self.report.streams_degraded += 1;
        self.note_peak();
        self.push_event(id, PressureAction::Degraded { from, to });
        true
    }

    /// The graceful-degradation ladder, run after every write: spill idle
    /// state first (free — restores are bit-exact), then apply the policy:
    /// `Reject` errors, `ShedOldest` evicts coldest-first, and
    /// `DegradeToCoarser` swaps backends coldest-first, evicting only if
    /// even the fully degraded fleet cannot fit. On success the engine is
    /// at or under budget.
    fn enforce_budget(&mut self, keep: Option<usize>) -> Result<(), AdmissionError> {
        if !self.over_budget() {
            return Ok(());
        }
        self.spill_coldest_until_under();
        if !self.over_budget() {
            return Ok(());
        }
        let target = self.low_water();
        match self.config.policy {
            OverloadPolicy::Reject => Err(AdmissionError::OverBudget {
                in_use: self.bytes_in_use,
                budget: self.config.budget_bytes,
            }),
            OverloadPolicy::ShedOldest => {
                for idx in self.coldness_order() {
                    if self.bytes_in_use <= target {
                        break;
                    }
                    if Some(idx) == keep {
                        continue;
                    }
                    self.evict_slot(idx);
                }
                // Last resort: the active tenant alone exceeds the budget.
                if self.over_budget() {
                    if let Some(idx) = keep {
                        self.evict_slot(idx);
                    }
                }
                Ok(())
            }
            OverloadPolicy::DegradeToCoarser => {
                for idx in self.coldness_order() {
                    if self.bytes_in_use <= target {
                        break;
                    }
                    self.degrade_slot(idx);
                    self.spill_slot(idx);
                }
                if self.over_budget() {
                    // Even the degraded fleet cannot fit: shed.
                    for idx in self.coldness_order() {
                        if self.bytes_in_use <= target {
                            break;
                        }
                        if Some(idx) == keep {
                            continue;
                        }
                        self.evict_slot(idx);
                    }
                    if self.over_budget() {
                        if let Some(idx) = keep {
                            self.evict_slot(idx);
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// SplitMix64 — the workspace's standard seed mixer, here routing stream
/// ids to engine shards.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `N` independent [`TenantEngine`]s with traffic routed by stream-id
/// hash: tenants are disjoint across shards, so bulk ingest fans out onto
/// scoped threads with no cross-shard coordination (the same worker
/// discipline as [`ShardedIngest`]) and
/// every per-shard guarantee — budget, quarantine isolation, exact
/// accounting — holds for the fleet.
#[derive(Debug)]
pub struct ShardedTenants {
    shards: Vec<TenantEngine>,
}

impl ShardedTenants {
    /// `shards` engines (at least 1), each governed by `config`. Note the
    /// budget is **per shard**: a fleet budget `B` over `n` shards is
    /// `config.with_budget_bytes(B / n)`.
    pub fn new(config: TenantConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedTenants {
            shards: (0..shards).map(|_| TenantEngine::new(config)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `id`.
    pub fn shard_of(&self, id: StreamId) -> usize {
        (splitmix64(id.0) % self.shards.len() as u64) as usize
    }

    /// Borrows the engine owning `id`.
    pub fn engine(&self, id: StreamId) -> &TenantEngine {
        &self.shards[self.shard_of(id)]
    }

    /// Mutably borrows the engine owning `id`.
    pub fn engine_mut(&mut self, id: StreamId) -> &mut TenantEngine {
        let s = self.shard_of(id);
        &mut self.shards[s]
    }

    /// All shards, in shard order.
    pub fn engines(&self) -> &[TenantEngine] {
        &self.shards
    }

    /// Total registered streams.
    pub fn len(&self) -> usize {
        self.shards.iter().map(TenantEngine::len).sum()
    }

    /// `true` when no shard holds a stream.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(TenantEngine::is_empty)
    }

    /// Total accounted bytes.
    pub fn bytes_in_use(&self) -> usize {
        self.shards.iter().map(TenantEngine::bytes_in_use).sum()
    }

    /// Routes interleaved traffic to its owning shards and ingests each
    /// shard's slice on its own scoped thread (deterministic: shards own
    /// disjoint tenants and each slice preserves arrival order). Returns
    /// the first shard error in shard order, if any — under shedding /
    /// degrading policies, shards never error.
    pub fn ingest_bulk(&mut self, traffic: &[(StreamId, Point2)]) -> Result<(), AdmissionError> {
        let n = self.shards.len();
        let mut routed: Vec<Vec<(StreamId, Point2)>> = vec![Vec::new(); n];
        for &(id, p) in traffic {
            routed[(splitmix64(id.0) % n as u64) as usize].push((id, p));
        }
        let mut results: Vec<Result<(), AdmissionError>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(routed.iter())
                .map(|(engine, slice)| scope.spawn(move || engine.ingest_bulk(slice)))
                .collect();
            for h in handles {
                results.push(h.join().unwrap_or(Err(AdmissionError::UnknownStream {
                    stream: StreamId(u64::MAX),
                })));
            }
        });
        results.into_iter().collect()
    }

    /// Advances every shard's idle clock (see [`TenantEngine::tick`]).
    pub fn tick(&mut self) {
        for s in &mut self.shards {
            s.tick();
        }
    }

    /// Fleet-wide report: shard tallies summed, event logs concatenated in
    /// shard order (bounded by the sum of the shard caps).
    pub fn pressure_report(&self) -> PressureReport {
        let mut total = PressureReport::default();
        for s in &self.shards {
            let r = s.pressure_report();
            total.budget_bytes += r.budget_bytes;
            total.bytes_in_use += r.bytes_in_use;
            total.bytes_peak += r.bytes_peak;
            total.streams_admitted += r.streams_admitted;
            total.streams_rejected += r.streams_rejected;
            total.streams_shed += r.streams_shed;
            total.streams_degraded += r.streams_degraded;
            total.streams_quarantined += r.streams_quarantined;
            total.points_seen += r.points_seen;
            total.points_ingested += r.points_ingested;
            total.points_shed += r.points_shed;
            total.points_rejected += r.points_rejected;
            total.spills += r.spills;
            total.restores += r.restores;
            total.spilled_bytes += r.spilled_bytes;
            total.events_dropped += r.events_dropped;
            total.events.extend(r.events);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, cx: f64, cy: f64, r: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / n as f64;
                Point2::new(cx + r * t.cos(), cy + r * t.sin())
            })
            .collect()
    }

    fn engine(kind: SummaryKind) -> TenantEngine {
        TenantEngine::new(TenantConfig::new(SummaryBuilder::new(kind).with_r(16)))
    }

    #[test]
    fn ingest_and_query_roundtrip() {
        let mut e = engine(SummaryKind::Adaptive);
        e.insert_batch(StreamId(7), &ring(100, 0.0, 0.0, 2.0))
            .unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.tier(StreamId(7)), Some(Tier::Hot));
        let s = e.stats(StreamId(7)).unwrap();
        assert_eq!(s.seen, 100);
        assert_eq!(s.ingested, 100);
        assert_eq!(s.shed, 0);
        assert!(e.hull(StreamId(7)).unwrap().len() >= 3);
        assert!(e.error_bound(StreamId(7)).unwrap().is_some());
    }

    #[test]
    fn non_finite_points_not_counted() {
        let mut e = engine(SummaryKind::Exact);
        e.insert_batch(
            StreamId(1),
            &[
                Point2::new(0.0, 0.0),
                Point2::new(f64::NAN, 1.0),
                Point2::new(1.0, f64::INFINITY),
                Point2::new(2.0, 2.0),
            ],
        )
        .unwrap();
        let s = e.stats(StreamId(1)).unwrap();
        assert_eq!(s.seen, 2);
        assert_eq!(s.ingested, 2);
    }

    #[test]
    fn shared_tables_one_allocation_per_config() {
        // 50 radial tenants: the sector table is charged to none of them
        // once shared, so per-tenant cost is near the bucket array alone.
        let mut e = engine(SummaryKind::Radial);
        for i in 0..50 {
            e.insert_batch(StreamId(i), &ring(8, i as f64, 0.0, 1.0))
                .unwrap();
        }
        let solo = {
            let h = RadialHull::new(16);
            h.approx_bytes()
        };
        let shared = e.stats(StreamId(0)).unwrap().bytes;
        assert!(
            shared < solo,
            "shared-table tenant ({shared} B) should be cheaper than solo ({solo} B)"
        );
    }

    #[test]
    fn idle_tick_spills_and_restores_bit_exactly() {
        let mut e = engine(SummaryKind::Adaptive);
        let pts = ring(200, 1.0, -2.0, 3.0);
        e.insert_batch(StreamId(1), &pts).unwrap();
        let hull_before = e.hull(StreamId(1)).unwrap();
        let bound_before = e.error_bound(StreamId(1)).unwrap();
        e.tick();
        e.tick();
        assert_eq!(e.tier(StreamId(1)), Some(Tier::Cold));
        let hull_after = e.hull(StreamId(1)).unwrap(); // touch restores
        assert_eq!(e.tier(StreamId(1)), Some(Tier::Hot));
        assert_eq!(hull_before.vertices(), hull_after.vertices());
        let bound_after = e.error_bound(StreamId(1)).unwrap();
        assert_eq!(
            bound_before.map(f64::to_bits),
            bound_after.map(f64::to_bits),
            "restore must be bit-exact"
        );
        let report = e.pressure_report();
        assert_eq!(report.spills, 1);
        assert_eq!(report.restores, 1);
        assert!(!report.is_degraded(), "spill/restore is not degradation");
    }

    #[test]
    fn corrupt_spill_quarantines_only_that_tenant() {
        let mut e = engine(SummaryKind::Uniform);
        for i in 0..10 {
            e.insert_batch(StreamId(i), &ring(50, i as f64, 0.0, 1.0))
                .unwrap();
        }
        assert!(e.spill(StreamId(3)));
        assert!(e.corrupt_spill(StreamId(3), 9, 0xA5));
        let err = e.hull(StreamId(3)).unwrap_err();
        assert!(matches!(err, AdmissionError::Quarantined { stream, .. } if stream == StreamId(3)));
        assert_eq!(e.tier(StreamId(3)), Some(Tier::Quarantined));
        assert_eq!(e.quarantined_count(), 1);
        // Every other tenant keeps serving.
        for i in (0..10).filter(|&i| i != 3) {
            assert!(e.hull(StreamId(i)).unwrap().len() >= 3, "tenant {i}");
        }
        // Further writes to the poisoned tenant stay typed errors.
        assert!(matches!(
            e.insert(StreamId(3), Point2::new(0.0, 0.0)),
            Err(AdmissionError::Quarantined { .. })
        ));
        // An operator can clear it.
        assert!(e.remove(StreamId(3)).is_some());
        assert_eq!(e.quarantined_count(), 0);
        e.insert(StreamId(3), Point2::new(0.0, 0.0)).unwrap();
    }

    #[test]
    fn reject_policy_errors_past_budget() {
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Exact))
            .with_budget_bytes(4096)
            .with_policy(OverloadPolicy::Reject);
        let mut e = TenantEngine::new(config);
        let mut refused = 0u64;
        for i in 0..200 {
            if e.insert_batch(StreamId(i), &ring(40, i as f64 * 10.0, 0.0, 1.0))
                .is_err()
            {
                refused += 1;
            }
        }
        assert!(refused > 0, "a 4 KB budget cannot hold 200 exact tenants");
        let r = e.pressure_report();
        assert!(r.is_degraded());
        assert!(r.points_rejected > 0);
        // Rejected points are not part of the seen ledger.
        assert_eq!(r.points_seen, r.points_ingested + r.points_shed);
    }

    #[test]
    fn shed_policy_never_errors_and_keeps_budget() {
        let budget = 64 * 1024;
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Uniform).with_r(16))
            .with_budget_bytes(budget)
            .with_policy(OverloadPolicy::ShedOldest);
        let mut e = TenantEngine::new(config);
        for i in 0..500 {
            e.insert_batch(StreamId(i), &ring(30, i as f64, 0.0, 1.0))
                .expect("shedding engines never error");
            assert!(
                e.bytes_in_use() <= budget,
                "budget must hold at every checkpoint"
            );
        }
        let r = e.pressure_report();
        assert!(r.streams_shed > 0, "pressure must have shed someone");
        assert_eq!(r.points_seen, r.points_ingested + r.points_shed);
        // Live tenants keep exact per-tenant ledgers.
        for id in e.ids().collect::<Vec<_>>() {
            let s = e.stats(id).unwrap();
            assert_eq!(s.seen, s.ingested + s.shed, "tenant {id}");
        }
    }

    #[test]
    fn degrade_policy_swaps_backend_and_widens_bound() {
        let budget = 48 * 1024;
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(32))
            .with_budget_bytes(budget)
            .with_policy(OverloadPolicy::DegradeToCoarser);
        let mut e = TenantEngine::new(config);
        for i in 0..300 {
            e.insert_batch(StreamId(i), &ring(40, 0.0, 0.0, 2.0))
                .unwrap();
            assert!(e.bytes_in_use() <= budget);
        }
        let r = e.pressure_report();
        assert!(
            r.streams_degraded > 0,
            "pressure must have degraded someone"
        );
        // Find a degraded survivor and check its story is honest.
        let degraded: Vec<StreamId> = e
            .ids()
            .filter(|&id| e.stats(id).map(|s| s.degraded).unwrap_or(false))
            .collect();
        assert!(!degraded.is_empty());
        let id = degraded[0];
        let summary_name = e.summary(id).unwrap().name();
        assert_eq!(summary_name, "radial", "fallback backend took over");
        // An adaptive donor has a bound, so the composed bound survives —
        // wider than a fresh radial bound alone would claim.
        let composed = e.error_bound(id).unwrap();
        assert!(composed.is_some());
    }

    #[test]
    fn frozen_degrade_withdraws_bound() {
        // A frozen donor has no bound, so degrading must *withdraw* the
        // bound, not invent one from the fallback backend.
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Frozen).with_r(16));
        let mut e = TenantEngine::new(config);
        e.insert_batch(StreamId(9), &ring(60, 0.0, 0.0, 1.0))
            .unwrap();
        let idx = e.lookup(StreamId(9)).unwrap();
        assert!(e.degrade_slot(idx));
        assert_eq!(e.summary(StreamId(9)).unwrap().name(), "radial");
        assert_eq!(e.error_bound(StreamId(9)).unwrap(), None);
    }

    #[test]
    fn tenant_cap_gates_single_stream() {
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Exact))
            .with_tenant_cap_bytes(2048)
            .with_policy(OverloadPolicy::Reject);
        let mut e = TenantEngine::new(config);
        let mut hit_cap = false;
        for chunk in 0..200 {
            let pts = ring(50, 0.0, 0.0, 1.0 + chunk as f64);
            match e.insert_batch(StreamId(1), &pts) {
                Ok(()) => {}
                Err(AdmissionError::TenantCap { stream, .. }) => {
                    assert_eq!(stream, StreamId(1));
                    hit_cap = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(
            hit_cap,
            "an exact tenant on growing rings must hit a 2 KB cap"
        );
    }

    #[test]
    fn max_streams_limit() {
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Radial).with_r(8))
            .with_max_streams(3);
        let mut e = TenantEngine::new(config);
        for i in 0..3 {
            e.insert(StreamId(i), Point2::new(i as f64, 0.0)).unwrap();
        }
        assert!(matches!(
            e.insert(StreamId(99), Point2::new(0.0, 0.0)),
            Err(AdmissionError::StreamLimit { limit: 3 })
        ));
        // Under a shedding policy the registry makes room instead.
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Radial).with_r(8))
            .with_max_streams(3)
            .with_policy(OverloadPolicy::ShedOldest);
        let mut e = TenantEngine::new(config);
        for i in 0..5 {
            e.tick();
            e.insert(StreamId(i), Point2::new(i as f64, 0.0)).unwrap();
        }
        assert_eq!(e.len(), 3);
        assert!(!e.contains(StreamId(0)), "coldest tenant made room");
    }

    #[test]
    fn bulk_ingest_groups_and_queues() {
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Exact))
            .with_queue_points(6)
            .with_policy(OverloadPolicy::ShedOldest);
        let mut e = TenantEngine::new(config);
        let traffic: Vec<(StreamId, Point2)> = (0..10)
            .map(|i| (StreamId(i % 2), Point2::new(i as f64, (i * i) as f64)))
            .collect();
        e.ingest_bulk(&traffic).unwrap();
        // 4 oldest points shed, 6 newest ingested; ledger exact.
        let r = e.pressure_report();
        assert_eq!(r.points_shed, 4);
        assert_eq!(r.points_ingested, 6);
        assert_eq!(r.points_seen, 10);
        let a = e.stats(StreamId(0)).unwrap();
        let b = e.stats(StreamId(1)).unwrap();
        assert_eq!(a.seen + b.seen, 10);
        assert_eq!(a.seen, a.ingested + a.shed);
        assert_eq!(b.seen, b.ingested + b.shed);

        // Reject policy refuses the whole over-long batch, atomically.
        let config =
            TenantConfig::new(SummaryBuilder::new(SummaryKind::Exact)).with_queue_points(6);
        let mut e = TenantEngine::new(config);
        assert!(matches!(
            e.ingest_bulk(&traffic),
            Err(AdmissionError::QueueFull {
                offered: 10,
                capacity: 6
            })
        ));
        assert!(e.is_empty());
    }

    #[test]
    fn bulk_ingest_matches_per_stream_ingest() {
        // Interleaved bulk traffic must land bit-identically to the same
        // points fed stream by stream.
        let mut bulk = engine(SummaryKind::Adaptive);
        let mut serial = engine(SummaryKind::Adaptive);
        let mut traffic = Vec::new();
        for i in 0..300usize {
            let id = StreamId((i % 7) as u64);
            let t = i as f64 * 0.1;
            traffic.push((id, Point2::new(t.cos() * (1.0 + i as f64), t.sin())));
        }
        bulk.ingest_bulk(&traffic).unwrap();
        for &(id, p) in &traffic {
            serial.insert(id, p).unwrap();
        }
        for stream in 0..7u64 {
            let id = StreamId(stream);
            let a = bulk.hull(id).unwrap();
            let b = serial.hull(id).unwrap();
            assert_eq!(a.vertices(), b.vertices(), "stream {stream}");
        }
    }

    #[test]
    fn sharded_tenants_route_and_report() {
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Uniform).with_r(8));
        let mut fleet = ShardedTenants::new(config, 4);
        let traffic: Vec<(StreamId, Point2)> = (0..1000)
            .map(|i| {
                let t = i as f64 * 0.05;
                (StreamId(i % 37), Point2::new(t.cos(), t.sin()))
            })
            .collect();
        fleet.ingest_bulk(&traffic).unwrap();
        assert_eq!(fleet.len(), 37);
        let r = fleet.pressure_report();
        assert_eq!(r.points_seen, 1000);
        assert_eq!(r.points_seen, r.points_ingested + r.points_shed);
        // Routing is stable: the owning engine serves the stream.
        let id = StreamId(11);
        assert!(fleet.engine(id).contains(id));
        let hull = fleet.engine_mut(id).hull(id).unwrap();
        assert!(hull.len() >= 3);
    }

    #[test]
    fn absorb_and_backfill_compose_with_sharded_recovery() {
        let pts = ring(5000, 0.0, 0.0, 4.0);
        let mut e = engine(SummaryKind::Adaptive);
        e.backfill_sharded(StreamId(1), &pts, 4).unwrap();
        let report = e.backfill_supervised(StreamId(2), &pts, 2, 1024).unwrap();
        assert_eq!(report.lost_points, 0);
        let s1 = e.stats(StreamId(1)).unwrap();
        assert_eq!(s1.seen, 5000);
        assert_eq!(s1.seen, s1.ingested + s1.shed);
        // Both tenants carry honest (widened) bounds from their backfills.
        assert!(e.error_bound(StreamId(1)).unwrap().is_some());
        assert!(e.error_bound(StreamId(2)).unwrap().is_some());
        let d1 = geom::calipers::diameter(&e.hull(StreamId(1)).unwrap())
            .unwrap()
            .2;
        assert!((d1 - 8.0).abs() < 0.1);
    }

    #[test]
    fn export_tracker_bridges_to_pairwise_queries() {
        let mut e = engine(SummaryKind::Adaptive);
        e.insert_batch(StreamId(1), &ring(200, 0.0, 0.0, 1.0))
            .unwrap();
        e.insert_batch(StreamId(2), &ring(200, 10.0, 0.0, 1.0))
            .unwrap();
        let mut tracker = e.export_tracker(&[StreamId(1), StreamId(2)]).unwrap();
        tracker.refresh();
        assert!(matches!(
            tracker.pair_state("1", "2"),
            crate::queries::PairState::Separated(d) if d > 5.0
        ));
        // The export is a snapshot: mutating the engine does not move it.
        e.insert(StreamId(1), Point2::new(100.0, 0.0)).unwrap();
        assert_eq!(tracker.summary("1").unwrap().points_seen(), 200);
    }

    #[test]
    fn pressure_event_log_is_bounded() {
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Radial).with_r(8))
            .with_event_capacity(5);
        let mut e = TenantEngine::new(config);
        for i in 0..50 {
            e.insert(StreamId(i), Point2::new(i as f64, 0.0)).unwrap();
            e.spill(StreamId(i));
        }
        let r = e.pressure_report();
        assert_eq!(r.events.len(), 5);
        assert!(r.events_dropped > 0);
        assert_eq!(r.spills, 50);
    }

    /// Every `PressureReport` tally must be readable, exactly, from a
    /// telemetry scrape taken at the same moment — including after the
    /// Reject-policy rollback paths and a quarantine.
    #[test]
    fn scrape_mirrors_pressure_report_exactly() {
        let tel = Telemetry::new();
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16))
            .with_policy(OverloadPolicy::ShedOldest)
            .with_budget_bytes(6 * 1024)
            .with_idle_ticks(1)
            .with_event_capacity(4)
            .with_telemetry(tel);
        let mut e = TenantEngine::new(config);
        for i in 0..12u64 {
            e.insert_batch(StreamId(i), &ring(80, i as f64 * 4.0, 0.0, 1.5))
                .unwrap();
            e.tick();
        }
        // Corrupt one cold envelope so the next touch quarantines it.
        let cold = e
            .ids()
            .find(|&id| e.tier(id) == Some(Tier::Cold))
            .expect("idle ticks must have spilled someone");
        assert!(e.corrupt_spill(cold, 12, 0xA5));
        assert!(e.summary(cold).is_err());

        let report = e.pressure_report();
        let scrape = tel.scrape();
        let c = |name: &str| scrape.counter_total(name);
        let g = |name: &str| scrape.gauge_value(name).unwrap_or(0);
        assert_eq!(
            scrape.counter_with(names::TENANT_STREAMS, &[("outcome", "admitted")]),
            Some(report.streams_admitted)
        );
        assert_eq!(c(names::TENANT_POINTS_SEEN), report.points_seen);
        assert_eq!(c(names::TENANT_POINTS_INGESTED), report.points_ingested);
        assert_eq!(c(names::TENANT_POINTS_SHED), report.points_shed);
        assert_eq!(c(names::TENANT_POINTS_REJECTED), report.points_rejected);
        assert_eq!(c(names::TENANT_EVICTIONS), report.streams_shed);
        assert_eq!(c(names::TENANT_DEGRADATIONS), report.streams_degraded);
        assert_eq!(c(names::TENANT_QUARANTINES), report.streams_quarantined);
        assert_eq!(
            scrape.counter_with(names::TENANT_TIER_OPS, &[("kind", "spill")]),
            Some(report.spills)
        );
        assert_eq!(
            scrape.counter_with(names::TENANT_TIER_OPS, &[("kind", "restore")]),
            Some(report.restores)
        );
        assert_eq!(
            scrape.counter_with(names::TENANT_TIER_BYTES, &[("kind", "spill")]),
            Some(report.spilled_bytes)
        );
        assert_eq!(c(names::TENANT_EVENTS_DROPPED), report.events_dropped);
        assert!(report.events_dropped > 0, "capacity 4 must overflow");
        assert_eq!(g(names::TENANT_BYTES_IN_USE), report.bytes_in_use as i64);
        assert_eq!(g(names::TENANT_BYTES_PEAK), report.bytes_peak as i64);
        assert_eq!(g(names::TENANT_HOT_STREAMS), e.hot_count() as i64);
        assert_eq!(g(names::TENANT_COLD_STREAMS), e.cold_count() as i64);
        assert_eq!(
            g(names::TENANT_QUARANTINED_STREAMS),
            e.quarantined_count() as i64
        );
        assert_eq!(report.streams_quarantined, 1);
        // The trace ring carried the pressure narrative (ticks = engine
        // clock, deterministic) even though the ledger overflowed.
        assert!(scrape.events.iter().any(|ev| ev.target == "tenant"));
    }

    /// A fleet of engines sharing one registry sums to the fleet ledger.
    #[test]
    fn sharded_tenants_share_one_registry() {
        let tel = Telemetry::new();
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Radial).with_r(8))
            .with_telemetry(tel);
        let mut fleet = ShardedTenants::new(config, 4);
        let traffic: Vec<(StreamId, Point2)> = (0..400u64)
            .map(|i| {
                (
                    StreamId(i % 23),
                    Point2::new((i % 17) as f64, (i % 13) as f64),
                )
            })
            .collect();
        fleet.ingest_bulk(&traffic).unwrap();
        fleet.tick();
        let report = fleet.pressure_report();
        let scrape = tel.scrape();
        assert_eq!(
            scrape.counter_total(names::TENANT_POINTS_INGESTED),
            report.points_ingested
        );
        assert_eq!(
            scrape.counter_with(names::TENANT_STREAMS, &[("outcome", "admitted")]),
            Some(report.streams_admitted)
        );
        assert_eq!(
            scrape.gauge_value(names::TENANT_BYTES_IN_USE),
            Some(report.bytes_in_use as i64)
        );
    }
}
