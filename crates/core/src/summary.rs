//! The [`HullSummary`] trait: the common interface of every single-pass
//! convex-hull summary in this crate (exact, uniform, adaptive, radial,
//! frozen). Experiment harnesses and queries are written against it.

use geom::{ConvexPolygon, Point2};

/// A single-pass summary of a 2-D point stream that can report (an
/// approximation of) the convex hull of everything it has seen.
pub trait HullSummary {
    /// Feeds one stream point into the summary.
    fn insert(&mut self, p: Point2);

    /// The current (approximate) convex hull. For approximate summaries the
    /// returned polygon's vertices are actual input points, so the polygon
    /// is always *contained in* the true convex hull.
    fn hull(&self) -> ConvexPolygon;

    /// Number of points currently stored by the summary (the paper's
    /// "sample size"; at most `2r + 1` for the adaptive scheme).
    fn sample_size(&self) -> usize;

    /// Total number of stream points consumed so far.
    fn points_seen(&self) -> u64;

    /// Short human-readable name for tables and benchmark labels.
    fn name(&self) -> &'static str;

    /// Feeds a whole stream (convenience).
    fn extend_from<I: IntoIterator<Item = Point2>>(&mut self, it: I)
    where
        Self: Sized,
    {
        for p in it {
            self.insert(p);
        }
    }
}
