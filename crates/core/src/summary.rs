//! The [`HullSummary`] trait family: the common, **object-safe** interface
//! of every single-pass convex-hull summary in this crate (exact, uniform,
//! adaptive, radial, frozen, cluster). Experiment harnesses, the §6 query
//! layer, and the [`SummaryBuilder`](crate::builder::SummaryBuilder) are
//! all written against `dyn HullSummary`.
//!
//! Three pieces:
//!
//! * [`HullSummary`] — the object-safe core: feed points (singly or in
//!   batches), borrow the current hull without cloning ([`hull_ref`]
//!   backed by a generation-counted [`HullCache`]), and introspect size,
//!   throughput, and the live error guarantee ([`error_bound`]);
//! * [`Mergeable`] — the capability of absorbing another summary of the
//!   same logical stream, which is what makes sharded / distributed
//!   ingestion work: shard per gateway, merge at the collector;
//! * [`HullSummaryExt`] — `Sized`-free conveniences (whole-stream feeding
//!   via [`extend_from`]) blanket-implemented for every summary, including
//!   `dyn HullSummary` itself.
//!
//! [`hull_ref`]: HullSummary::hull_ref
//! [`error_bound`]: HullSummary::error_bound
//! [`extend_from`]: HullSummaryExt::extend_from

use core::fmt::Debug;
use geom::{ConvexPolygon, Point2};
use std::sync::{Mutex, OnceLock};

/// Typed rejection returned by [`HullSummary::try_insert`] and
/// [`HullSummary::try_insert_batch`] when an input coordinate is NaN or
/// infinite. The summary is guaranteed untouched: nothing was counted,
/// stored, or invalidated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NonFiniteInput {
    /// Index of the offending point within the rejected input (always 0
    /// for [`HullSummary::try_insert`]).
    pub index: usize,
    /// The offending point, verbatim.
    pub point: Point2,
}

impl core::fmt::Display for NonFiniteInput {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "non-finite input point ({}, {}) at index {}",
            self.point.x, self.point.y, self.index
        )
    }
}

impl std::error::Error for NonFiniteInput {}

/// A single-pass summary of a 2-D point stream that can report (an
/// approximation of) the convex hull of everything it has seen.
///
/// The trait is **object-safe**: every summary kind can be constructed at
/// runtime as a `Box<dyn HullSummary>` (see
/// [`SummaryBuilder`](crate::builder::SummaryBuilder)) and driven through
/// one code path. Iterator-based conveniences live in [`HullSummaryExt`].
///
/// # Non-finite inputs
///
/// A point with a NaN or infinite coordinate has no place on a convex
/// hull: one NaN absorbed into a comparison chain can silently corrupt
/// every later answer. Every summary therefore enforces a single policy:
///
/// * the infallible paths ([`insert`](HullSummary::insert),
///   [`insert_batch`](HullSummary::insert_batch)) **silently drop**
///   non-finite points — they are not stored and not counted in
///   [`points_seen`](HullSummary::points_seen), and the finite points
///   around them are processed normally;
/// * the checked paths ([`try_insert`](HullSummary::try_insert),
///   [`try_insert_batch`](HullSummary::try_insert_batch)) validate the
///   whole input *up front* and reject it with a typed [`NonFiniteInput`]
///   error without mutating anything.
///
/// Both properties are pinned for every backend — loop, batch, windowed,
/// and sharded — by `tests/nan_injection.rs`.
pub trait HullSummary: Debug {
    /// Feeds one stream point into the summary. Non-finite points are
    /// silently dropped (see the trait docs); use
    /// [`try_insert`](HullSummary::try_insert) for a typed rejection.
    fn insert(&mut self, p: Point2);

    /// Feeds a batch of stream points.
    ///
    /// **Contract**: observably identical to inserting each point in order
    /// with [`insert`](HullSummary::insert) — same `points_seen`, same
    /// stored sample, bit-identical [`hull_ref`](HullSummary::hull_ref)
    /// vertices, same [`sample_size`](HullSummary::sample_size) and
    /// [`error_bound`](HullSummary::error_bound). The only permitted
    /// difference is the raw [`hull_generation`](HullSummary::hull_generation)
    /// count: a batch may coalesce its cache invalidations into one
    /// (generation still advances whenever the hull may have changed, and
    /// never advances when it cannot have).
    ///
    /// Every summary in this crate overrides the default per-point loop
    /// with a fast path that amortises per-point work across the chunk
    /// (see `batch.rs` for the soundness arguments):
    ///
    /// * the point-location and chain summaries (`uniform`, `adaptive`,
    ///   `adaptive-2r`, `exact`) and small-fan direction scanners
    ///   (`uniform-naive`, `frozen`) discard provably interior points via
    ///   an **interior certificate** — the inscribed circle of the current
    ///   hull, rebuilt only when the hull changes — turning the per-point
    ///   `O(log r)` point location / `O(r)` scan into two multiplies for
    ///   the common interior case;
    /// * the direction scanners with large fans reduce the chunk by a
    ///   monotone-chain pre-hull — only points on the chunk hull's
    ///   boundary can beat any direction, so the rest are discarded with
    ///   zero per-direction scans;
    /// * every cached-hull summary (including `radial` and `cluster`)
    ///   coalesces its [`HullCache`] invalidations into at most one per
    ///   batch.
    ///
    /// The batch/loop equivalence is property-tested for every
    /// [`SummaryKind`](crate::builder::SummaryKind) in
    /// `tests/proptest_summaries.rs`.
    fn insert_batch(&mut self, points: &[Point2]) {
        for &p in points {
            self.insert(p);
        }
    }

    /// Checked insert: rejects a non-finite point with a typed error and
    /// leaves the summary untouched; otherwise exactly
    /// [`insert`](HullSummary::insert).
    fn try_insert(&mut self, p: Point2) -> Result<(), NonFiniteInput> {
        if !p.is_finite() {
            return Err(NonFiniteInput { index: 0, point: p });
        }
        self.insert(p);
        Ok(())
    }

    /// Checked batch insert: validates the whole slice **before** touching
    /// the summary, so a rejected batch mutates nothing (no partial
    /// ingestion); otherwise exactly
    /// [`insert_batch`](HullSummary::insert_batch).
    fn try_insert_batch(&mut self, points: &[Point2]) -> Result<(), NonFiniteInput> {
        if let Some((index, &point)) = points.iter().enumerate().find(|(_, p)| !p.is_finite()) {
            return Err(NonFiniteInput { index, point });
        }
        self.insert_batch(points);
        Ok(())
    }

    /// Borrows the current (approximate) convex hull. For approximate
    /// summaries the polygon's vertices are actual input points, so the
    /// polygon is always *contained in* the true convex hull.
    ///
    /// Implementations back this with a generation-counted cache
    /// ([`HullCache`]): repeated queries between insertions return the same
    /// polygon without rebuilding or cloning anything.
    fn hull_ref(&self) -> &ConvexPolygon;

    /// The current hull by value (clones the cached polygon). Prefer
    /// [`hull_ref`](HullSummary::hull_ref) on query paths.
    fn hull(&self) -> ConvexPolygon {
        self.hull_ref().clone()
    }

    /// Monotone counter that advances whenever the summarised hull may have
    /// changed. Callers caching derived query results (diameter, width, …)
    /// can skip recomputation while the generation is unchanged.
    fn hull_generation(&self) -> u64;

    /// Number of points currently stored by the summary (the paper's
    /// "sample size"; at most `2r + 1` for the adaptive scheme).
    fn sample_size(&self) -> usize;

    /// Total number of stream points consumed so far.
    fn points_seen(&self) -> u64;

    /// Short human-readable name for tables and benchmark labels.
    fn name(&self) -> &'static str;

    /// The summary's **live** error guarantee, when it has one: an upper
    /// bound on the directed Hausdorff distance from the true convex hull
    /// of everything seen to [`hull_ref`](HullSummary::hull_ref), computed
    /// from the summary's current state.
    ///
    /// * adaptive: `16πP/r²` (Corollary 5.2, `P` the live perimeter);
    /// * uniform / fixed-budget: the largest current uncertainty-triangle
    ///   height (`O(D/r)`, Lemma 3.2);
    /// * radial: `R·sin(2π/r)` with `R` the farthest stored point;
    /// * exact: `0`; frozen / cluster: `None` (no guarantee — that is the
    ///   frozen scheme's entire cautionary point).
    fn error_bound(&self) -> Option<f64> {
        None
    }

    /// Approximate heap footprint of the summary in bytes — the accounting
    /// currency of the multi-tenant layer ([`crate::tenant`]): per-tenant
    /// quotas and the global memory budget are enforced against this
    /// number, so it must be *conservative and cheap*, not
    /// allocator-exact.
    ///
    /// The default charges a fixed struct overhead plus a per-stored-point
    /// rate covering the sample itself and the cached-hull / certificate
    /// slack around it. Backends with structure the sample size does not
    /// reflect (fixed direction fans, sector tables) override it — and
    /// backends whose tables are *shared* across streams (see
    /// [`crate::tenant::TenantEngine`]) stop charging per stream for them.
    fn approx_bytes(&self) -> usize {
        96 + self.sample_size() * 48
    }
}

/// `Sized`-free conveniences over [`HullSummary`], blanket-implemented for
/// every summary *including* `dyn HullSummary` — so whole-stream feeding
/// works through `&mut dyn HullSummary` (the v1 trait's `extend_from`
/// carried a `Self: Sized` bound that made trait-object pipelines
/// impossible).
pub trait HullSummaryExt: HullSummary {
    /// Feeds a whole stream.
    fn extend_from<I: IntoIterator<Item = Point2>>(&mut self, it: I) {
        for p in it {
            self.insert(p);
        }
    }
}

impl<S: HullSummary + ?Sized> HullSummaryExt for S {}

impl<S: HullSummary + ?Sized> HullSummary for Box<S> {
    fn insert(&mut self, p: Point2) {
        (**self).insert(p)
    }
    fn insert_batch(&mut self, points: &[Point2]) {
        (**self).insert_batch(points)
    }
    fn try_insert(&mut self, p: Point2) -> Result<(), NonFiniteInput> {
        (**self).try_insert(p)
    }
    fn try_insert_batch(&mut self, points: &[Point2]) -> Result<(), NonFiniteInput> {
        (**self).try_insert_batch(points)
    }
    fn hull_ref(&self) -> &ConvexPolygon {
        (**self).hull_ref()
    }
    fn hull(&self) -> ConvexPolygon {
        (**self).hull()
    }
    fn hull_generation(&self) -> u64 {
        (**self).hull_generation()
    }
    fn sample_size(&self) -> usize {
        (**self).sample_size()
    }
    fn points_seen(&self) -> u64 {
        (**self).points_seen()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn error_bound(&self) -> Option<f64> {
        (**self).error_bound()
    }
    fn approx_bytes(&self) -> usize {
        (**self).approx_bytes()
    }
}

/// The capability of absorbing another summary built over a *different*
/// part of the same logical stream — distributed aggregation: each shard
/// (sensor gateway, partition worker) keeps its own summary and a
/// collector merges them.
///
/// Merging re-inserts the other summary's stored sample points — each an
/// actual stream point — and carries over the seen-count of the points the
/// other summary consumed but did not store. The merged hull's error
/// against the union stream is at most the sum of the parts' errors plus
/// the collector's own bound (each part's true hull is within its error of
/// its sample, and the samples are then summarised once more).
pub trait Mergeable: HullSummary {
    /// The stored sample points (every one an actual input point).
    fn sample_points(&self) -> Vec<Point2>;

    /// Adds to the seen-points counter without inserting geometry (the
    /// absorbed points were already counted by the other summary).
    fn absorb_seen(&mut self, n: u64);

    /// Serialises the summary with the versioned snapshot codec
    /// ([`crate::snapshot`]): a self-describing envelope any process can
    /// later restore with
    /// [`SummaryBuilder::restore`](crate::builder::SummaryBuilder::restore).
    /// Persistence is part of the distributed-aggregation story this trait
    /// exists for — a shard that can merge but not checkpoint is stuck in
    /// one process.
    fn encode_snapshot(&self) -> Vec<u8>;

    /// Absorbs `other` into `self`. Works across summary kinds: any
    /// mergeable summary can ingest any other's sample.
    fn merge_from(&mut self, other: &dyn Mergeable) {
        let pts = other.sample_points();
        let carried = other.points_seen().saturating_sub(pts.len() as u64);
        self.insert_batch(&pts);
        self.absorb_seen(carried);
    }
}

impl<S: Mergeable + ?Sized> Mergeable for Box<S> {
    fn sample_points(&self) -> Vec<Point2> {
        (**self).sample_points()
    }
    fn absorb_seen(&mut self, n: u64) {
        (**self).absorb_seen(n)
    }
    fn encode_snapshot(&self) -> Vec<u8> {
        (**self).encode_snapshot()
    }
    fn merge_from(&mut self, other: &dyn Mergeable) {
        (**self).merge_from(other)
    }
}

/// A generation-counted lazily rebuilt hull: the storage behind
/// [`HullSummary::hull_ref`].
///
/// Summaries call [`invalidate`](HullCache::invalidate) from `insert` when
/// the sample actually changed, and [`get_or_rebuild`](HullCache::get_or_rebuild)
/// from `hull_ref`; between mutations every query hits the cached polygon.
/// The cache is `Sync` (interior mutability via [`OnceLock`]), so summaries
/// stay shareable across threads for the sharded-ingestion story.
#[derive(Debug, Default)]
pub struct HullCache {
    generation: u64,
    slot: OnceLock<ConvexPolygon>,
}

impl Clone for HullCache {
    fn clone(&self) -> Self {
        let slot = OnceLock::new();
        if let Some(hull) = self.slot.get() {
            let _ = slot.set(hull.clone());
        }
        HullCache {
            generation: self.generation,
            slot,
        }
    }
}

impl HullCache {
    /// An empty cache at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached hull and advances the generation. Call on every
    /// mutation that may change the summarised hull.
    pub fn invalidate(&mut self) {
        self.generation += 1;
        if self.slot.get().is_some() {
            self.slot = OnceLock::new();
        }
    }

    /// Number of invalidations so far (the cache's generation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Returns the cached hull, rebuilding it with `build` if a mutation
    /// invalidated it (or it was never built).
    pub fn get_or_rebuild(&self, build: impl FnOnce() -> ConvexPolygon) -> &ConvexPolygon {
        self.slot.get_or_init(build)
    }

    /// The cached hull, if currently materialised.
    pub fn cached(&self) -> Option<&ConvexPolygon> {
        self.slot.get()
    }
}

/// A tiny generation-keyed value cache for derived query results
/// (`sample_size`, `error_bound`, …) computed from `&self`.
///
/// Summaries answer those queries by recomputing over their whole sample —
/// `O(r log r)` sorts, rebuilding every uncertainty triangle — on *every*
/// call. `GenCache` memoises the answer keyed by the hull generation: while
/// the generation is unchanged the cached value is returned, and the first
/// query after a mutation recomputes once.
///
/// Interior mutability is a `Mutex` so summaries stay `Send + Sync` (the
/// sharded-ingestion story); the lock is uncontended and held only for the
/// copy/compute, which is far cheaper than the recomputation it avoids.
#[derive(Debug, Default)]
pub struct GenCache<T> {
    slot: Mutex<Option<(u64, T)>>,
}

impl<T: Copy> GenCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        GenCache {
            slot: Mutex::new(None),
        }
    }

    /// Returns the value cached for `generation`, computing and storing it
    /// with `compute` on a generation mismatch (or first use).
    pub fn get_or_compute(&self, generation: u64, compute: impl FnOnce() -> T) -> T {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((g, v)) = *slot {
            if g == generation {
                return v;
            }
        }
        let v = compute();
        *slot = Some((generation, v));
        v
    }
}

impl<T: Copy> Clone for GenCache<T> {
    fn clone(&self) -> Self {
        GenCache {
            slot: Mutex::new(*self.slot.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_cache_recomputes_only_on_generation_change() {
        use core::cell::Cell;
        let cache = GenCache::new();
        let computes = Cell::new(0u32);
        let compute = || {
            computes.set(computes.get() + 1);
            computes.get() as usize * 10
        };
        assert_eq!(cache.get_or_compute(0, compute), 10);
        assert_eq!(cache.get_or_compute(0, compute), 10, "cached");
        assert_eq!(computes.get(), 1);
        assert_eq!(cache.get_or_compute(1, compute), 20, "new generation");
        assert_eq!(computes.get(), 2);
        let clone = cache.clone();
        assert_eq!(clone.get_or_compute(1, compute), 20, "clone keeps value");
        assert_eq!(computes.get(), 2);
    }

    #[test]
    fn cache_rebuilds_once_per_generation() {
        use core::cell::Cell;
        let mut cache = HullCache::new();
        let builds = Cell::new(0u32);
        let build = || {
            builds.set(builds.get() + 1);
            ConvexPolygon::hull_of(&[Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)])
        };
        assert_eq!(cache.generation(), 0);
        assert!(cache.cached().is_none());
        let a = cache.get_or_rebuild(build) as *const ConvexPolygon;
        let b = cache.get_or_rebuild(build) as *const ConvexPolygon;
        assert_eq!(a, b, "second query must not rebuild");
        assert_eq!(builds.get(), 1);
        cache.invalidate();
        assert_eq!(cache.generation(), 1);
        assert!(cache.cached().is_none());
        let _ = cache.get_or_rebuild(build);
        assert_eq!(builds.get(), 2);
    }

    #[test]
    fn cache_clone_carries_value_and_generation() {
        let mut cache = HullCache::new();
        cache.invalidate();
        let _ = cache.get_or_rebuild(|| ConvexPolygon::hull_of(&[Point2::new(2.0, 3.0)]));
        let clone = cache.clone();
        assert_eq!(clone.generation(), 1);
        assert_eq!(clone.cached().unwrap().len(), 1);
    }

    #[test]
    fn extend_from_through_trait_object() {
        use crate::exact::ExactHull;
        let mut concrete = ExactHull::new();
        let summary: &mut dyn HullSummary = &mut concrete;
        summary.extend_from((0..10).map(|i| Point2::new(i as f64, (i * i) as f64)));
        assert_eq!(summary.points_seen(), 10);
        assert!(summary.hull_ref().len() >= 3);
    }

    #[test]
    fn insert_batch_matches_insert_loop() {
        use crate::exact::ExactHull;
        let pts: Vec<Point2> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.37;
                Point2::new(t.cos() * 3.0, t.sin() * 2.0)
            })
            .collect();
        let mut one = ExactHull::new();
        for &p in &pts {
            one.insert(p);
        }
        let mut batch: Box<dyn HullSummary> = Box::new(ExactHull::new());
        batch.insert_batch(&pts);
        assert_eq!(one.points_seen(), batch.points_seen());
        assert_eq!(one.hull_ref().vertices(), batch.hull_ref().vertices());
    }
}
