//! The "partially adaptive" hull of the paper's fourth experiment
//! (Table 1, "Changing ellipse"): adaptive sample directions are chosen on
//! a training prefix, then *frozen* — the extrema keep updating but the
//! directions never change. The paper uses it as a cautionary baseline:
//! a direction set tuned to the wrong distribution performs roughly as
//! poorly as plain uniform sampling.

use crate::batch::{incircle, BatchScratch, CertCache, BATCH_LEAF, PREFILTER_MIN_DIRS};
use crate::summary::{GenCache, HullCache, HullSummary, Mergeable};
use geom::{ConvexPolygon, Point2, Vec2};
use std::sync::Arc;

/// A hull summary with an arbitrary *fixed* set of sample directions.
///
/// The fan is immutable for the life of the summary, so it is stored
/// behind an [`Arc`]: a fleet of frozen summaries over the same fan (the
/// multi-tenant engine, [`crate::tenant`]) shares **one** direction-table
/// allocation instead of one per stream.
#[derive(Clone, Debug)]
pub struct FrozenHull {
    dirs: Arc<[Vec2]>,
    extrema: Vec<Point2>,
    /// Cached support values `extrema[i].dot(dirs[i])` (see
    /// [`NaiveUniformHull`](crate::uniform::NaiveUniformHull): same
    /// branch-light scan).
    dots: Vec<f64>,
    seen: u64,
    cache: HullCache,
    distinct: GenCache<usize>,
    scratch: BatchScratch,
}

impl FrozenHull {
    /// Creates a frozen hull from `(direction, initial extremum)` pairs —
    /// typically the output of
    /// [`FixedBudgetAdaptiveHull::directions`](crate::adaptive::fixed_budget::FixedBudgetAdaptiveHull::directions)
    /// after a training phase.
    pub fn from_directions(pairs: Vec<(Vec2, Point2)>) -> Self {
        let (dirs, extrema): (Vec<Vec2>, Vec<Point2>) = pairs.into_iter().unzip();
        let dots = extrema.iter().zip(&dirs).map(|(e, &u)| e.dot(u)).collect();
        FrozenHull {
            dirs: dirs.into(),
            extrema,
            dots,
            seen: 0,
            cache: HullCache::new(),
            distinct: GenCache::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// Creates a frozen hull with the given directions and no extrema yet
    /// (the first point will own all of them).
    pub fn from_units(dirs: Vec<Vec2>) -> Self {
        FrozenHull::from_shared_units(dirs.into())
    }

    /// Like [`FrozenHull::from_units`], but over a direction table owned
    /// elsewhere: every summary built from the same `Arc` shares the one
    /// allocation (and [`HullSummary::approx_bytes`] stops charging for it).
    pub fn from_shared_units(dirs: Arc<[Vec2]>) -> Self {
        FrozenHull {
            dirs,
            extrema: Vec::new(),
            dots: Vec::new(),
            seen: 0,
            cache: HullCache::new(),
            distinct: GenCache::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// Re-points `dirs` at `table` when the two fans are bit-identical —
    /// the restore path of the tenant engine dedupes the per-stream fan a
    /// snapshot necessarily carries back into the shared table. A no-op
    /// (and harmless) on any mismatch.
    pub(crate) fn intern_directions(&mut self, table: &Arc<[Vec2]>) {
        if Arc::ptr_eq(&self.dirs, table) || self.dirs.len() != table.len() {
            return;
        }
        let same = self
            .dirs
            .iter()
            .zip(table.iter())
            .all(|(a, b)| a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits());
        if same {
            self.dirs = table.clone();
        }
    }

    /// Number of fixed directions.
    pub fn direction_count(&self) -> usize {
        self.dirs.len()
    }

    /// The extremum for direction `i` (`None` before the first point when
    /// constructed via [`FrozenHull::from_units`]).
    pub fn extremum(&self, i: usize) -> Option<Point2> {
        self.extrema.get(i).copied()
    }

    /// The `i`-th fixed direction.
    pub fn direction(&self, i: usize) -> Option<Vec2> {
        self.dirs.get(i).copied()
    }

    /// The direction scan without seen/cache bookkeeping; `true` iff any
    /// extremum changed.
    #[inline]
    fn scan(&mut self, p: Point2) -> bool {
        if self.extrema.is_empty() {
            self.extrema = vec![p; self.dirs.len()];
            self.dots = self.dirs.iter().map(|&u| p.dot(u)).collect();
            return true;
        }
        let mut changed = false;
        for ((e, d), u) in self
            .extrema
            .iter_mut()
            .zip(self.dots.iter_mut())
            .zip(self.dirs.iter())
        {
            let nd = p.dot(*u);
            if nd > *d {
                *e = p;
                *d = nd;
                changed = true;
            }
        }
        changed
    }
}

impl FrozenHull {
    /// Snapshot payload: the frozen direction fan (arbitrary unit vectors,
    /// stored bit-exactly — a seed-rotated fan restores without knowing
    /// the seed), the extrema, and the seen count.
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_point, put_u64, put_vec2};
        put_u64(out, self.seen);
        put_u64(out, self.dirs.len() as u64);
        for &d in self.dirs.iter() {
            put_vec2(out, d);
        }
        put_u64(out, self.extrema.len() as u64);
        for &e in &self.extrema {
            put_point(out, e);
        }
    }

    /// Inverse of [`FrozenHull::snapshot_payload`].
    pub(crate) fn from_snapshot_payload(
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let seen = r.u64()?;
        let dir_count = r.count(16)?;
        let mut dirs = Vec::with_capacity(dir_count);
        for _ in 0..dir_count {
            dirs.push(r.vec2()?);
        }
        let ext_count = r.count(16)?;
        if ext_count != 0 && ext_count != dirs.len() {
            return Err(SnapshotError::Malformed("extrema count must be 0 or dirs"));
        }
        let mut extrema = Vec::with_capacity(ext_count);
        for _ in 0..ext_count {
            extrema.push(r.point()?);
        }
        let mut s = if extrema.is_empty() {
            FrozenHull::from_units(dirs)
        } else {
            FrozenHull::from_directions(dirs.into_iter().zip(extrema).collect())
        };
        s.seen = seen;
        Ok(s)
    }
}

impl HullSummary for FrozenHull {
    fn insert(&mut self, p: Point2) {
        // Non-finite points are dropped, not counted (see `HullSummary`).
        if !p.is_finite() {
            return;
        }
        self.seen += 1;
        if self.scan(p) {
            self.cache.invalidate();
        }
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them one
            // by one); recursing on the all-finite remainder preserves the
            // batch == loop equivalence contract.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        if points.len() <= BATCH_LEAF {
            for &p in points {
                self.insert(p);
            }
            return;
        }
        let mut changed = false;
        if self.dirs.len() >= PREFILTER_MIN_DIRS {
            // Large fans: reduce the chunk to its hull-boundary points
            // first (only they can beat any direction — ties included).
            let mut scratch = core::mem::take(&mut self.scratch);
            match scratch.boundary_survivors(points) {
                None => {
                    // Non-finite input: replicate the loop's NaN semantics.
                    for &p in points {
                        self.insert(p);
                    }
                }
                Some(survivors) => {
                    self.seen += points.len() as u64;
                    for &p in survivors {
                        changed |= self.scan(p);
                    }
                }
            }
            self.scratch = scratch;
        } else {
            // Small fans: interior certificate of the hull of extrema (a
            // certified point is strictly dominated in every direction, so
            // the scan would be a no-op; see `batch.rs`).
            let mut cert = CertCache::new(32);
            for &p in points {
                self.seen += 1;
                if cert.covers(p, || incircle(&ConvexPolygon::hull_of(&self.extrema))) {
                    continue;
                }
                if self.scan(p) {
                    changed = true;
                    cert.invalidate();
                }
            }
        }
        if changed {
            self.cache.invalidate();
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| ConvexPolygon::hull_of(&self.extrema))
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.distinct.get_or_compute(self.cache.generation(), || {
            crate::uniform::distinct_points(&self.extrema).len()
        })
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn name(&self) -> &'static str {
        "frozen"
    }

    // `error_bound` stays `None`: a frozen fan tuned to the wrong
    // distribution carries no live guarantee — the paper's Table 1 point.

    fn approx_bytes(&self) -> usize {
        // The fan is charged only when this summary is its sole owner —
        // shared tables cost the fleet one allocation, not one per stream.
        let fan = if Arc::strong_count(&self.dirs) > 1 {
            0
        } else {
            self.dirs.len() * core::mem::size_of::<Vec2>()
        };
        128 + fan
            + self.extrema.len() * core::mem::size_of::<Point2>()
            + self.dots.len() * core::mem::size_of::<f64>()
    }
}

impl Mergeable for FrozenHull {
    fn sample_points(&self) -> Vec<Point2> {
        crate::uniform::distinct_points(&self.extrema)
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::fixed_budget::FixedBudgetAdaptiveHull;

    #[test]
    fn tracks_extrema_in_its_directions() {
        let dirs = vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(-1.0, 0.0),
        ];
        let mut f = FrozenHull::from_units(dirs);
        f.insert(Point2::new(0.0, 0.0));
        f.insert(Point2::new(5.0, 1.0));
        f.insert(Point2::new(-2.0, 7.0));
        assert_eq!(f.extremum(0), Some(Point2::new(5.0, 1.0)));
        assert_eq!(f.extremum(1), Some(Point2::new(-2.0, 7.0)));
        assert_eq!(f.extremum(2), Some(Point2::new(-2.0, 7.0)));
        assert_eq!(f.points_seen(), 3);
    }

    #[test]
    fn freeze_after_training() {
        // Train a fixed-budget hull on a vertical segment cloud, freeze,
        // then feed a horizontal one: the frozen hull should describe the
        // horizontal extent poorly (that is its entire point).
        let mut trainer = FixedBudgetAdaptiveHull::new(8);
        for i in 0..500 {
            let t = i as f64 / 500.0;
            trainer.insert(Point2::new((t * 37.0).sin() * 0.1, t * 20.0 - 10.0));
        }
        let mut frozen = FrozenHull::from_directions(trainer.directions());
        let n_dirs = frozen.direction_count();
        assert!(n_dirs >= 8);
        for i in 0..500 {
            let t = i as f64 / 500.0;
            frozen.insert(Point2::new(t * 40.0 - 20.0, (t * 57.0).sin() * 0.1));
        }
        assert_eq!(frozen.direction_count(), n_dirs, "directions never change");
        // It still sees the x extremes (some direction has positive x
        // component), so the hull diameter is roughly right...
        let d = geom::calipers::diameter(&frozen.hull()).unwrap().2;
        assert!(d > 30.0);
    }

    #[test]
    fn sample_size_deduplicates() {
        let mut f = FrozenHull::from_units(vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 0.1),
            Vec2::new(1.0, -0.1),
        ]);
        f.insert(Point2::new(0.0, 0.0));
        f.insert(Point2::new(10.0, 0.0));
        // One point owns all three directions.
        assert_eq!(f.sample_size(), 1);
    }
}
