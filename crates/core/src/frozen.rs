//! The "partially adaptive" hull of the paper's fourth experiment
//! (Table 1, "Changing ellipse"): adaptive sample directions are chosen on
//! a training prefix, then *frozen* — the extrema keep updating but the
//! directions never change. The paper uses it as a cautionary baseline:
//! a direction set tuned to the wrong distribution performs roughly as
//! poorly as plain uniform sampling.

use crate::summary::{HullCache, HullSummary, Mergeable};
use geom::{ConvexPolygon, Point2, Vec2};

/// A hull summary with an arbitrary *fixed* set of sample directions.
#[derive(Clone, Debug)]
pub struct FrozenHull {
    dirs: Vec<Vec2>,
    extrema: Vec<Point2>,
    seen: u64,
    cache: HullCache,
}

impl FrozenHull {
    /// Creates a frozen hull from `(direction, initial extremum)` pairs —
    /// typically the output of
    /// [`FixedBudgetAdaptiveHull::directions`](crate::adaptive::fixed_budget::FixedBudgetAdaptiveHull::directions)
    /// after a training phase.
    pub fn from_directions(pairs: Vec<(Vec2, Point2)>) -> Self {
        let (dirs, extrema): (Vec<Vec2>, Vec<Point2>) = pairs.into_iter().unzip();
        FrozenHull {
            dirs,
            extrema,
            seen: 0,
            cache: HullCache::new(),
        }
    }

    /// Creates a frozen hull with the given directions and no extrema yet
    /// (the first point will own all of them).
    pub fn from_units(dirs: Vec<Vec2>) -> Self {
        FrozenHull {
            dirs,
            extrema: Vec::new(),
            seen: 0,
            cache: HullCache::new(),
        }
    }

    /// Number of fixed directions.
    pub fn direction_count(&self) -> usize {
        self.dirs.len()
    }

    /// The extremum for direction `i` (`None` before the first point when
    /// constructed via [`FrozenHull::from_units`]).
    pub fn extremum(&self, i: usize) -> Option<Point2> {
        self.extrema.get(i).copied()
    }

    /// The `i`-th fixed direction.
    pub fn direction(&self, i: usize) -> Option<Vec2> {
        self.dirs.get(i).copied()
    }
}

impl HullSummary for FrozenHull {
    fn insert(&mut self, p: Point2) {
        self.seen += 1;
        if self.extrema.is_empty() {
            self.extrema = vec![p; self.dirs.len()];
            self.cache.invalidate();
            return;
        }
        let mut changed = false;
        for (e, u) in self.extrema.iter_mut().zip(&self.dirs) {
            if p.dot(*u) > e.dot(*u) {
                *e = p;
                changed = true;
            }
        }
        if changed {
            self.cache.invalidate();
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| ConvexPolygon::hull_of(&self.extrema))
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        crate::uniform::distinct_points(&self.extrema).len()
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn name(&self) -> &'static str {
        "frozen"
    }

    // `error_bound` stays `None`: a frozen fan tuned to the wrong
    // distribution carries no live guarantee — the paper's Table 1 point.
}

impl Mergeable for FrozenHull {
    fn sample_points(&self) -> Vec<Point2> {
        crate::uniform::distinct_points(&self.extrema)
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::fixed_budget::FixedBudgetAdaptiveHull;

    #[test]
    fn tracks_extrema_in_its_directions() {
        let dirs = vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(-1.0, 0.0),
        ];
        let mut f = FrozenHull::from_units(dirs);
        f.insert(Point2::new(0.0, 0.0));
        f.insert(Point2::new(5.0, 1.0));
        f.insert(Point2::new(-2.0, 7.0));
        assert_eq!(f.extremum(0), Some(Point2::new(5.0, 1.0)));
        assert_eq!(f.extremum(1), Some(Point2::new(-2.0, 7.0)));
        assert_eq!(f.extremum(2), Some(Point2::new(-2.0, 7.0)));
        assert_eq!(f.points_seen(), 3);
    }

    #[test]
    fn freeze_after_training() {
        // Train a fixed-budget hull on a vertical segment cloud, freeze,
        // then feed a horizontal one: the frozen hull should describe the
        // horizontal extent poorly (that is its entire point).
        let mut trainer = FixedBudgetAdaptiveHull::new(8);
        for i in 0..500 {
            let t = i as f64 / 500.0;
            trainer.insert(Point2::new((t * 37.0).sin() * 0.1, t * 20.0 - 10.0));
        }
        let mut frozen = FrozenHull::from_directions(trainer.directions());
        let n_dirs = frozen.direction_count();
        assert!(n_dirs >= 8);
        for i in 0..500 {
            let t = i as f64 / 500.0;
            frozen.insert(Point2::new(t * 40.0 - 20.0, (t * 57.0).sin() * 0.1));
        }
        assert_eq!(frozen.direction_count(), n_dirs, "directions never change");
        // It still sees the x extremes (some direction has positive x
        // component), so the hull diameter is roughly right...
        let d = geom::calipers::diameter(&frozen.hull()).unwrap().2;
        assert!(d > 30.0);
    }

    #[test]
    fn sample_size_deduplicates() {
        let mut f = FrozenHull::from_units(vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 0.1),
            Vec2::new(1.0, -0.1),
        ]);
        f.insert(Point2::new(0.0, 0.0));
        f.insert(Point2::new(10.0, 0.0));
        // One point owns all three directions.
        assert_eq!(f.sample_size(), 1);
    }
}
