//! Runtime construction of hull summaries: [`SummaryKind`] names every
//! summary implementation in the crate and [`SummaryBuilder`] turns a kind
//! plus parameters into a boxed [`HullSummary`] / [`Mergeable`] trait
//! object — "any summary, chosen at runtime".
//!
//! This is what lets the bench harness, the §6 query layer
//! ([`MultiStreamTracker`](crate::queries::MultiStreamTracker)), examples,
//! and tests drive every backend through one code path instead of
//! hand-rolled per-type dispatch. Feed built summaries in chunks via
//! [`insert_batch`](crate::summary::HullSummary::insert_batch) where the
//! stream allows it: every kind overrides it with a batched fast path that
//! is observably identical to the per-point loop but amortises pre-hull
//! filtering, point location, and cache invalidation across the chunk
//! (see the trait docs; the `throughput` bench bin records the win):
//!
//! ```
//! use adaptive_hull::{HullSummary, SummaryBuilder, SummaryKind};
//! use geom::Point2;
//!
//! let mut summaries: Vec<Box<dyn HullSummary + Send + Sync>> = SummaryKind::ALL
//!     .iter()
//!     .map(|&kind| SummaryBuilder::new(kind).with_r(16).build())
//!     .collect();
//! for s in &mut summaries {
//!     s.insert_batch(&[Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)]);
//!     assert_eq!(s.points_seen(), 2);
//! }
//! ```

use crate::adaptive::stream::{AdaptiveHull, AdaptiveHullConfig, QueueKind};
use crate::cluster::{ClusterHull, ClusterHullConfig};
use crate::exact::ExactHull;
use crate::frozen::FrozenHull;
use crate::radial::RadialHull;
use crate::summary::{HullSummary, Mergeable};
use crate::uniform::{NaiveUniformHull, UniformHull};
use crate::FixedBudgetAdaptiveHull;
use core::f64::consts::TAU;
use core::fmt;
use core::str::FromStr;
use geom::Vec2;

/// Every summary implementation in this crate, nameable at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SummaryKind {
    /// [`ExactHull`] — ground truth, not small-space.
    Exact,
    /// [`NaiveUniformHull`] — `O(r)`-per-point FKZ baseline (§3).
    UniformNaive,
    /// [`UniformHull`] — the searchable `O(log r)` structure (§3.1).
    Uniform,
    /// [`RadialHull`] — Cormode–Muthukrishnan radial histogram (§1.2).
    Radial,
    /// [`FrozenHull`] — fixed direction fan ("partially adaptive").
    Frozen,
    /// [`AdaptiveHull`] — the streaming adaptive scheme (§5, the paper's
    /// main result).
    Adaptive,
    /// [`FixedBudgetAdaptiveHull`] — exactly `2r` directions (§7).
    AdaptiveFixedBudget,
    /// [`ClusterHull`] — the §8 / ALENEX'06 shape summary.
    Cluster,
}

impl SummaryKind {
    /// Every kind, in a stable order (for ablations and conformance
    /// sweeps).
    pub const ALL: [SummaryKind; 8] = [
        SummaryKind::Exact,
        SummaryKind::UniformNaive,
        SummaryKind::Uniform,
        SummaryKind::Radial,
        SummaryKind::Frozen,
        SummaryKind::Adaptive,
        SummaryKind::AdaptiveFixedBudget,
        SummaryKind::Cluster,
    ];

    /// Stable lowercase label (also what [`FromStr`] parses).
    pub fn label(self) -> &'static str {
        match self {
            SummaryKind::Exact => "exact",
            SummaryKind::UniformNaive => "uniform-naive",
            SummaryKind::Uniform => "uniform",
            SummaryKind::Radial => "radial",
            SummaryKind::Frozen => "frozen",
            SummaryKind::Adaptive => "adaptive",
            SummaryKind::AdaptiveFixedBudget => "adaptive-2r",
            SummaryKind::Cluster => "cluster",
        }
    }

    /// Whether the kind honours the paper's small-space budgets (`exact`
    /// stores every hull vertex and is the one exception).
    pub fn is_small_space(self) -> bool {
        self != SummaryKind::Exact
    }
}

impl fmt::Display for SummaryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for SummaryKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SummaryKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = SummaryKind::ALL.iter().map(|k| k.label()).collect();
                format!("unknown summary kind {s:?}; expected one of {known:?}")
            })
    }
}

/// Builds any [`SummaryKind`] as a boxed trait object.
///
/// Unused knobs are ignored by kinds that do not need them (`depth` and
/// `queue` only affect the adaptive scheme, `max_clusters` only the
/// cluster summary, `seed` only kinds with randomised structure — today
/// the frozen fan's rotation).
#[derive(Clone, Copy, Debug)]
pub struct SummaryBuilder {
    kind: SummaryKind,
    r: u32,
    depth: Option<u32>,
    queue: QueueKind,
    seed: u64,
    max_clusters: usize,
}

impl SummaryBuilder {
    /// A builder for `kind` with the defaults `r = 16`, paper depth,
    /// heap queue, seed 0, and 4 clusters.
    pub fn new(kind: SummaryKind) -> Self {
        SummaryBuilder {
            kind,
            r: 16,
            depth: None,
            queue: QueueKind::Heap,
            seed: 0,
            max_clusters: 4,
        }
    }

    /// Sets the direction/sector parameter `r`.
    pub fn with_r(mut self, r: u32) -> Self {
        self.r = r;
        self
    }

    /// Sets the refinement-tree height limit (adaptive kinds).
    pub fn with_depth(mut self, depth: u32) -> Self {
        self.depth = Some(depth);
        self
    }

    /// Selects the unrefinement queue (adaptive kind).
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Seed for kinds with randomised structure (frozen fan rotation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cluster budget `k` (cluster kind).
    pub fn with_max_clusters(mut self, k: usize) -> Self {
        self.max_clusters = k;
        self
    }

    /// The kind this builder produces.
    pub fn kind(&self) -> SummaryKind {
        self.kind
    }

    /// The configured `r`.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// The configured refinement-depth override, if any.
    pub fn depth(&self) -> Option<u32> {
        self.depth
    }

    /// The configured unrefinement queue.
    pub fn queue(&self) -> QueueKind {
        self.queue
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured cluster budget.
    pub fn max_clusters(&self) -> usize {
        self.max_clusters
    }

    /// Builds the summary as a plain [`HullSummary`] trait object.
    pub fn build(&self) -> Box<dyn HullSummary + Send + Sync> {
        self.build_mergeable()
    }

    /// The direction fan a [`SummaryKind::Frozen`] build uses: a uniform
    /// fan rotated by a seed-derived phase (the frozen scheme needs *some*
    /// a-priori direction set, and rotating it exercises its sensitivity
    /// to fan placement). Exposed so the tenant engine can compute the fan
    /// once per `(r, seed)` and share it across every stream.
    pub(crate) fn frozen_fan(&self) -> Vec<Vec2> {
        let phase = (self.seed as f64 / u64::MAX as f64) * TAU / self.r as f64;
        (0..self.r)
            .map(|j| Vec2::from_angle(phase + TAU * j as f64 / self.r as f64))
            .collect()
    }

    /// Builds a sliding-window wrapper around this summary configuration:
    /// the window's buckets (and its query collectors) are each built by
    /// this builder, so any kind windows through one code path (see
    /// [`window`](crate::window)).
    pub fn windowed(&self, config: crate::window::WindowConfig) -> crate::window::WindowedSummary {
        crate::window::WindowedSummary::new(*self, config)
    }

    /// Builds the summary with the [`Mergeable`] capability exposed, for
    /// sharded / distributed ingestion (every kind in this crate merges).
    pub fn build_mergeable(&self) -> Box<dyn Mergeable + Send + Sync> {
        match self.kind {
            SummaryKind::Exact => Box::new(ExactHull::new()),
            SummaryKind::UniformNaive => Box::new(NaiveUniformHull::new(self.r)),
            SummaryKind::Uniform => Box::new(UniformHull::new(self.r)),
            SummaryKind::Radial => Box::new(RadialHull::new(self.r)),
            SummaryKind::Frozen => Box::new(FrozenHull::from_units(self.frozen_fan())),
            SummaryKind::Adaptive => Box::new(AdaptiveHull::new(self.adaptive_config())),
            SummaryKind::AdaptiveFixedBudget => Box::new(FixedBudgetAdaptiveHull::new(self.r)),
            SummaryKind::Cluster => Box::new(ClusterHull::new(
                ClusterHullConfig::new(self.max_clusters).with_r(self.r),
            )),
        }
    }

    /// Reconstructs a summary from a snapshot produced by
    /// [`Snapshot::encode`](crate::snapshot::Snapshot::encode) or
    /// [`Mergeable::encode_snapshot`],
    /// choosing the backend from the envelope's kind tag alone — the
    /// restore side of checkpointing, crash recovery, and cross-process
    /// shard shipping:
    ///
    /// ```
    /// use adaptive_hull::{Mergeable, SummaryBuilder, SummaryKind};
    /// use geom::Point2;
    ///
    /// let mut original = SummaryBuilder::new(SummaryKind::Adaptive).with_r(16).build_mergeable();
    /// original.insert_batch(&[Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)]);
    /// let bytes = original.encode_snapshot();           // checkpoint …
    /// let restored = SummaryBuilder::restore(&bytes).unwrap(); // … recover
    /// assert_eq!(restored.name(), "adaptive");
    /// assert_eq!(restored.points_seen(), 2);
    /// assert_eq!(restored.hull_ref().vertices(), original.hull_ref().vertices());
    /// ```
    ///
    /// Corrupted, truncated, or version-skewed bytes yield a typed
    /// [`SnapshotError`](crate::snapshot::SnapshotError) — never a panic.
    /// Windowed snapshots are not plain summaries; decode those with
    /// [`WindowedSummary::decode`](crate::snapshot::Snapshot::decode).
    pub fn restore(
        bytes: &[u8],
    ) -> Result<Box<dyn Mergeable + Send + Sync>, crate::snapshot::SnapshotError> {
        crate::snapshot::restore_mergeable(bytes)
    }

    /// Snapshot payload of the builder itself (embedded in windowed
    /// snapshots so a restored chain builds future buckets and query
    /// collectors identically).
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{kind_tag, put_u32, put_u64, put_u8};
        put_u8(out, kind_tag(self.kind));
        put_u32(out, self.r);
        put_u8(out, self.depth.is_some() as u8);
        put_u32(out, self.depth.unwrap_or(0));
        put_u8(
            out,
            match self.queue {
                QueueKind::Heap => 0,
                QueueKind::Bucket => 1,
            },
        );
        put_u64(out, self.seed);
        put_u64(out, self.max_clusters as u64);
    }

    /// Inverse of [`SummaryBuilder::snapshot_payload`].
    pub(crate) fn from_snapshot_payload(
        reader: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let tag = reader.u8()?;
        let kind = *SummaryKind::ALL
            .get(tag as usize)
            .ok_or(SnapshotError::Malformed("unknown builder kind"))?;
        let r = reader.u32()?;
        let has_depth = reader.u8()? != 0;
        let depth = reader.u32()?;
        let queue = match reader.u8()? {
            0 => QueueKind::Heap,
            1 => QueueKind::Bucket,
            _ => return Err(SnapshotError::Malformed("unknown queue kind")),
        };
        let seed = reader.u64()?;
        let max_clusters = reader.u64()? as usize;
        if r < 4 || max_clusters < 1 {
            return Err(SnapshotError::Malformed("invalid builder parameters"));
        }
        let adaptive_kind = matches!(
            kind,
            SummaryKind::Adaptive | SummaryKind::AdaptiveFixedBudget | SummaryKind::Cluster
        );
        if adaptive_kind && (!r.is_power_of_two() || !(8..=1 << 20).contains(&r)) {
            return Err(SnapshotError::Malformed(
                "adaptive kinds need power-of-two r >= 8",
            ));
        }
        if has_depth && depth > 32 {
            return Err(SnapshotError::Malformed("depth exceeds the grid limit"));
        }
        Ok(SummaryBuilder {
            kind,
            r,
            depth: has_depth.then_some(depth),
            queue,
            seed,
            max_clusters,
        })
    }

    fn adaptive_config(&self) -> AdaptiveHullConfig {
        let mut config = AdaptiveHullConfig::new(self.r).with_queue(self.queue);
        if let Some(depth) = self.depth {
            config = config.with_depth(depth);
        }
        config
    }
}

impl From<AdaptiveHullConfig> for SummaryBuilder {
    /// An adaptive-kind builder carrying the config's `r`, depth, and
    /// queue.
    fn from(config: AdaptiveHullConfig) -> Self {
        let mut b = SummaryBuilder::new(SummaryKind::Adaptive)
            .with_r(config.r)
            .with_queue(config.queue);
        if let Some(depth) = config.depth {
            b = b.with_depth(depth);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::HullSummaryExt;
    use geom::Point2;

    fn spiral(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = 2.399963229728653 * i as f64;
                let rad = 1.0 + 0.01 * i as f64;
                Point2::new(rad * t.cos(), rad * t.sin())
            })
            .collect()
    }

    #[test]
    fn every_kind_builds_and_ingests() {
        let pts = spiral(500);
        for &kind in &SummaryKind::ALL {
            let mut s = SummaryBuilder::new(kind).with_r(16).build();
            s.insert_batch(&pts);
            assert_eq!(s.points_seen(), 500, "{kind}");
            assert_eq!(s.name(), kind.label(), "{kind}");
            assert!(s.hull_ref().len() >= 3, "{kind}");
        }
    }

    #[test]
    fn batched_ingestion_matches_per_point_loop_for_every_kind() {
        // Deterministic spot check of the insert_batch contract across the
        // registry (the heavy randomised version lives in
        // tests/proptest_summaries.rs): identical hull, sample size, seen
        // count, and error bound for chunked vs per-point feeding.
        let mut pts = spiral(400);
        // Interior-heavy tail so the skip/pre-hull fast paths engage.
        pts.extend((0..800).map(|i| {
            let t = i as f64 * 0.618;
            Point2::new(t.cos() * 2.0, t.sin() * 2.0)
        }));
        for &kind in &SummaryKind::ALL {
            let builder = SummaryBuilder::new(kind).with_r(16);
            let mut one = builder.build();
            for &p in &pts {
                one.insert(p);
            }
            let mut batched = builder.build();
            for chunk in pts.chunks(97) {
                batched.insert_batch(chunk);
            }
            assert_eq!(one.points_seen(), batched.points_seen(), "{kind}");
            assert_eq!(one.sample_size(), batched.sample_size(), "{kind}");
            assert_eq!(
                one.hull_ref().vertices(),
                batched.hull_ref().vertices(),
                "{kind}"
            );
            assert_eq!(one.error_bound(), batched.error_bound(), "{kind}");
        }
    }

    #[test]
    fn labels_round_trip_through_fromstr() {
        for &kind in &SummaryKind::ALL {
            assert_eq!(kind.label().parse::<SummaryKind>().unwrap(), kind);
        }
        assert!("no-such-kind".parse::<SummaryKind>().is_err());
    }

    #[test]
    fn every_kind_merges() {
        let pts = spiral(600);
        let (a, b) = pts.split_at(300);
        for &kind in &SummaryKind::ALL {
            let builder = SummaryBuilder::new(kind).with_r(16);
            let mut left = builder.build_mergeable();
            let mut right = builder.build_mergeable();
            left.insert_batch(a);
            right.insert_batch(b);
            left.merge_from(&right);
            assert_eq!(left.points_seen(), 600, "{kind}");
        }
    }

    #[test]
    fn extend_from_works_on_built_objects() {
        let mut s = SummaryBuilder::new(SummaryKind::Adaptive).with_r(8).build();
        let dyn_ref: &mut dyn HullSummary = &mut *s;
        dyn_ref.extend_from(spiral(100));
        assert_eq!(s.points_seen(), 100);
        assert!(s.sample_size() <= 17);
    }

    #[test]
    fn builder_from_adaptive_config() {
        let b: SummaryBuilder = AdaptiveHullConfig::new(32).with_depth(3).into();
        assert_eq!(b.kind(), SummaryKind::Adaptive);
        assert_eq!(b.r(), 32);
        let mut s = b.build();
        s.insert_batch(&spiral(200));
        assert!(s.sample_size() <= 65);
    }

    #[test]
    fn built_summaries_are_sendable() {
        let pts = spiral(200);
        let mut s = SummaryBuilder::new(SummaryKind::Adaptive).with_r(8).build();
        let handle = std::thread::spawn(move || {
            s.insert_batch(&pts);
            s.points_seen()
        });
        assert_eq!(handle.join().unwrap(), 200);
    }
}
