//! Versioned snapshot/restore for every summary backend: a
//! self-describing, dependency-free binary codec that turns any summary
//! into durable, portable bytes — checkpoint a shard, ship it over the
//! wire, recover after a crash, or reduce shards produced on different
//! machines ([`ShardedIngest::merge_snapshots`](crate::parallel::ShardedIngest::merge_snapshots)).
//!
//! The paper's "small mergeable state" property is exactly what makes this
//! cheap: a snapshot is the summary's own `O(r)` sample plus bookkeeping,
//! never the stream.
//!
//! # Wire format
//!
//! Every snapshot is one *envelope*:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"HSNP"` |
//! | 4      | 2    | format version (`u16` LE, currently 1) |
//! | 6      | 1    | kind tag (index into [`SummaryKind::ALL`], or 8 = windowed) |
//! | 7      | 1    | reserved (0) |
//! | 8      | 8    | payload length (`u64` LE) |
//! | 16     | len  | kind-specific payload |
//! | 16+len | 8    | FNV-1a 64 checksum of everything before it (`u64` LE) |
//!
//! All integers are little-endian; points, vectors and polygons use the
//! raw [`geom`] wire helpers ([`Point2::to_le_bytes`],
//! [`ConvexPolygon::encode_raw`](geom::ConvexPolygon::encode_raw)), so
//! `f64` payloads round-trip bit-exactly (including signed zeros and the
//! non-finite values some backends legitimately store).
//!
//! # Guarantees
//!
//! * **Round trip**: `decode(encode(s))` reconstructs a summary whose
//!   subsequent `hull_ref` / `error_bound` / `insert` behaviour is
//!   bit-identical to `s` continuing in-process (property-tested for all
//!   eight [`SummaryKind`]s and for
//!   [`WindowedSummary`](crate::window::WindowedSummary) chains in
//!   `tests/failure_injection.rs`). Only the observable-but-incidental
//!   [`hull_generation`](crate::summary::HullSummary::hull_generation)
//!   counter may restart — the same licence the batched-ingestion
//!   contract already grants.
//! * **Hardened decode**: truncated, bit-flipped, version-skewed or
//!   kind-swapped input yields a typed [`SnapshotError`], never a panic.
//!   The FNV-1a checksum provably detects every single-byte corruption
//!   (each step `h ← (h ⊕ b)·p` is invertible, so a changed byte always
//!   changes the digest), and payload readers bounds-check and
//!   re-validate every structural invariant before constructing a
//!   summary.
//!
//! # Entry points
//!
//! * [`Snapshot::encode`] / [`Snapshot::decode`] on each concrete type;
//! * [`Mergeable::encode_snapshot`] on trait objects;
//! * [`SummaryBuilder::restore`](crate::builder::SummaryBuilder::restore)
//!   to reconstruct the right backend from the tag alone.

use crate::builder::SummaryKind;
use crate::summary::Mergeable;
use core::fmt;
use geom::{ConvexPolygon, Point2, Vec2};

/// Envelope magic bytes.
pub const MAGIC: [u8; 4] = *b"HSNP";

/// Current (and only) snapshot format version.
pub const FORMAT_VERSION: u16 = 1;

/// Kind tag for [`WindowedSummary`](crate::window::WindowedSummary)
/// snapshots (the eight summary backends use their [`SummaryKind::ALL`]
/// index, 0–7).
pub const WINDOWED_TAG: u8 = 8;

/// Kind tag for supervised-ingestion checkpoint envelopes: a summary (or
/// windowed) snapshot wrapped with the shard id and tick it covers, so a
/// recovering supervisor can verify *whose* state it is restoring and
/// where on the shared clock to resume (see [`crate::recovery`]).
pub const CHECKPOINT_TAG: u8 = 9;

/// Why a snapshot failed to decode. Decoding never panics: every failure
/// mode of untrusted bytes maps to one of these.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// Input shorter than the fixed envelope (header + checksum).
    TooShort {
        /// Minimum bytes an envelope needs.
        needed: usize,
        /// Bytes actually provided.
        got: usize,
    },
    /// The first four bytes are not the snapshot magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The recorded payload length disagrees with the input length.
    LengthMismatch {
        /// Total envelope size the header implies.
        expected: usize,
        /// Bytes actually provided.
        got: usize,
    },
    /// The checksum does not match: the bytes were corrupted in flight.
    ChecksumMismatch,
    /// The kind tag names no known backend (likely a newer library wrote
    /// it).
    UnknownKind(u8),
    /// The envelope is valid but holds a different kind than the caller
    /// asked to decode.
    KindMismatch {
        /// Kind the caller tried to decode.
        expected: &'static str,
        /// Kind the envelope actually holds.
        found: &'static str,
    },
    /// The payload is structurally invalid for its kind (version-skewed or
    /// hand-crafted input that passed the checksum).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort { needed, got } => {
                write!(
                    f,
                    "snapshot too short: need at least {needed} bytes, got {got}"
                )
            }
            SnapshotError::BadMagic => write!(f, "not a summary snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            SnapshotError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot length mismatch: header implies {expected} bytes, got {got}"
                )
            }
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (corrupted bytes)")
            }
            SnapshotError::UnknownKind(tag) => write!(f, "unknown summary kind tag {tag}"),
            SnapshotError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected}, found {found}"
                )
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64 over `bytes`. Dependency-free; every single-byte corruption
/// is detected because each round is an invertible map of the running
/// digest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;
/// Smallest possible envelope (header + checksum, empty payload).
const MIN_ENVELOPE: usize = HEADER_LEN + CHECKSUM_LEN;

/// Wraps `payload` in a sealed envelope carrying `tag`.
pub(crate) fn seal(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MIN_ENVELOPE + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(tag);
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates the envelope and returns `(kind tag, payload)`.
pub(crate) fn open(bytes: &[u8]) -> Result<(u8, &[u8]), SnapshotError> {
    if bytes.len() < MIN_ENVELOPE {
        return Err(SnapshotError::TooShort {
            needed: MIN_ENVELOPE,
            got: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let tag = bytes[6];
    let len = le_u64(&bytes[8..16]);
    let expected =
        (len as usize)
            .checked_add(MIN_ENVELOPE)
            .ok_or(SnapshotError::LengthMismatch {
                expected: usize::MAX,
                got: bytes.len(),
            })?;
    if bytes.len() != expected {
        return Err(SnapshotError::LengthMismatch {
            expected,
            got: bytes.len(),
        });
    }
    let body = &bytes[..expected - CHECKSUM_LEN];
    let stored = le_u64(&bytes[expected - CHECKSUM_LEN..]);
    if fnv1a64(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok((tag, &bytes[HEADER_LEN..expected - CHECKSUM_LEN]))
}

/// Human-readable name for a kind tag (error messages).
fn tag_name(tag: u8) -> &'static str {
    if tag == WINDOWED_TAG {
        "windowed"
    } else if tag == CHECKPOINT_TAG {
        "checkpoint"
    } else {
        SummaryKind::ALL
            .get(tag as usize)
            .map(|k| k.label())
            .unwrap_or("unknown")
    }
}

/// Copies the first 8 bytes of `b` into a `u64` (callers guarantee the
/// slice is at least that long via the envelope length checks).
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// The stable wire tag of a [`SummaryKind`] (its index in
/// [`SummaryKind::ALL`]; the exhaustive match is pinned against `ALL` by
/// the `tags_match_all_order` test so neither can drift).
pub fn kind_tag(kind: SummaryKind) -> u8 {
    match kind {
        SummaryKind::Exact => 0,
        SummaryKind::UniformNaive => 1,
        SummaryKind::Uniform => 2,
        SummaryKind::Radial => 3,
        SummaryKind::Frozen => 4,
        SummaryKind::Adaptive => 5,
        SummaryKind::AdaptiveFixedBudget => 6,
        SummaryKind::Cluster => 7,
    }
}

// ---------------------------------------------------------------------
// Checkpoint envelopes (shard id + tick metadata around a snapshot)
// ---------------------------------------------------------------------

/// A validated checkpoint envelope: which shard it belongs to, the tick
/// (cumulative points the shard had ingested — on windowed runs this is
/// also the shard's position on the shared tick clock), and the inner
/// snapshot bytes, themselves a complete sealed envelope readable by
/// [`SummaryBuilder::restore`](crate::builder::SummaryBuilder::restore)
/// or [`Snapshot::decode`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointEnvelope<'a> {
    /// Shard the checkpointed state belongs to.
    pub shard: u64,
    /// Points the shard had ingested when the checkpoint was taken; a
    /// restart resumes the shared clock from here.
    pub tick: u64,
    /// The wrapped snapshot (a sealed envelope in its own right).
    pub snapshot: &'a [u8],
}

/// Seals `snapshot` (an already-sealed summary or windowed envelope) into
/// a checkpoint envelope carrying the owning shard and its tick.
pub fn seal_checkpoint(shard: u64, tick: u64, snapshot: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + 8 + snapshot.len());
    put_u64(&mut payload, shard);
    put_u64(&mut payload, tick);
    put_bytes(&mut payload, snapshot);
    seal(CHECKPOINT_TAG, &payload)
}

/// Validates a checkpoint envelope and returns its metadata plus the
/// inner snapshot bytes. The inner snapshot is length-checked here but
/// only fully validated by whoever decodes it — a recovering supervisor
/// does both before trusting a checkpoint. Never panics.
pub fn open_checkpoint(bytes: &[u8]) -> Result<CheckpointEnvelope<'_>, SnapshotError> {
    let (tag, payload) = open(bytes)?;
    if tag != CHECKPOINT_TAG {
        return Err(SnapshotError::KindMismatch {
            expected: "checkpoint",
            found: tag_name(tag),
        });
    }
    let mut r = Reader::new(payload);
    let shard = r.u64()?;
    let tick = r.u64()?;
    let snapshot = r.bytes()?;
    r.finish()?;
    Ok(CheckpointEnvelope {
        shard,
        tick,
        snapshot,
    })
}

// ---------------------------------------------------------------------
// Payload writer/reader helpers (crate-internal)
// ---------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_point(out: &mut Vec<u8>, p: Point2) {
    out.extend_from_slice(&p.to_le_bytes());
}

pub(crate) fn put_vec2(out: &mut Vec<u8>, v: Vec2) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Bounds-checked cursor over a validated payload. Runs past the end only
/// on version-skewed or hand-crafted input (the checksum already passed),
/// which every method reports as [`SnapshotError::Malformed`].
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole payload was consumed (catches skewed
    /// payloads that parse as a prefix).
    pub(crate) fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing payload bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Malformed("payload ends early"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let mut a = [0u8; 4];
        a.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(a))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(le_u64(self.take(8)?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(le_u64(self.take(8)?)))
    }

    pub(crate) fn point(&mut self) -> Result<Point2, SnapshotError> {
        let mut a = [0u8; 16];
        a.copy_from_slice(self.take(16)?);
        Ok(Point2::from_le_bytes(a))
    }

    pub(crate) fn vec2(&mut self) -> Result<Vec2, SnapshotError> {
        let mut a = [0u8; 16];
        a.copy_from_slice(self.take(16)?);
        Ok(Vec2::from_le_bytes(a))
    }

    /// A `u64` count that must be storable as `usize` and plausible for a
    /// payload where each counted element occupies at least `min_elem_size`
    /// bytes — rejects absurd counts before any allocation.
    pub(crate) fn count(&mut self, min_elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let n: usize = n
            .try_into()
            .map_err(|_| SnapshotError::Malformed("count overflows usize"))?;
        if n.checked_mul(min_elem_size.max(1))
            .map(|total| total > self.remaining())
            .unwrap_or(true)
        {
            return Err(SnapshotError::Malformed("count exceeds payload size"));
        }
        Ok(n)
    }

    /// A length-prefixed byte slice (nested envelope).
    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.count(1)?;
        self.take(n)
    }

    /// A polygon written with [`ConvexPolygon::encode_raw`], re-validated.
    pub(crate) fn polygon(&mut self) -> Result<ConvexPolygon, SnapshotError> {
        let (poly, used) = ConvexPolygon::decode_raw(&self.buf[self.pos..])
            .ok_or(SnapshotError::Malformed("invalid polygon"))?;
        self.pos += used;
        Ok(poly)
    }
}

// ---------------------------------------------------------------------
// The Snapshot trait and the tag dispatch
// ---------------------------------------------------------------------

/// Self-describing binary persistence for a summary type.
///
/// `decode(encode(s))` restores a summary that behaves bit-identically to
/// `s` for every subsequent `insert` / `hull_ref` / `error_bound` /
/// `merge_from` call. See the [module docs](self) for the wire format.
pub trait Snapshot: Sized {
    /// Serialises the summary into a sealed, checksummed envelope.
    fn encode(&self) -> Vec<u8>;

    /// Reconstructs a summary from [`encode`](Snapshot::encode)d bytes,
    /// rejecting corrupted, truncated, version-skewed, or wrong-kind input
    /// with a typed error. Never panics.
    fn decode(bytes: &[u8]) -> Result<Self, SnapshotError>;
}

/// Validates the envelope, checks the tag is `expected`, and hands the
/// payload to `read`.
pub(crate) fn decode_expecting<T>(
    bytes: &[u8],
    expected_tag: u8,
    read: impl FnOnce(&mut Reader<'_>) -> Result<T, SnapshotError>,
) -> Result<T, SnapshotError> {
    let (tag, payload) = open(bytes)?;
    if tag != expected_tag {
        if tag != WINDOWED_TAG
            && tag != CHECKPOINT_TAG
            && SummaryKind::ALL.get(tag as usize).is_none()
        {
            return Err(SnapshotError::UnknownKind(tag));
        }
        return Err(SnapshotError::KindMismatch {
            expected: tag_name(expected_tag),
            found: tag_name(tag),
        });
    }
    let mut reader = Reader::new(payload);
    let value = read(&mut reader)?;
    reader.finish()?;
    Ok(value)
}

macro_rules! impl_snapshot {
    ($ty:path, $kind:expr) => {
        impl Snapshot for $ty {
            fn encode(&self) -> Vec<u8> {
                let mut payload = Vec::new();
                self.snapshot_payload(&mut payload);
                seal(kind_tag($kind), &payload)
            }

            fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
                decode_expecting(bytes, kind_tag($kind), Self::from_snapshot_payload)
            }
        }
    };
}

impl_snapshot!(crate::exact::ExactHull, SummaryKind::Exact);
impl_snapshot!(crate::uniform::NaiveUniformHull, SummaryKind::UniformNaive);
impl_snapshot!(crate::uniform::UniformHull, SummaryKind::Uniform);
impl_snapshot!(crate::radial::RadialHull, SummaryKind::Radial);
impl_snapshot!(crate::frozen::FrozenHull, SummaryKind::Frozen);
impl_snapshot!(crate::adaptive::stream::AdaptiveHull, SummaryKind::Adaptive);
impl_snapshot!(
    crate::adaptive::fixed_budget::FixedBudgetAdaptiveHull,
    SummaryKind::AdaptiveFixedBudget
);
impl_snapshot!(crate::cluster::ClusterHull, SummaryKind::Cluster);

impl Snapshot for crate::window::WindowedSummary {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.snapshot_payload(&mut payload);
        seal(WINDOWED_TAG, &payload)
    }

    fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        decode_expecting(bytes, WINDOWED_TAG, Self::from_snapshot_payload)
    }
}

/// Reconstructs the right backend from the envelope's kind tag alone —
/// the engine behind
/// [`SummaryBuilder::restore`](crate::builder::SummaryBuilder::restore).
pub(crate) fn restore_mergeable(
    bytes: &[u8],
) -> Result<Box<dyn Mergeable + Send + Sync>, SnapshotError> {
    let (tag, _) = open(bytes)?;
    if tag == WINDOWED_TAG || tag == CHECKPOINT_TAG {
        return Err(SnapshotError::KindMismatch {
            expected: "a summary backend",
            found: tag_name(tag),
        });
    }
    let kind = *SummaryKind::ALL
        .get(tag as usize)
        .ok_or(SnapshotError::UnknownKind(tag))?;
    Ok(match kind {
        SummaryKind::Exact => Box::new(crate::exact::ExactHull::decode(bytes)?),
        SummaryKind::UniformNaive => Box::new(crate::uniform::NaiveUniformHull::decode(bytes)?),
        SummaryKind::Uniform => Box::new(crate::uniform::UniformHull::decode(bytes)?),
        SummaryKind::Radial => Box::new(crate::radial::RadialHull::decode(bytes)?),
        SummaryKind::Frozen => Box::new(crate::frozen::FrozenHull::decode(bytes)?),
        SummaryKind::Adaptive => Box::new(crate::adaptive::stream::AdaptiveHull::decode(bytes)?),
        SummaryKind::AdaptiveFixedBudget => {
            Box::new(crate::adaptive::fixed_budget::FixedBudgetAdaptiveHull::decode(bytes)?)
        }
        SummaryKind::Cluster => Box::new(crate::cluster::ClusterHull::decode(bytes)?),
    })
}

/// The [`SummaryKind`] a snapshot envelope holds, without decoding the
/// payload (`None` for a windowed or checkpoint envelope).
pub fn peek_kind(bytes: &[u8]) -> Result<Option<SummaryKind>, SnapshotError> {
    let (tag, _) = open(bytes)?;
    if tag == WINDOWED_TAG || tag == CHECKPOINT_TAG {
        return Ok(None);
    }
    SummaryKind::ALL
        .get(tag as usize)
        .copied()
        .map(Some)
        .ok_or(SnapshotError::UnknownKind(tag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_all_order() {
        for (i, &k) in SummaryKind::ALL.iter().enumerate() {
            assert_eq!(kind_tag(k) as usize, i);
        }
    }

    #[test]
    fn envelope_round_trips() {
        let sealed = seal(3, b"hello payload");
        let (tag, payload) = open(&sealed).unwrap();
        assert_eq!(tag, 3);
        assert_eq!(payload, b"hello payload");
    }

    #[test]
    fn envelope_rejects_every_single_bit_flip() {
        let sealed = seal(0, b"some bytes worth protecting");
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut corrupt = sealed.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    open(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn envelope_rejects_every_truncation() {
        let sealed = seal(1, b"payload");
        for len in 0..sealed.len() {
            assert!(open(&sealed[..len]).is_err(), "length {len}");
        }
        // Extension is also rejected (length field pins the size).
        let mut extended = sealed.clone();
        extended.push(0);
        assert_eq!(
            open(&extended),
            Err(SnapshotError::LengthMismatch {
                expected: sealed.len(),
                got: sealed.len() + 1,
            })
        );
    }

    #[test]
    fn envelope_rejects_version_skew() {
        let mut sealed = seal(0, b"x");
        sealed[4] = 99; // version low byte
        let err = open(&sealed).unwrap_err();
        // Either the version check or the checksum may fire first; the
        // version check does because it precedes checksum validation.
        assert_eq!(err, SnapshotError::UnsupportedVersion(99));
    }

    #[test]
    fn kind_tags_are_stable() {
        // The wire format freezes these indices; reordering
        // SummaryKind::ALL would silently break every stored snapshot.
        let labels: Vec<&str> = (0..8).map(tag_name).collect();
        assert_eq!(
            labels,
            [
                "exact",
                "uniform-naive",
                "uniform",
                "radial",
                "frozen",
                "adaptive",
                "adaptive-2r",
                "cluster"
            ]
        );
        assert_eq!(tag_name(WINDOWED_TAG), "windowed");
        for &kind in &SummaryKind::ALL {
            assert_eq!(
                SummaryKind::ALL[kind_tag(kind) as usize],
                kind,
                "tag must round-trip"
            );
        }
    }

    #[test]
    fn checkpoint_envelope_round_trips_and_rejects_corruption() {
        let inner = seal(5, b"adaptive-ish payload");
        let sealed = seal_checkpoint(3, 4096, &inner);
        let cp = open_checkpoint(&sealed).unwrap();
        assert_eq!(cp.shard, 3);
        assert_eq!(cp.tick, 4096);
        assert_eq!(cp.snapshot, inner.as_slice());
        // The inner envelope survives the round trip intact.
        let (tag, payload) = open(cp.snapshot).unwrap();
        assert_eq!(tag, 5);
        assert_eq!(payload, b"adaptive-ish payload");
        // Every single-byte corruption of the outer envelope is caught.
        for byte in 0..sealed.len() {
            let mut corrupt = sealed.clone();
            corrupt[byte] ^= 0xff;
            assert!(open_checkpoint(&corrupt).is_err(), "byte {byte}");
        }
        // A plain summary envelope is not a checkpoint, and vice versa.
        assert_eq!(
            open_checkpoint(&inner),
            Err(SnapshotError::KindMismatch {
                expected: "checkpoint",
                found: "adaptive",
            })
        );
        assert!(matches!(
            restore_mergeable(&sealed),
            Err(SnapshotError::KindMismatch {
                found: "checkpoint",
                ..
            })
        ));
        assert_eq!(peek_kind(&sealed), Ok(None));
    }

    #[test]
    fn reader_count_rejects_absurd_lengths() {
        let mut payload = Vec::new();
        put_u64(&mut payload, u64::MAX);
        let mut r = Reader::new(&payload);
        assert!(r.count(16).is_err());
    }
}
