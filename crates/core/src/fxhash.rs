//! Keyed FxHash-style hashing for the hot-path maps (the tenant index and
//! the serving layer's answer cache).
//!
//! Both maps sit on the warm query path, where the whole point is to be
//! cheaper than recomputing over a ≤2r-vertex hull — SipHash would spend
//! a third of the hit budget hashing a 16-byte key. The classic FxHash
//! rotate-xor-multiply fold is ~4x cheaper on these small fixed keys.
//! FxHash alone is trivially floodable (its mix is public and
//! invertible), so every [`FxBuild`] carries a per-instance random seed
//! drawn from the standard library's [`RandomState`] entropy and folds it
//! in ahead of the key: bucket placement differs per engine and per
//! process, exactly like the `HashMap` default. This is the same
//! keyed-but-not-cryptographic stance as the default hasher, an order of
//! magnitude cheaper.
//!
//! Determinism: engine behaviour never depends on map iteration order
//! (fleet scans sort their id lists), and the std default hasher is
//! already per-process random — a randomly seeded fold introduces no
//! nondeterminism that `HashMap::new()` did not.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};

/// [`BuildHasher`] producing seeded [`FxHasher`]s. Construct with
/// [`FxBuild::random`]; `Default` also draws a fresh random seed so
/// containers built with `HashMap::default()` are seeded too.
#[derive(Clone, Debug)]
pub(crate) struct FxBuild {
    seed: u64,
}

impl FxBuild {
    /// A builder with a fresh seed from the process entropy pool.
    pub(crate) fn random() -> FxBuild {
        // RandomState is the std per-instance entropy source; one finished
        // hash of it is a uniformly mixed u64 without any new dependency.
        FxBuild {
            seed: RandomState::new().build_hasher().finish(),
        }
    }
}

impl Default for FxBuild {
    fn default() -> FxBuild {
        FxBuild::random()
    }
}

impl BuildHasher for FxBuild {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// The rotate-xor-multiply fold, starting from the builder's seed.
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fold(b as u64);
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.fold(n as u8 as u64);
    }
    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.fold(n as u16 as u64);
    }
    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.fold(n as u32 as u64);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.fold(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn seeded_builders_disagree_on_bucket_placement() {
        let (a, b) = (FxBuild::random(), FxBuild::random());
        // Two engines almost surely hash the same key differently; equal
        // seeds would mean RandomState returned the same entropy twice.
        let hash = |build: &FxBuild, key: u64| {
            let mut h = build.build_hasher();
            h.write_u64(key);
            h.finish()
        };
        assert_ne!(a.seed, b.seed);
        assert_ne!(hash(&a, 7), hash(&b, 7));
    }

    #[test]
    fn map_round_trips_every_key() {
        let mut m: HashMap<u64, u64, FxBuild> = HashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&(k * 3)));
        }
    }
}
