//! The uniformly sampled hull (paper §3).
//!
//! Maintains the extrema of the stream in `r` fixed, evenly spaced
//! directions `jθ0`, `θ0 = 2π/r`. Two implementations:
//!
//! * [`NaiveUniformHull`] — the `O(r)`-per-point scheme of Feigenbaum,
//!   Kannan & Zhang: one dot product against every direction. Simple,
//!   branch-light, and the reference the fancier structure is tested
//!   against.
//! * [`UniformHull`] — the searchable structure of §3.1: points inside the
//!   current hull of extrema are discarded after an `O(log r)` point
//!   location; only points that actually beat some direction pay more. It
//!   also reports the *beaten arc* of directions, which is exactly what the
//!   adaptive layer (§5) needs to know which refinement trees to touch.
//!
//! Both maintain the invariant that the stored extremum for direction `j`
//! is the maximum-dot point of the whole prefix (under `f64` dot
//! comparison), which tests verify against brute-force replay.

use crate::batch::{incircle, BatchScratch, CertCache, BATCH_LEAF, PREFILTER_MIN_DIRS};
use crate::summary::{GenCache, HullCache, HullSummary, Mergeable};
use core::f64::consts::TAU;
use geom::tangent::visible_chain;
use geom::{ConvexPolygon, Point2, Vec2};

/// The naive `O(r)`-per-point uniformly sampled hull (FKZ baseline).
#[derive(Clone, Debug)]
pub struct NaiveUniformHull {
    units: Vec<Vec2>,
    extrema: Vec<Point2>,
    /// Cached support values `extrema[j].dot(units[j])`, kept in lockstep
    /// with `extrema` so the per-point scan compares against a stored
    /// `f64` instead of recomputing the incumbent's dot product — half the
    /// multiplies and a branch-light inner loop.
    dots: Vec<f64>,
    seen: u64,
    cache: HullCache,
    distinct: GenCache<usize>,
    bound: GenCache<f64>,
    scratch: BatchScratch,
}

impl NaiveUniformHull {
    /// Creates the summary with `r >= 4` sample directions.
    pub fn new(r: u32) -> Self {
        assert!(r >= 4, "need at least 4 directions, got {r}");
        let units = (0..r)
            .map(|j| Vec2::from_angle(TAU * j as f64 / r as f64))
            .collect();
        NaiveUniformHull {
            units,
            extrema: Vec::new(),
            dots: Vec::new(),
            seen: 0,
            cache: HullCache::new(),
            distinct: GenCache::new(),
            bound: GenCache::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// Number of sample directions.
    pub fn r(&self) -> u32 {
        self.units.len() as u32
    }

    /// The stored extremum for direction index `j` (`None` before the first
    /// point).
    pub fn extremum(&self, j: u32) -> Option<Point2> {
        self.extrema.get(j as usize).copied()
    }

    /// Unit vector of direction `j`.
    pub fn unit(&self, j: u32) -> Vec2 {
        self.units[j as usize]
    }

    /// The direction scan without seen/cache bookkeeping; returns `true`
    /// iff any extremum changed.
    #[inline]
    fn scan(&mut self, p: Point2) -> bool {
        if self.extrema.is_empty() {
            self.extrema = vec![p; self.units.len()];
            self.dots = self.units.iter().map(|&u| p.dot(u)).collect();
            return true;
        }
        let mut changed = false;
        for ((e, d), u) in self
            .extrema
            .iter_mut()
            .zip(self.dots.iter_mut())
            .zip(&self.units)
        {
            let nd = p.dot(*u);
            if nd > *d {
                *e = p;
                *d = nd;
                changed = true;
            }
        }
        changed
    }
}

impl NaiveUniformHull {
    /// Snapshot payload: `r`, seen count, and the per-direction extrema
    /// (empty before the first point); support dots are recomputed on
    /// restore with the exact expression that produced them.
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_point, put_u32, put_u64};
        put_u32(out, self.r());
        put_u64(out, self.seen);
        put_u64(out, self.extrema.len() as u64);
        for &e in &self.extrema {
            put_point(out, e);
        }
    }

    /// Inverse of [`NaiveUniformHull::snapshot_payload`].
    pub(crate) fn from_snapshot_payload(
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let dirs = r.u32()?;
        if dirs < 4 {
            return Err(SnapshotError::Malformed("uniform-naive needs r >= 4"));
        }
        let seen = r.u64()?;
        let count = r.count(16)?;
        if count != 0 && count != dirs as usize {
            return Err(SnapshotError::Malformed("extrema count must be 0 or r"));
        }
        let mut s = NaiveUniformHull::new(dirs);
        s.seen = seen;
        if count > 0 {
            let mut extrema = Vec::with_capacity(count);
            for _ in 0..count {
                extrema.push(r.point()?);
            }
            s.dots = extrema
                .iter()
                .zip(&s.units)
                .map(|(e, &u)| e.dot(u))
                .collect();
            s.extrema = extrema;
        }
        Ok(s)
    }
}

impl HullSummary for NaiveUniformHull {
    fn insert(&mut self, p: Point2) {
        if !p.is_finite() {
            return;
        }
        self.seen += 1;
        if self.scan(p) {
            self.cache.invalidate();
        }
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them one
            // by one); recursing on the all-finite remainder preserves the
            // batch == loop equivalence contract.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        if points.len() <= BATCH_LEAF {
            for &p in points {
                self.insert(p);
            }
            return;
        }
        let mut changed = false;
        if self.units.len() >= PREFILTER_MIN_DIRS {
            // Large fans: the O(r) scan dominates, so pay one sort to
            // reduce the chunk to its hull-boundary points — only they can
            // beat any direction (ties included; see `batch.rs`).
            let mut scratch = core::mem::take(&mut self.scratch);
            match scratch.boundary_survivors(points) {
                None => {
                    // Non-finite input: replicate the loop's NaN semantics.
                    for &p in points {
                        self.insert(p);
                    }
                }
                Some(survivors) => {
                    self.seen += points.len() as u64;
                    for &p in survivors {
                        changed |= self.scan(p);
                    }
                }
            }
            self.scratch = scratch;
        } else {
            // Small fans: an O(r) scan is too cheap for sorting to pay —
            // use the interior certificate of the hull of extrema instead.
            // A certified point is strictly inside that hull, hence
            // strictly dominated in every direction: the scan would be a
            // no-op. Non-finite points never pass the certificate, so NaN
            // semantics match the loop.
            let mut cert = CertCache::new(32);
            for &p in points {
                self.seen += 1;
                if cert.covers(p, || incircle(&ConvexPolygon::hull_of(&self.extrema))) {
                    continue;
                }
                if self.scan(p) {
                    changed = true;
                    cert.invalidate();
                }
            }
        }
        if changed {
            self.cache.invalidate();
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| ConvexPolygon::hull_of(&self.extrema))
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.distinct.get_or_compute(self.cache.generation(), || {
            distinct_points(&self.extrema).len()
        })
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn name(&self) -> &'static str {
        "uniform-naive"
    }

    fn error_bound(&self) -> Option<f64> {
        // Lemma 3.2: every stream point respects all r supporting
        // half-planes, so the true hull cannot stick out farther than the
        // tallest current uncertainty triangle.
        Some(self.bound.get_or_compute(self.cache.generation(), || {
            max_triangle_height(&crate::metrics::naive_uniform_uncertainty_triangles(self))
        }))
    }
}

impl Mergeable for NaiveUniformHull {
    fn sample_points(&self) -> Vec<Point2> {
        distinct_points(&self.extrema)
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

/// Largest height over a set of uncertainty triangles (0 when empty).
fn max_triangle_height(triangles: &[geom::UncertaintyTriangle]) -> f64 {
    triangles.iter().map(|t| t.height()).fold(0.0f64, f64::max)
}

/// Distinct points of a direction-ordered extrema list.
pub(crate) fn distinct_points(extrema: &[Point2]) -> Vec<Point2> {
    let mut pts = extrema.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup();
    pts
}

/// A maximal run of consecutive directions owned by one extremum point.
#[derive(Clone, Copy, Debug, PartialEq)]
#[must_use = "a direction run encodes which extremum owns the queried direction"]
pub struct DirRun {
    /// Owning extremum (an input point).
    pub point: Point2,
    /// First owned direction index.
    pub lo: u32,
    /// Last owned direction index (inclusive; `lo <= hi`, runs never wrap —
    /// a wrapping run is stored as two).
    pub hi: u32,
}

/// The counterclockwise angular arc of directions a new point beats,
/// reported by [`UniformHull::insert_detailed`]. Angles in radians,
/// normalised to `[0, 2π)`; the arc runs ccw from `start` to `end` and its
/// width is at most `π`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BeatenArc {
    /// Arc start angle (exclusive boundary).
    pub start: f64,
    /// Arc end angle (exclusive boundary).
    pub end: f64,
}

/// Outcome of feeding one point to [`UniformHull`].
#[derive(Clone, Debug, PartialEq)]
pub enum UniformEffect {
    /// This was the first stream point: it now owns every direction.
    First,
    /// The point was inside the hull of the current extrema; it cannot beat
    /// any direction (uniform *or* adaptive) and was discarded.
    Interior,
    /// The point was outside the hull of the extrema.
    Outside {
        /// Inclusive circular range `[first, last]` of beaten uniform
        /// direction indices, or `None` if the point pokes out strictly
        /// between sample directions.
        beaten: Option<(u32, u32)>,
        /// The continuous arc of directions in which the point beats the
        /// support of the stored extrema (superset of any adaptive
        /// directions it can beat).
        arc: BeatenArc,
    },
}

/// The searchable uniformly sampled hull (§3.1).
#[derive(Clone, Debug)]
pub struct UniformHull {
    r: u32,
    theta0: f64,
    units: Vec<Vec2>,
    /// Direction ownership runs, sorted by `lo`, partitioning `0..r`.
    runs: Vec<DirRun>,
    /// Strict convex hull of the extrema (cached eagerly — refreshed only
    /// when a point actually beats a direction).
    hull: ConvexPolygon,
    /// Perimeter of `hull` (the paper's `P`; `2·len` for a segment).
    perimeter: f64,
    seen: u64,
    /// Bumped whenever `hull` changes (interior points leave it alone).
    generation: u64,
    /// Scratch for the run rewrite in `apply_beaten` (reused, no allocs).
    runs_scratch: Vec<DirRun>,
    /// Scratch point buffers for the in-place hull rebuild.
    pts_scratch: Vec<Point2>,
    hull_scratch: Vec<Point2>,
    distinct: GenCache<usize>,
    bound: GenCache<f64>,
}

impl UniformHull {
    /// Creates the summary with `r >= 4` sample directions.
    pub fn new(r: u32) -> Self {
        assert!(r >= 4, "need at least 4 directions, got {r}");
        let units = (0..r)
            .map(|j| Vec2::from_angle(TAU * j as f64 / r as f64))
            .collect();
        UniformHull {
            r,
            theta0: TAU / r as f64,
            units,
            runs: Vec::new(),
            hull: ConvexPolygon::empty(),
            perimeter: 0.0,
            seen: 0,
            generation: 0,
            runs_scratch: Vec::new(),
            pts_scratch: Vec::new(),
            hull_scratch: Vec::new(),
            distinct: GenCache::new(),
            bound: GenCache::new(),
        }
    }

    /// Number of sample directions.
    pub fn r(&self) -> u32 {
        self.r
    }

    /// Unit vector of direction `j`.
    pub fn unit(&self, j: u32) -> Vec2 {
        self.units[(j % self.r) as usize]
    }

    /// Perimeter `P` of the hull of the extrema (paper §4/§5).
    pub fn perimeter(&self) -> f64 {
        self.perimeter
    }

    /// The stored extremum for direction `j` (`None` before any input).
    pub fn extremum(&self, j: u32) -> Option<Point2> {
        let j = j % self.r;
        if self.runs.is_empty() {
            return None;
        }
        // Binary search the run containing j.
        let idx = match self.runs.binary_search_by(|run| run.lo.cmp(&j)) {
            Ok(i) => i,
            Err(0) => self.runs.len() - 1, // j before first lo: wrapping tail run
            Err(i) => i - 1,
        };
        let run = self.runs[idx];
        debug_assert!(
            run.lo <= j && j <= run.hi,
            "run lookup failed: j={j}, runs={:?}",
            self.runs
        );
        Some(run.point)
    }

    /// `true` iff `q` strictly beats the stored extremum in direction `j`.
    #[inline]
    fn beats(&self, q: Point2, j: u32) -> bool {
        let u = self.unit(j);
        match self.extremum(j) {
            None => true,
            Some(e) => q.dot(u) > e.dot(u),
        }
    }

    /// Ownership runs (testing/inspection).
    pub fn runs(&self) -> &[DirRun] {
        &self.runs
    }

    /// Adds to the seen-points counter without inserting geometry (used by
    /// summary merging, where the absorbed points were already counted by
    /// the other summary).
    pub(crate) fn add_seen(&mut self, n: u64) {
        self.seen += n;
    }

    /// Feeds a point and reports exactly what it affected.
    pub fn insert_detailed(&mut self, q: Point2) -> UniformEffect {
        assert!(q.is_finite(), "UniformHull requires finite coordinates");
        self.seen += 1;
        if self.runs.is_empty() {
            self.runs.push(DirRun {
                point: q,
                lo: 0,
                hi: self.r - 1,
            });
            self.hull = ConvexPolygon::hull_of(&[q]);
            self.perimeter = 0.0;
            self.generation += 1;
            return UniformEffect::First;
        }

        // Fast reject: inside the hull of the extrema => beats nothing.
        if geom::locate::contains(&self.hull, q) {
            return UniformEffect::Interior;
        }

        let arc = match self.beaten_arc(q) {
            Some(arc) => arc,
            None => return UniformEffect::Interior, // weakly on the boundary
        };

        // Candidate uniform directions inside the arc, then verify/adjust by
        // exact dot tests (the arc itself is floating point).
        let beaten = self.verified_beaten_range(q, &arc);
        if let Some((first, last)) = beaten {
            self.apply_beaten(q, first, last);
        }
        UniformEffect::Outside { beaten, arc }
    }

    /// Computes the continuous arc of directions in which `q` beats the
    /// support of the stored extrema. `q` must be outside their hull;
    /// returns `None` in the razor's-edge case where `q` is (weakly) on the
    /// boundary.
    fn beaten_arc(&self, q: Point2) -> Option<BeatenArc> {
        let h = &self.hull;
        // Outward normal angle of directed edge a->b of a ccw polygon.
        let outward = |a: Point2, b: Point2| -> f64 {
            let d = b - a;
            Vec2::new(d.y, -d.x).angle().rem_euclid(TAU)
        };
        match h.len() {
            0 => None,
            1 => {
                let v = h.vertex(0);
                if v == q {
                    return None;
                }
                let phi = (q - v).angle();
                Some(BeatenArc {
                    start: (phi - core::f64::consts::FRAC_PI_2).rem_euclid(TAU),
                    end: (phi + core::f64::consts::FRAC_PI_2).rem_euclid(TAU),
                })
            }
            2 => {
                // Build the tiny hull of {a, b, q} and read q's normal cone
                // from its edges; degenerate (collinear) falls back to the
                // half-circle around the direction from the nearer endpoint.
                let (a, b) = (h.vertex(0), h.vertex(1));
                let t = ConvexPolygon::hull_of(&[a, b, q]);
                if t.len() == 3 {
                    let idx = (0..3).find(|&i| t.vertex(i) == q)?;
                    let prev = t.vertex((idx + 2) % 3);
                    let next = t.vertex((idx + 1) % 3);
                    Some(BeatenArc {
                        start: outward(prev, q),
                        end: outward(q, next),
                    })
                } else {
                    // Collinear: q beyond one endpoint (or between: interior).
                    let e = if (q - a).dot(b - a) < 0.0 {
                        a
                    } else if (q - b).dot(a - b) < 0.0 {
                        b
                    } else {
                        return None; // on the segment
                    };
                    let phi = (q - e).angle();
                    Some(BeatenArc {
                        start: (phi - core::f64::consts::FRAC_PI_2).rem_euclid(TAU),
                        end: (phi + core::f64::consts::FRAC_PI_2).rem_euclid(TAU),
                    })
                }
            }
            _ => {
                let chain = visible_chain(h, q)?;
                let vs = h.vertex(chain.start);
                let ve = h.vertex(chain.end);
                Some(BeatenArc {
                    start: outward(vs, q),
                    end: outward(q, ve),
                })
            }
        }
    }

    /// Seeds the candidate index range from the arc, then shrinks/expands it
    /// with exact dot tests so the result is independent of arc rounding.
    fn verified_beaten_range(&self, q: Point2, arc: &BeatenArc) -> Option<(u32, u32)> {
        let r = self.r;
        let span = (arc.end - arc.start).rem_euclid(TAU);
        let mut first = ((arc.start / self.theta0).ceil() as i64).rem_euclid(r as i64) as u32;
        let mut count = (span / self.theta0).floor() as i64 + 1;
        if count > r as i64 {
            count = r as i64;
        }
        let mut last = (first as i64 + count - 1).rem_euclid(r as i64) as u32;

        // Shrink from the front while the candidate is not actually beaten.
        let mut len = count;
        while len > 0 && !self.beats(q, first) {
            first = (first + 1) % r;
            len -= 1;
        }
        while len > 0 && !self.beats(q, last) {
            last = (last + r - 1) % r;
            len -= 1;
        }
        if len == 0 {
            // Seed missed; probe the two boundary neighbours before giving
            // up (covers arcs narrower than one sector).
            let probe = (arc.start + span * 0.5).rem_euclid(TAU);
            let j = ((probe / self.theta0).round() as i64).rem_euclid(r as i64) as u32;
            for cand in [j, (j + r - 1) % r, (j + 1) % r] {
                if self.beats(q, cand) {
                    first = cand;
                    last = cand;
                    len = 1;
                    break;
                }
            }
            if len == 0 {
                return None;
            }
        }
        // Expand outwards in case the seed was too narrow (bounded by r).
        let mut total = ((last + r - first) % r + 1) as i64;
        while total < r as i64 && self.beats(q, (first + r - 1) % r) {
            first = (first + r - 1) % r;
            total += 1;
        }
        while total < r as i64 && self.beats(q, (last + 1) % r) {
            last = (last + 1) % r;
            total += 1;
        }
        Some((first, last))
    }

    /// Rewrites the ownership runs so `q` owns the circular inclusive range
    /// `[first, last]`, then refreshes the cached hull and perimeter.
    ///
    /// Allocation-free in steady state: the run rewrite, the point
    /// collection, and the hull rebuild all reuse buffers held on the
    /// struct.
    fn apply_beaten(&mut self, q: Point2, first: u32, last: u32) {
        let r = self.r;
        let in_beaten = |j: u32| -> bool { (j + r - first) % r <= (last + r - first) % r };
        let out = &mut self.runs_scratch;
        out.clear();
        for run in &self.runs {
            // Split the (non-wrapping) run into maximal sub-runs that
            // survive outside the beaten set.
            let mut j = run.lo;
            while j <= run.hi {
                if in_beaten(j) {
                    j += 1;
                    continue;
                }
                let start = j;
                while j <= run.hi && !in_beaten(j) {
                    j += 1;
                }
                out.push(DirRun {
                    point: run.point,
                    lo: start,
                    hi: j - 1,
                });
            }
        }
        // Insert q's run (split at the wrap point if needed).
        if first <= last {
            out.push(DirRun {
                point: q,
                lo: first,
                hi: last,
            });
        } else {
            out.push(DirRun {
                point: q,
                lo: first,
                hi: r - 1,
            });
            out.push(DirRun {
                point: q,
                lo: 0,
                hi: last,
            });
        }
        out.sort_by_key(|run| run.lo);
        // Merge adjacent runs owned by the same point, writing back into
        // the (cleared) live run list.
        self.runs.clear();
        for &run in out.iter() {
            if let Some(prev) = self.runs.last_mut() {
                if prev.point == run.point && prev.hi + 1 == run.lo {
                    prev.hi = run.hi;
                    continue;
                }
            }
            self.runs.push(run);
        }
        debug_assert!(self.runs_partition_all());

        self.pts_scratch.clear();
        self.pts_scratch
            .extend(self.runs.iter().map(|run| run.point));
        self.hull
            .assign_hull_of(&self.pts_scratch, &mut self.hull_scratch);
        self.perimeter = self.hull.perimeter();
        self.generation += 1;
    }

    /// Snapshot payload: `r`, seen count, hull generation, the ownership
    /// runs, and the cached hull polygon (stored bit-exactly rather than
    /// recomputed, so a restored summary's `hull_ref` and perimeter `P` —
    /// which drives the adaptive scheme's thresholds — match the original
    /// to the last bit). Also the substrate payload of the adaptive kinds.
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_point, put_u32, put_u64};
        put_u32(out, self.r);
        put_u64(out, self.seen);
        put_u64(out, self.generation);
        put_u64(out, self.runs.len() as u64);
        for run in &self.runs {
            put_point(out, run.point);
            put_u32(out, run.lo);
            put_u32(out, run.hi);
        }
        self.hull.encode_raw(out);
    }

    /// Inverse of [`UniformHull::snapshot_payload`]. Re-validates the run
    /// partition invariant the binary-searched `extremum` lookup relies
    /// on.
    pub(crate) fn from_snapshot_payload(
        reader: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let r = reader.u32()?;
        if r < 4 {
            return Err(SnapshotError::Malformed("uniform needs r >= 4"));
        }
        let seen = reader.u64()?;
        let generation = reader.u64()?;
        let run_count = reader.count(24)?;
        let mut runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let point = reader.point()?;
            let lo = reader.u32()?;
            let hi = reader.u32()?;
            if lo >= r || hi >= r {
                return Err(SnapshotError::Malformed("run index out of range"));
            }
            if !point.is_finite() {
                // The insert boundary asserts finiteness, so no legal
                // state holds a non-finite extremum; rejecting it here
                // keeps merge/insert paths panic-free on forged input.
                return Err(SnapshotError::Malformed("non-finite run extremum"));
            }
            runs.push(DirRun { point, lo, hi });
        }
        let hull = reader.polygon()?;
        let mut s = UniformHull::new(r);
        s.seen = seen;
        s.generation = generation;
        s.runs = runs;
        s.perimeter = hull.perimeter();
        s.hull = hull;
        if !s.runs.is_empty() && !s.runs_partition_all() {
            return Err(SnapshotError::Malformed("runs do not partition 0..r"));
        }
        Ok(s)
    }

    fn runs_partition_all(&self) -> bool {
        let mut covered = 0u64;
        let mut prev_hi: Option<u32> = None;
        for run in &self.runs {
            if run.lo > run.hi {
                return false;
            }
            if let Some(ph) = prev_hi {
                if run.lo != ph + 1 {
                    return false;
                }
            } else if run.lo != 0 {
                return false;
            }
            covered += (run.hi - run.lo + 1) as u64;
            prev_hi = Some(run.hi);
        }
        covered == self.r as u64
    }
}

impl HullSummary for UniformHull {
    fn insert(&mut self, p: Point2) {
        // Non-finite points are dropped, not counted (see `HullSummary`).
        if !p.is_finite() {
            return;
        }
        let _ = self.insert_detailed(p);
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them one
            // by one); recursing on the all-finite remainder preserves the
            // batch == loop equivalence contract.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        if points.len() <= BATCH_LEAF {
            for &q in points {
                let _ = self.insert_detailed(q);
            }
            return;
        }
        // Interior-certificate fast path: points inside the inscribed
        // circle of `A` are exactly points the per-point path would
        // discard as interior after an O(log r) point location — discard
        // them here for two multiplies. The certificate is rebuilt only
        // when `A` changes (`generation` advances), amortised across the
        // chunk. Non-finite points were filtered out above, so
        // `insert_detailed`'s finite-input precondition always holds here.
        let mut cert = CertCache::new(8);
        for &q in points {
            if cert.covers(q, || incircle(&self.hull)) {
                self.seen += 1;
                continue;
            }
            let before = self.generation;
            let _ = self.insert_detailed(q);
            if self.generation != before {
                cert.invalidate();
            }
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        &self.hull
    }

    fn hull_generation(&self) -> u64 {
        self.generation
    }

    fn sample_size(&self) -> usize {
        self.distinct.get_or_compute(self.generation, || {
            let pts: Vec<Point2> = self.runs.iter().map(|run| run.point).collect();
            distinct_points(&pts).len()
        })
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn name(&self) -> &'static str {
        "uniform"
    }

    fn error_bound(&self) -> Option<f64> {
        Some(self.bound.get_or_compute(self.generation, || {
            max_triangle_height(&crate::metrics::uniform_uncertainty_triangles(self))
        }))
    }
}

impl Mergeable for UniformHull {
    fn sample_points(&self) -> Vec<Point2> {
        let pts: Vec<Point2> = self.runs.iter().map(|run| run.point).collect();
        distinct_points(&pts)
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn lcg_points(seed: u64, n: usize, scale: f64) -> Vec<Point2> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| p((next() - 0.5) * scale, (next() - 0.5) * scale))
            .collect()
    }

    /// The central equivalence test: the searchable structure must make the
    /// same per-direction decisions as the naive scan.
    fn assert_equivalent(points: &[Point2], r: u32) {
        let mut naive = NaiveUniformHull::new(r);
        let mut fancy = UniformHull::new(r);
        for (i, &q) in points.iter().enumerate() {
            naive.insert(q);
            fancy.insert(q);
            for j in 0..r {
                let (a, b) = (naive.extremum(j).unwrap(), fancy.extremum(j).unwrap());
                let u = naive.unit(j);
                assert!(
                    (a.dot(u) - b.dot(u)).abs() <= 1e-12 * a.dot(u).abs().max(1.0),
                    "direction {j} diverged after point {i} ({q:?}): naive {a:?} fancy {b:?}"
                );
            }
        }
    }

    #[test]
    fn equivalence_on_random_cloud() {
        assert_equivalent(&lcg_points(1, 500, 10.0), 16);
        assert_equivalent(&lcg_points(2, 500, 10.0), 8);
        assert_equivalent(&lcg_points(3, 300, 2.0), 64);
    }

    #[test]
    fn equivalence_on_adversarial_streams() {
        // Spiral: every point beats something.
        let spiral: Vec<Point2> = (0..300)
            .map(|i| {
                let t = 2.399963229728653 * i as f64;
                let rad = 1.0 + 0.01 * i as f64;
                p(rad * t.cos(), rad * t.sin())
            })
            .collect();
        assert_equivalent(&spiral, 32);

        // Collinear prefix, then 2-D points.
        let mut col: Vec<Point2> = (0..40).map(|i| p(i as f64, 2.0 * i as f64)).collect();
        col.extend(lcg_points(9, 100, 30.0));
        assert_equivalent(&col, 16);

        // Duplicates everywhere.
        let mut dup = lcg_points(10, 50, 5.0);
        let copy = dup.clone();
        dup.extend(copy);
        assert_equivalent(&dup, 16);
    }

    #[test]
    fn extrema_are_true_maxima() {
        let pts = lcg_points(4, 400, 6.0);
        let mut u = UniformHull::new(16);
        for &q in &pts {
            u.insert(q);
        }
        for j in 0..16 {
            let dir = u.unit(j);
            let stored = u.extremum(j).unwrap().dot(dir);
            let best = pts
                .iter()
                .map(|q| q.dot(dir))
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (stored - best).abs() <= 1e-12 * best.abs().max(1.0),
                "direction {j}: stored {stored}, true max {best}"
            );
        }
    }

    #[test]
    fn first_point_owns_everything() {
        let mut u = UniformHull::new(8);
        assert_eq!(u.insert_detailed(p(1.0, 2.0)), UniformEffect::First);
        assert_eq!(u.runs().len(), 1);
        for j in 0..8 {
            assert_eq!(u.extremum(j), Some(p(1.0, 2.0)));
        }
    }

    #[test]
    fn interior_point_reports_interior() {
        let mut u = UniformHull::new(8);
        for &q in &[p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)] {
            u.insert(q);
        }
        assert_eq!(u.insert_detailed(p(5.0, 5.0)), UniformEffect::Interior);
        assert_eq!(u.points_seen(), 5);
    }

    #[test]
    fn outside_point_reports_beaten_range() {
        let mut u = UniformHull::new(8);
        for &q in &[p(-1.0, -1.0), p(1.0, -1.0), p(1.0, 1.0), p(-1.0, 1.0)] {
            u.insert(q);
        }
        // Far to the +x: must at least beat direction 0.
        match u.insert_detailed(p(100.0, 0.0)) {
            UniformEffect::Outside {
                beaten: Some((first, last)),
                ..
            } => {
                let covered: Vec<u32> = {
                    let r = 8;
                    let len = (last + r - first) % r + 1;
                    (0..len).map(|i| (first + i) % r).collect()
                };
                assert!(covered.contains(&0), "direction 0 beaten, got {covered:?}");
                assert!(!covered.contains(&4), "direction pi not beaten");
            }
            other => panic!("expected Outside with beats, got {other:?}"),
        }
        assert_eq!(u.extremum(0), Some(p(100.0, 0.0)));
    }

    #[test]
    fn poke_out_between_directions() {
        // r = 4: directions at 0, 90, 180, 270 degrees. A point at 45°
        // just outside the hull may beat nothing.
        let mut u = UniformHull::new(4);
        let big = 10.0;
        for &q in &[p(big, 0.0), p(0.0, big), p(-big, 0.0), p(0.0, -big)] {
            u.insert(q);
        }
        // (5.2, 5.2) is outside the diamond hull (x+y = 10 edge) but beats
        // none of the four axis directions.
        match u.insert_detailed(p(5.2, 5.2)) {
            UniformEffect::Outside { beaten, .. } => assert_eq!(beaten, None),
            other => panic!("expected Outside without beats, got {other:?}"),
        }
        assert_eq!(u.extremum(0), Some(p(big, 0.0)), "extrema unchanged");
    }

    #[test]
    fn perimeter_tracks_hull() {
        let mut u = UniformHull::new(16);
        for &q in &[p(0.0, 0.0), p(4.0, 0.0), p(4.0, 3.0), p(0.0, 3.0)] {
            u.insert(q);
        }
        assert!((u.perimeter() - 14.0).abs() < 1e-12);
        u.insert(p(2.0, 1.0)); // interior: unchanged
        assert!((u.perimeter() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn hull_error_is_bounded_by_d_over_r() {
        // Lemma 3.2: uncertainty height O(D/r); test the directed Hausdorff
        // distance from the true hull to the uniform hull.
        use crate::exact::ExactHull;
        let pts: Vec<Point2> = (0..2000)
            .map(|i| {
                let t = core::f64::consts::TAU * (i as f64) * 0.618033988749;
                p(t.cos() * 5.0, t.sin() * 5.0)
            })
            .collect();
        for r in [16u32, 32, 64] {
            let mut u = UniformHull::new(r);
            let mut ex = ExactHull::new();
            for &q in &pts {
                u.insert(q);
                ex.insert(q);
            }
            let err = u.hull().directed_hausdorff_from(&ex.hull());
            let d = 10.0;
            let bound = core::f64::consts::PI * d / r as f64;
            assert!(err <= bound, "r={r}: err {err} > πD/r = {bound}");
            assert!(err > 0.0, "approximation is not exact for a circle");
        }
    }

    #[test]
    fn runs_partition_is_maintained() {
        let pts = lcg_points(5, 300, 8.0);
        let mut u = UniformHull::new(32);
        for &q in &pts {
            u.insert(q);
            assert!(u.runs_partition_all(), "runs must always partition 0..r");
        }
    }

    #[test]
    fn sample_size_bounded_by_r() {
        let pts = lcg_points(6, 1000, 8.0);
        let mut u = UniformHull::new(16);
        for &q in &pts {
            u.insert(q);
        }
        assert!(u.sample_size() <= 16);
        assert!(u.sample_size() >= 3);
    }
}
