//! Multi-stream tracking (paper §1: "track the minimum distance between the
//! convex hulls of two data streams", "report when datasets A and B are no
//! longer linearly separable", "report when points of data stream A become
//! completely surrounded by points of data stream B" — extended to any
//! number of streams).
//!
//! Each named stream is summarised by a summary built from a
//! [`SummaryBuilder`] — any [`SummaryKind`](crate::builder::SummaryKind)
//! works, the adaptive scheme is the default. After every batch of
//! insertions the tracker re-evaluates all pairs (against the cached
//! hulls, no cloning) and emits [`PairEvent`]s on state transitions.

use crate::adaptive::stream::AdaptiveHullConfig;
use crate::builder::SummaryBuilder;
use crate::summary::HullSummary;
use geom::{distance, ConvexPolygon, Point2};
use std::collections::BTreeMap;

/// Relationship between an ordered pair of streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PairState {
    /// At least one stream is still empty.
    Undefined,
    /// Hulls are disjoint; carries the current minimum distance.
    Separated(f64),
    /// Hulls intersect but neither contains the other.
    Intersecting,
    /// The first stream's hull contains the second's.
    Contains,
    /// The second stream's hull contains the first's.
    ContainedBy,
}

impl PairState {
    fn same_kind(&self, other: &PairState) -> bool {
        use PairState::*;
        matches!(
            (self, other),
            (Undefined, Undefined)
                | (Separated(_), Separated(_))
                | (Intersecting, Intersecting)
                | (Contains, Contains)
                | (ContainedBy, ContainedBy)
        )
    }
}

/// A state transition between two streams, reported by
/// [`MultiStreamTracker::refresh`].
#[derive(Clone, Debug, PartialEq)]
pub struct PairEvent {
    /// First stream name (lexicographically smaller).
    pub a: String,
    /// Second stream name.
    pub b: String,
    /// State before the transition.
    pub from: PairState,
    /// State after the transition.
    pub to: PairState,
    /// Stream position (total points across all streams) at the event.
    pub at: u64,
}

/// Tracks any number of named point streams and their pairwise geometric
/// relationships. The summary backend is chosen at runtime through a
/// [`SummaryBuilder`].
#[derive(Debug)]
pub struct MultiStreamTracker {
    builder: SummaryBuilder,
    streams: BTreeMap<String, Box<dyn HullSummary + Send + Sync>>,
    states: BTreeMap<(String, String), PairState>,
    total: u64,
}

impl MultiStreamTracker {
    /// Creates a tracker; every stream gets a summary built from `builder`.
    pub fn new(builder: impl Into<SummaryBuilder>) -> Self {
        MultiStreamTracker {
            builder: builder.into(),
            streams: BTreeMap::new(),
            states: BTreeMap::new(),
            total: 0,
        }
    }

    /// Convenience: adaptive summaries with this configuration (the v1
    /// constructor's signature — `AdaptiveHullConfig` converts into a
    /// `SummaryBuilder`, so `MultiStreamTracker::new(config)` also works).
    pub fn with_config(config: AdaptiveHullConfig) -> Self {
        Self::new(SummaryBuilder::from(config))
    }

    /// The builder used for new streams.
    pub fn builder(&self) -> &SummaryBuilder {
        &self.builder
    }

    /// Registers a stream (idempotent).
    pub fn add_stream(&mut self, name: &str) {
        self.streams
            .entry(name.to_string())
            .or_insert_with(|| self.builder.build());
    }

    /// Registers a stream with an already-populated summary — the bridge
    /// from governed storage ([`crate::tenant::TenantEngine`]) into the
    /// pairwise analytics here: export a set of tenants, then `refresh`.
    /// Replaces any existing summary under `name`; the tracker's total
    /// absorbs the points the summary has already consumed.
    pub fn adopt_stream(&mut self, name: &str, summary: Box<dyn HullSummary + Send + Sync>) {
        self.total += summary.points_seen();
        if let Some(old) = self.streams.insert(name.to_string(), summary) {
            self.total = self.total.saturating_sub(old.points_seen());
        }
    }

    /// Feeds one point into a stream (registering it if new).
    pub fn insert(&mut self, name: &str, p: Point2) {
        self.add_stream(name);
        self.streams.get_mut(name).unwrap().insert(p);
        self.total += 1;
    }

    /// Feeds a batch of points into a stream (registering it if new).
    pub fn insert_batch(&mut self, name: &str, points: &[Point2]) {
        self.add_stream(name);
        self.streams.get_mut(name).unwrap().insert_batch(points);
        self.total += points.len() as u64;
    }

    /// Current hull of a stream (cloned; use [`summary`](Self::summary)
    /// and `hull_ref` to avoid the copy).
    pub fn hull(&self, name: &str) -> Option<ConvexPolygon> {
        self.streams.get(name).map(|s| s.hull())
    }

    /// Borrows a stream's summary.
    pub fn summary(&self, name: &str) -> Option<&dyn HullSummary> {
        self.streams.get(name).map(|s| s.as_ref() as _)
    }

    /// Stream names.
    pub fn names(&self) -> Vec<&str> {
        self.streams.keys().map(|s| s.as_str()).collect()
    }

    /// Current state of a pair (computed fresh from the cached hulls).
    pub fn pair_state(&self, a: &str, b: &str) -> PairState {
        let (Some(sa), Some(sb)) = (self.streams.get(a), self.streams.get(b)) else {
            return PairState::Undefined;
        };
        let (ha, hb) = (sa.hull_ref(), sb.hull_ref());
        if ha.is_empty() || hb.is_empty() {
            return PairState::Undefined;
        }
        match distance::separation(ha, hb) {
            None => PairState::Undefined,
            Some(distance::Separation::Separated { distance, .. }) => {
                PairState::Separated(distance)
            }
            Some(distance::Separation::Intersecting { .. }) => {
                if distance::contains_polygon(ha, hb) {
                    PairState::Contains
                } else if distance::contains_polygon(hb, ha) {
                    PairState::ContainedBy
                } else {
                    PairState::Intersecting
                }
            }
        }
    }

    /// Re-evaluates all pairs, returning events for every state-kind
    /// transition since the previous refresh. (Distance changes within the
    /// `Separated` state update the stored value but do not emit events.)
    pub fn refresh(&mut self) -> Vec<PairEvent> {
        let names: Vec<String> = self.streams.keys().cloned().collect();
        let mut events = Vec::new();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                let key = (names[i].clone(), names[j].clone());
                let new = self.pair_state(&key.0, &key.1);
                let old = self
                    .states
                    .get(&key)
                    .copied()
                    .unwrap_or(PairState::Undefined);
                if !old.same_kind(&new) {
                    events.push(PairEvent {
                        a: key.0.clone(),
                        b: key.1.clone(),
                        from: old,
                        to: new,
                        at: self.total,
                    });
                }
                self.states.insert(key, new);
            }
        }
        events
    }

    /// Total points consumed across all streams.
    pub fn total_points(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> MultiStreamTracker {
        MultiStreamTracker::new(AdaptiveHullConfig::new(16))
    }

    fn ring(n: usize, cx: f64, cy: f64, r: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * (i as f64) * 0.618033988749895;
                Point2::new(cx + r * t.cos(), cy + r * t.sin())
            })
            .collect()
    }

    #[test]
    fn separation_lost_event() {
        let mut tr = tracker();
        for p in ring(500, -5.0, 0.0, 1.0) {
            tr.insert("a", p);
        }
        for p in ring(500, 5.0, 0.0, 1.0) {
            tr.insert("b", p);
        }
        let ev = tr.refresh();
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0].to, PairState::Separated(d) if (d - 8.0).abs() < 0.1));

        // Stream a drifts right until the hulls meet.
        for p in ring(500, 2.0, 0.0, 4.0) {
            tr.insert("a", p);
        }
        let ev = tr.refresh();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].to, PairState::Intersecting);
        assert!(matches!(ev[0].from, PairState::Separated(_)));
        assert!(tr.refresh().is_empty(), "no transition without change");
    }

    #[test]
    fn containment_event() {
        let mut tr = tracker();
        for p in ring(500, 0.0, 0.0, 1.0) {
            tr.insert("inner", p);
        }
        for p in ring(500, 0.0, 0.0, 10.0) {
            tr.insert("outer", p);
        }
        tr.refresh();
        assert_eq!(tr.pair_state("outer", "inner"), PairState::Contains);
        assert_eq!(tr.pair_state("inner", "outer"), PairState::ContainedBy);
    }

    #[test]
    fn three_streams_pairwise() {
        let mut tr = tracker();
        for p in ring(300, 0.0, 0.0, 1.0) {
            tr.insert("a", p);
        }
        for p in ring(300, 10.0, 0.0, 1.0) {
            tr.insert("b", p);
        }
        for p in ring(300, 5.0, 8.0, 1.0) {
            tr.insert("c", p);
        }
        let ev = tr.refresh();
        assert_eq!(ev.len(), 3, "three pairs all transition from Undefined");
        for e in &ev {
            assert!(matches!(e.to, PairState::Separated(_)));
        }
        assert_eq!(tr.names(), vec!["a", "b", "c"]);
        assert_eq!(tr.total_points(), 900);
    }

    #[test]
    fn works_over_any_summary_backend() {
        use crate::builder::{SummaryBuilder, SummaryKind};
        // The tracker is backend-agnostic: a uniform-summary tracker
        // reaches the same qualitative verdicts as the adaptive default.
        for kind in [
            SummaryKind::Uniform,
            SummaryKind::Exact,
            SummaryKind::Adaptive,
        ] {
            let mut tr = MultiStreamTracker::new(SummaryBuilder::new(kind).with_r(16));
            tr.insert_batch("left", &ring(300, -5.0, 0.0, 1.0));
            tr.insert_batch("right", &ring(300, 5.0, 0.0, 1.0));
            let ev = tr.refresh();
            assert_eq!(ev.len(), 1, "{kind:?}");
            assert!(
                matches!(ev[0].to, PairState::Separated(d) if (d - 8.0).abs() < 0.2),
                "{kind:?}: {:?}",
                ev[0].to
            );
            assert_eq!(tr.summary("left").unwrap().points_seen(), 300);
        }
    }

    #[test]
    fn undefined_before_points() {
        let mut tr = tracker();
        tr.add_stream("x");
        tr.add_stream("y");
        assert_eq!(tr.pair_state("x", "y"), PairState::Undefined);
        assert!(
            tr.refresh().is_empty(),
            "Undefined -> Undefined is no event"
        );
        assert_eq!(tr.pair_state("x", "nosuch"), PairState::Undefined);
    }
}
