//! Extremal queries over hull summaries (paper §6).
//!
//! Every query consumes [`ConvexPolygon`]s produced by any
//! [`HullSummary`], so exact and approximate
//! summaries are interchangeable. Costs are `O(r)` (diameter, width,
//! overlap) or `O(log r)` (directional extent, containment point tests) on
//! a size-`r` sample, matching the paper's bounds.
//!
//! With an adaptive sample of parameter `r`, all *absolute* errors are
//! `O(D/r²)` where `D` is the diameter (Theorem 5.4); the width/extent
//! caveat of §6 — the *relative* error can be poor when the extent is far
//! below `D` — is preserved and demonstrated in the integration tests.

pub mod multi;
pub mod serving;

use geom::{calipers, clip, distance, locate, ConvexPolygon, Line, Point2, Vec2};

pub use multi::{MultiStreamTracker, PairEvent, PairState};
pub use serving::{
    Estimate, JoinAnswer, JoinCertificate, JoinPair, PairAnswer, QDir, QueryCacheStats,
    QueryEngine, QueryError, TopKAnswer, TopKEntry,
};

/// Diameter of the summarised point set: the two attaining sample points
/// and their distance. `None` for fewer than 2 samples. `O(r)`.
pub fn diameter(hull: &ConvexPolygon) -> Option<(Point2, Point2, f64)> {
    calipers::diameter(hull)
}

/// Width of the summarised set (minimum distance between enclosing parallel
/// lines). `O(r)`.
pub fn width(hull: &ConvexPolygon) -> f64 {
    calipers::width(hull)
}

/// Extent of the summarised set in direction `dir`. `O(log r)`.
pub fn directional_extent(hull: &ConvexPolygon, dir: Vec2) -> f64 {
    locate::directional_extent(hull, dir)
}

/// Farthest sample point from `q` (the farthest point of a convex set from
/// any point is a vertex). `O(r)`.
pub fn farthest_point(hull: &ConvexPolygon, q: Point2) -> Option<Point2> {
    calipers::farthest_vertex(hull, q)
}

/// Smallest enclosing axis-aligned box of the sample. `O(r)`.
pub fn bounding_box(hull: &ConvexPolygon) -> Option<(Point2, Point2)> {
    calipers::bounding_box(hull)
}

/// Minimum distance between two summarised streams (0 when their hulls
/// intersect, infinite when either is empty).
pub fn min_distance(a: &ConvexPolygon, b: &ConvexPolygon) -> f64 {
    distance::min_distance(a, b)
}

/// Linear separability with a certificate: a separating [`Line`] when the
/// hulls are disjoint, or a common witness point when they are not.
pub fn separation(a: &ConvexPolygon, b: &ConvexPolygon) -> Option<distance::Separation> {
    distance::separation(a, b)
}

/// `true` iff stream `inner` is (approximately) surrounded by stream
/// `outer` — every sample point of `inner` inside `outer`'s hull. With
/// adaptive summaries the test errs by at most `O(D/r²)` on each side.
pub fn contains(outer: &ConvexPolygon, inner: &ConvexPolygon) -> bool {
    distance::contains_polygon(outer, inner)
}

/// How far `inner` sticks out of `outer` (0 when contained).
pub fn containment_violation(outer: &ConvexPolygon, inner: &ConvexPolygon) -> f64 {
    distance::containment_violation(outer, inner)
}

/// Area of the spatial overlap of two streams' hulls. `O(r·s)`.
pub fn overlap_area(a: &ConvexPolygon, b: &ConvexPolygon) -> f64 {
    clip::overlap_area(a, b)
}

/// The overlap region itself.
pub fn overlap(a: &ConvexPolygon, b: &ConvexPolygon) -> ConvexPolygon {
    clip::intersect(a, b)
}

/// `O(log r)` point membership against a summarised hull.
pub fn contains_point(hull: &ConvexPolygon, q: Point2) -> bool {
    locate::contains(hull, q)
}

/// Smallest circle containing the summarised stream (§6's closing remark).
/// Computed on the hull vertices (the minimum enclosing circle of a set is
/// determined by its hull); with an adaptive sample the radius errs by at
/// most `O(D/r²)`.
pub fn smallest_enclosing_circle(hull: &ConvexPolygon) -> Option<geom::Circle> {
    geom::min_enclosing_circle(hull.vertices())
}

/// A supporting line of the hull in direction `dir` (through the extreme
/// sample point, outward normal `dir`). `None` on an empty hull.
pub fn supporting_line(hull: &ConvexPolygon, dir: Vec2) -> Option<Line> {
    if hull.is_empty() {
        return None;
    }
    let v = hull.vertex(locate::extreme_vertex(hull, dir));
    Some(Line::supporting(v, dir))
}

// ---------------------------------------------------------------------
// Summary-level entry points: the same queries addressed directly at any
// summary chosen at runtime. They read the generation-counted cached hull
// (`hull_ref`), so issuing many queries between insertions costs one hull
// build, not one per query.
// ---------------------------------------------------------------------

use crate::summary::HullSummary;

/// [`diameter`] of any summary's current hull. `O(r)`.
pub fn summary_diameter(summary: &dyn HullSummary) -> Option<(Point2, Point2, f64)> {
    diameter(summary.hull_ref())
}

/// [`width`] of any summary's current hull. `O(r)`.
pub fn summary_width(summary: &dyn HullSummary) -> f64 {
    width(summary.hull_ref())
}

/// [`directional_extent`] of any summary's current hull. `O(log r)`.
pub fn summary_extent(summary: &dyn HullSummary, dir: Vec2) -> f64 {
    directional_extent(summary.hull_ref(), dir)
}

/// [`contains_point`] against any summary's current hull. `O(log r)`.
pub fn summary_contains_point(summary: &dyn HullSummary, q: Point2) -> bool {
    contains_point(summary.hull_ref(), q)
}

/// [`min_distance`] between two summarised streams (any kinds). `O(r+s)`.
pub fn summary_min_distance(a: &dyn HullSummary, b: &dyn HullSummary) -> f64 {
    min_distance(a.hull_ref(), b.hull_ref())
}

/// [`separation`] certificate between two summarised streams.
pub fn summary_separation(
    a: &dyn HullSummary,
    b: &dyn HullSummary,
) -> Option<distance::Separation> {
    separation(a.hull_ref(), b.hull_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::stream::AdaptiveHull;
    use crate::exact::ExactHull;
    use crate::summary::HullSummary;
    use core::f64::consts::TAU;

    fn ellipse(n: usize, a: f64, b: f64, cx: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = TAU * (i as f64) * 0.618033988749895;
                Point2::new(cx + a * t.cos(), b * t.sin())
            })
            .collect()
    }

    #[test]
    fn diameter_query_is_accurate_on_adaptive_summary() {
        let pts = ellipse(5000, 8.0, 1.0, 0.0);
        let mut a = AdaptiveHull::with_r(16);
        let mut e = ExactHull::new();
        for &q in &pts {
            a.insert(q);
            e.insert(q);
        }
        let da = diameter(&a.hull()).unwrap().2;
        let de = diameter(&e.hull()).unwrap().2;
        assert!(de >= da, "approx hull is inside");
        assert!(
            (de - da) / de < 1e-3,
            "diameter error {} too big",
            (de - da) / de
        );
    }

    #[test]
    fn width_absolute_error_is_small_relative_can_be_poor() {
        // §6's caveat demonstrated: skinny set, absolute width error is
        // O(D/r²) but that's not small *relative to the width itself* for a
        // crude uniform summary; the adaptive one does well here.
        let pts = ellipse(5000, 16.0, 0.5, 0.0);
        let mut a = AdaptiveHull::with_r(32);
        let mut e = ExactHull::new();
        for &q in &pts {
            a.insert(q);
            e.insert(q);
        }
        let wa = width(&a.hull());
        let we = width(&e.hull());
        let d = diameter(&e.hull()).unwrap().2;
        assert!(
            (we - wa).abs() <= 32.0 * d / (32.0f64 * 32.0),
            "absolute error bound"
        );
    }

    #[test]
    fn directional_extent_matches_support_difference() {
        let pts = ellipse(2000, 4.0, 2.0, 0.0);
        let mut e = ExactHull::new();
        for &q in &pts {
            e.insert(q);
        }
        let hull = e.hull();
        for k in 0..16 {
            let dir = Vec2::from_angle(TAU * k as f64 / 16.0);
            let fast = directional_extent(&hull, dir);
            let hi = hull.support(dir).unwrap();
            let lo = -hull.support(-dir).unwrap();
            assert!((fast - (hi - lo)).abs() < 1e-9, "direction {k}");
        }
    }

    #[test]
    fn separation_between_two_streams() {
        let left = ellipse(2000, 2.0, 1.0, -5.0);
        let right = ellipse(2000, 2.0, 1.0, 5.0);
        let mut ha = AdaptiveHull::with_r(16);
        let mut hb = AdaptiveHull::with_r(16);
        for (&p, &q) in left.iter().zip(&right) {
            ha.insert(p);
            hb.insert(q);
        }
        let (pa, pb) = (ha.hull(), hb.hull());
        let s = separation(&pa, &pb).unwrap();
        assert!(s.is_separated());
        // True gap is 10 - 2 - 2 = 6; approximation error is tiny.
        assert!(
            (s.distance() - 6.0).abs() < 0.1,
            "distance {}",
            s.distance()
        );
        assert!(min_distance(&pa, &pb) > 0.0);
        // Merge the streams: separation disappears.
        for &q in &right {
            ha.insert(q);
        }
        assert!(!separation(&ha.hull(), &pb).unwrap().is_separated());
    }

    #[test]
    fn containment_and_violation() {
        let inner = ellipse(2000, 1.0, 1.0, 0.0);
        let outer = ellipse(2000, 5.0, 5.0, 0.0);
        let mut hi = AdaptiveHull::with_r(16);
        let mut ho = AdaptiveHull::with_r(16);
        for (&p, &q) in inner.iter().zip(&outer) {
            hi.insert(p);
            ho.insert(q);
        }
        assert!(contains(&ho.hull(), &hi.hull()));
        // Containment means exactly zero violation, not merely small.
        assert_eq!(
            containment_violation(&ho.hull(), &hi.hull()).to_bits(),
            0.0f64.to_bits()
        );
        assert!(!contains(&hi.hull(), &ho.hull()));
        assert!(containment_violation(&hi.hull(), &ho.hull()) > 3.0);
    }

    #[test]
    fn overlap_area_of_offset_disks() {
        let a = ellipse(4000, 2.0, 2.0, 0.0);
        let b = ellipse(4000, 2.0, 2.0, 2.0);
        let mut ha = ExactHull::new();
        let mut hb = ExactHull::new();
        for (&p, &q) in a.iter().zip(&b) {
            ha.insert(p);
            hb.insert(q);
        }
        let area = overlap_area(&ha.hull(), &hb.hull());
        // Lens area of two unit-2 circles at distance 2:
        // 2 r² cos⁻¹(d/2r) - (d/2)·sqrt(4r² - d²) with r=2, d=2.
        let expect = 2.0 * 4.0 * (0.5f64).acos() - 1.0 * (16.0f64 - 4.0).sqrt();
        assert!((area - expect).abs() < 0.05, "area {area} vs lens {expect}");
    }

    #[test]
    fn smallest_enclosing_circle_tracks_exact() {
        let pts = ellipse(4000, 3.0, 1.0, 0.0);
        let mut a = AdaptiveHull::with_r(32);
        let mut e = ExactHull::new();
        for &q in &pts {
            a.insert(q);
            e.insert(q);
        }
        let ca = smallest_enclosing_circle(&a.hull()).unwrap();
        let ce = smallest_enclosing_circle(&e.hull()).unwrap();
        assert!(
            ce.radius >= ca.radius - 1e-9,
            "approx circle cannot be larger"
        );
        assert!(
            (ce.radius - ca.radius) < 0.01,
            "{} vs {}",
            ca.radius,
            ce.radius
        );
        assert!(
            (ce.radius - 3.0).abs() < 0.01,
            "ellipse MEC radius is the semi-major"
        );
        assert!(smallest_enclosing_circle(&ConvexPolygon::empty()).is_none());
    }

    #[test]
    fn supporting_line_bounds_all_samples() {
        let pts = ellipse(1000, 3.0, 1.0, 0.0);
        let mut e = ExactHull::new();
        for &q in &pts {
            e.insert(q);
        }
        let hull = e.hull();
        for k in 0..8 {
            let dir = Vec2::from_angle(TAU * k as f64 / 8.0 + 0.05);
            let line = supporting_line(&hull, dir).unwrap();
            for &v in hull.vertices() {
                assert!(line.signed_distance(v) <= 1e-9);
            }
        }
    }
}
