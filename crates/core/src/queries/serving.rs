//! The query **serving layer**: dashboard-grade analytics over a
//! [`TenantEngine`] fleet, with error intervals and a generation-keyed
//! cache.
//!
//! The per-hull functions in [`crate::queries`] answer one question about
//! one polygon. A serving deployment asks the same handful of questions
//! about thousands of streams, over and over, between sparse ingestion
//! bursts. [`QueryEngine`] closes that gap:
//!
//! * **Per-stream analytics** — [`width`](QueryEngine::width),
//!   [`diameter`](QueryEngine::diameter),
//!   [`farthest_pair`](QueryEngine::farthest_pair) and
//!   [`extent`](QueryEngine::extent) run rotating calipers directly on the
//!   summary's cached [`hull_ref`](crate::HullSummary::hull_ref), and every
//!   answer is an [`Estimate`] carrying an **error interval** derived from
//!   the summary's [`error_bound`](crate::HullSummary::error_bound) (plus
//!   any bound carried over from an overload degradation).
//! * **Cross-stream analytics** —
//!   [`top_k_extent`](QueryEngine::top_k_extent) scans the fleet with a
//!   bounding-box-pruned heap, and
//!   [`separation_join`](QueryEngine::separation_join) finds all stream
//!   pairs within a distance threshold, discharging most pairs by
//!   bbox/incircle certificates before any exact polygon distance.
//! * **Generation-keyed caching** — answers are memoised under the key
//!   `(StreamId, hull generation, query kind, quantized direction)`, where
//!   "hull generation" is the tenant's full validation token
//!   ([`TenantEngine::query_token`]: restore epoch + generation counter).
//!   The generation already advances on every hull-affecting mutation, so
//!   ingestion invalidates the cache *for free*: a stale entry simply
//!   stops matching. A repeated dashboard query on a quiet stream is one
//!   hash lookup.
//!
//! # Error-interval semantics
//!
//! Each summary's hull is built from *actual stream points*, so it is
//! contained in the true hull; diameter, width, and directional extent are
//! monotone under containment, which makes the approximate value a **lower
//! bound** on the truth. The summary's error bound `eps` bounds the
//! directed Hausdorff distance from the true hull to the sample hull, so
//! the truth can exceed the answer by at most `2·eps`. Hence every
//! [`Estimate`] satisfies `lo = value ≤ truth ≤ value + 2·eps = hi`
//! (`hi = ∞` when the backend withdraws its bound, e.g. a quarantined or
//! merged-frozen stream).
//!
//! # Cache invalidation contract
//!
//! A cached answer is served only while the stream's validation token —
//! its [`TenantEngine`] epoch paired with its
//! [`hull_generation`](crate::HullSummary::hull_generation) — equals the
//! token the answer was computed at. Any mutation that may change the
//! hull advances the generation, and any replacement of the summary
//! object (spill/restore round trips, degradation, re-admission — where
//! the generation counter is allowed to restart) advances the epoch, so
//! the serving layer never needs an explicit invalidation call — and a
//! cache hit is **bit-identical** to recomputing from the live summary
//! (directions are quantized *before* both the lookup and the
//! computation, so there is exactly one canonical answer per key).
//!
//! ```
//! use adaptive_hull::queries::serving::QueryEngine;
//! use adaptive_hull::tenant::{StreamId, TenantConfig, TenantEngine};
//! use adaptive_hull::{SummaryBuilder, SummaryKind};
//! use geom::Point2;
//!
//! let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16));
//! let mut q = QueryEngine::new(TenantEngine::new(config));
//! let id = StreamId(7);
//! q.tenants_mut()
//!     .insert_batch(id, &[Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)])
//!     .unwrap();
//!
//! let cold = q.diameter(id).unwrap().unwrap(); // computes, fills the cache
//! let warm = q.diameter(id).unwrap().unwrap(); // one hash lookup
//! assert_eq!(cold, warm, "cache hits are bit-identical");
//! assert_eq!(q.cache_stats().hits, 1);
//!
//! // Ingestion bumps the hull generation: the stale entry stops matching.
//! q.tenants_mut().insert(id, Point2::new(10.0, 0.0)).unwrap();
//! let fresh = q.diameter(id).unwrap().unwrap();
//! assert!(fresh.estimate.value > warm.estimate.value);
//! ```

use std::collections::HashMap;
use std::time::Instant;

use geom::{calipers, distance, locate, ConvexPolygon, Point2, Vec2};

use crate::batch::incircle;
use crate::fxhash::FxBuild;
use crate::telemetry::{names, Counter, Histogram, Telemetry};
use crate::tenant::{AdmissionError, StreamId, TenantEngine};

/// Number of quantized direction buckets per full turn (see [`QDir`]).
pub const DIR_BUCKETS: u16 = 4096;

/// A direction quantized to one of [`DIR_BUCKETS`] angle buckets.
///
/// Directional queries are answered for the *quantized* direction — a
/// resolution of `2π/4096 ≈ 0.0015 rad` — so that a direction is a small
/// hashable cache-key component and a cached answer is bit-identical to a
/// fresh computation for the same bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QDir(u16);

impl QDir {
    /// Quantizes `dir` to its angle bucket. `None` when `dir` is
    /// non-finite or too short to define a direction.
    pub fn quantize(dir: Vec2) -> Option<QDir> {
        if !dir.is_finite() || geom::predicates::degenerate_norm(dir.norm()) {
            return None;
        }
        let frac = dir.y.atan2(dir.x) / core::f64::consts::TAU;
        let idx = (frac * f64::from(DIR_BUCKETS)).round() as i64;
        Some(QDir(idx.rem_euclid(i64::from(DIR_BUCKETS)) as u16))
    }

    /// The canonical unit vector of this bucket. Queries are computed
    /// along this exact vector.
    pub fn unit(self) -> Vec2 {
        Vec2::from_angle(f64::from(self.0) * core::f64::consts::TAU / f64::from(DIR_BUCKETS))
    }

    /// The bucket index, in `0..DIR_BUCKETS`.
    pub fn bucket(self) -> u16 {
        self.0
    }
}

/// An analytic answer together with its error interval.
///
/// `lo ≤ truth ≤ hi`, where `truth` is the value the query would return on
/// the exact hull of *every* point the stream has seen. For the monotone
/// extent-style queries served here `lo == value` (the sample hull sits
/// inside the true hull) and `hi == value + 2·eps` from the summary's live
/// error bound; `hi == ∞` when the backend withdraws its bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The answer computed on the summary hull.
    pub value: f64,
    /// Lower end of the error interval (equals `value` for extent-style
    /// queries).
    pub lo: f64,
    /// Upper end of the error interval; `f64::INFINITY` when the summary
    /// reports no bound.
    pub hi: f64,
}

impl Estimate {
    fn from_bound(value: f64, eps: Option<f64>) -> Estimate {
        let hi = match eps {
            Some(e) if e.is_finite() && e >= 0.0 => value + 2.0 * e,
            _ => f64::INFINITY,
        };
        Estimate {
            value,
            lo: value,
            hi,
        }
    }

    /// `true` iff `truth` lies inside the closed interval `[lo, hi]`.
    pub fn contains(&self, truth: f64) -> bool {
        self.lo <= truth && truth <= self.hi
    }

    /// Width of the interval (`hi - lo`; infinite when unbounded).
    pub fn slack(&self) -> f64 {
        self.hi - self.lo
    }
}

/// A farthest-pair answer: the two attaining sample points and the
/// estimated distance between them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairAnswer {
    /// One attaining sample point.
    pub a: Point2,
    /// The other attaining sample point.
    pub b: Point2,
    /// Their distance, with the diameter error interval.
    pub estimate: Estimate,
}

/// Why a per-stream query failed.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The tenant layer refused access to the stream (unknown, quarantined,
    /// over budget, …).
    Admission(AdmissionError),
    /// The supplied direction was non-finite or too short to normalize.
    DegenerateDirection,
    /// The supplied distance threshold was NaN or negative.
    InvalidThreshold,
}

impl From<AdmissionError> for QueryError {
    fn from(e: AdmissionError) -> Self {
        QueryError::Admission(e)
    }
}

impl core::fmt::Display for QueryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueryError::Admission(e) => write!(f, "admission: {e}"),
            QueryError::DegenerateDirection => {
                write!(f, "direction is non-finite or degenerate")
            }
            QueryError::InvalidThreshold => {
                write!(f, "distance threshold must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Cache hit/miss accounting for a [`QueryEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct QueryCacheStats {
    /// Answers served straight from the generation-keyed cache.
    pub hits: u64,
    /// Answers computed on the summary hull (and then cached).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// One ranked stream in a [`TopKAnswer`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopKEntry {
    /// The stream.
    pub id: StreamId,
    /// Its directional extent along the quantized query direction.
    pub estimate: Estimate,
}

/// Result of a [`QueryEngine::top_k_extent`] fleet scan.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKAnswer {
    /// The `k` (or fewer) largest streams by extent, descending; ties
    /// broken by ascending [`StreamId`] for determinism.
    pub entries: Vec<TopKEntry>,
    /// Streams examined.
    pub scanned: u64,
    /// Streams discharged by the bbox upper bound without an exact extent
    /// computation.
    pub pruned: u64,
    /// Streams skipped because the tenant layer refused access (e.g.
    /// quarantined).
    pub skipped: u64,
}

/// How a [`JoinPair`]'s distance was established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinCertificate {
    /// The streams' inscribed circles overlap, so the hulls intersect and
    /// the distance is exactly zero — no polygon distance was computed.
    IncircleOverlap,
    /// Exact polygon-to-polygon distance.
    Exact,
}

/// One qualifying pair from a [`QueryEngine::separation_join`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinPair {
    /// Lower stream id of the pair.
    pub a: StreamId,
    /// Higher stream id of the pair.
    pub b: StreamId,
    /// Distance between the two summary hulls (0 when they intersect).
    pub distance: f64,
    /// How the distance was established.
    pub certificate: JoinCertificate,
}

/// Result of a [`QueryEngine::separation_join`] over all stream pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinAnswer {
    /// All pairs within the threshold, ordered by `(a, b)`.
    pub pairs: Vec<JoinPair>,
    /// Pairs examined (`s·(s-1)/2` over accessible streams).
    pub scanned_pairs: u64,
    /// Pairs discharged because the bbox gap (a lower bound on the hull
    /// distance) already exceeds the threshold.
    pub bbox_rejects: u64,
    /// Pairs accepted by the inscribed-circle overlap certificate.
    pub incircle_accepts: u64,
    /// Pairs that needed an exact polygon distance.
    pub exact_tests: u64,
    /// Streams skipped because the tenant layer refused access.
    pub skipped: u64,
}

/// Query kinds, used as cache-key components and telemetry labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum KindKey {
    Width,
    Diameter,
    Extent(QDir),
    BBox,
    Incircle,
}

impl KindKey {
    fn label_index(self) -> usize {
        match self {
            KindKey::Width => 0,
            KindKey::Diameter => 1,
            KindKey::Extent(_) => 2,
            KindKey::BBox => 3,
            KindKey::Incircle => 4,
        }
    }
}

const KIND_LABELS: [&str; 5] = ["width", "diameter", "extent", "bbox", "incircle"];

#[derive(Clone, Copy, Debug, PartialEq)]
enum CachedValue {
    Width(Estimate),
    Diameter(Option<PairAnswer>),
    Extent(Estimate),
    BBox(Option<(Point2, Point2)>),
    Incircle(Option<(Point2, f64)>),
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    /// [`TenantEngine::query_token`] at fill time: `(epoch, generation)`.
    token: (u64, u64),
    value: CachedValue,
}

struct Instruments {
    answers: [Counter; 5],
    cache_hits: Counter,
    cache_misses: Counter,
    latency_ns: Histogram,
    topk_scanned: Counter,
    topk_pruned: Counter,
    join_bbox_rejects: Counter,
    join_incircle_accepts: Counter,
    join_exact: Counter,
}

impl Instruments {
    fn bind(tel: &Telemetry) -> Instruments {
        let answer = |kind: &str| tel.counter(names::QUERY_ANSWERS, &[("kind", kind)]);
        Instruments {
            answers: [
                answer(KIND_LABELS[0]),
                answer(KIND_LABELS[1]),
                answer(KIND_LABELS[2]),
                answer(KIND_LABELS[3]),
                answer(KIND_LABELS[4]),
            ],
            cache_hits: tel.counter(names::QUERY_CACHE_HITS, &[]),
            cache_misses: tel.counter(names::QUERY_CACHE_MISSES, &[]),
            latency_ns: tel.histogram(names::QUERY_LATENCY_NS, &[]),
            topk_scanned: tel.counter(names::QUERY_TOPK_SCANNED, &[]),
            topk_pruned: tel.counter(names::QUERY_TOPK_PRUNED, &[]),
            join_bbox_rejects: tel.counter(names::QUERY_JOIN_PAIRS, &[("outcome", "bbox_reject")]),
            join_incircle_accepts: tel
                .counter(names::QUERY_JOIN_PAIRS, &[("outcome", "incircle_accept")]),
            join_exact: tel.counter(names::QUERY_JOIN_PAIRS, &[("outcome", "exact")]),
        }
    }
}

/// The serving layer: cached, error-bounded analytics over a
/// [`TenantEngine`] fleet. See the [module docs](self) for the full
/// contract and an example.
pub struct QueryEngine {
    tenants: TenantEngine,
    cache: HashMap<(StreamId, KindKey), Slot, FxBuild>,
    hits: u64,
    misses: u64,
    tel: Instruments,
}

impl QueryEngine {
    /// Wraps `tenants`, inheriting its [`Telemetry`] handle for the query
    /// counters, cache hit/miss counters, and latency histogram.
    pub fn new(tenants: TenantEngine) -> QueryEngine {
        let tel = Instruments::bind(&tenants.config().telemetry());
        QueryEngine {
            tenants,
            cache: HashMap::default(),
            hits: 0,
            misses: 0,
            tel,
        }
    }

    /// The governed fleet underneath.
    pub fn tenants(&self) -> &TenantEngine {
        &self.tenants
    }

    /// Mutable access for ingestion. Safe to interleave freely with
    /// queries: every hull-affecting mutation advances that stream's
    /// generation, which is part of the cache key.
    pub fn tenants_mut(&mut self) -> &mut TenantEngine {
        &mut self.tenants
    }

    /// Unwraps the serving layer, returning the fleet.
    pub fn into_tenants(self) -> TenantEngine {
        self.tenants
    }

    /// Cache accounting since construction (or the last
    /// [`flush_cache`](QueryEngine::flush_cache) does not reset counts).
    pub fn cache_stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.cache.len(),
        }
    }

    /// Drops every cached answer, returning how many entries were
    /// resident. Queries after a flush recompute from the live summaries —
    /// by construction they return bit-identical answers.
    pub fn flush_cache(&mut self) -> usize {
        let n = self.cache.len();
        self.cache.clear();
        n
    }

    /// Serves `kind` for `id` from the cache, or computes it with
    /// `compute` on the stream's current hull and caches it under the
    /// stream's current generation.
    fn serve(
        &mut self,
        id: StreamId,
        kind: KindKey,
        compute: impl FnOnce(&ConvexPolygon, Option<f64>) -> CachedValue,
    ) -> Result<CachedValue, QueryError> {
        let timer = self.tel.latency_ns.enabled().then(Instant::now);
        self.tel.answers[kind.label_index()].inc();
        // The hit path reads only the stream's validation token (an index
        // lookup): the error bound (O(r) for some backends) and the hull
        // are a miss's cost.
        let token = self.tenants.query_token(id)?;
        let key = (id, kind);
        if let Some(slot) = self.cache.get(&key) {
            if slot.token == token {
                let value = slot.value;
                self.hits += 1;
                self.tel.cache_hits.inc();
                if let Some(t) = timer {
                    self.tel.latency_ns.record(t.elapsed().as_nanos() as u64);
                }
                return Ok(value);
            }
        }
        // `error_bound` composes the backend's own live bound with any
        // bound carried over from an overload degradation — the honest
        // number for the interval.
        let eps = self.tenants.error_bound(id)?;
        let summary = self.tenants.summary(id)?;
        let value = compute(summary.hull_ref(), eps);
        self.misses += 1;
        self.tel.cache_misses.inc();
        self.cache.insert(key, Slot { token, value });
        if let Some(t) = timer {
            self.tel.latency_ns.record(t.elapsed().as_nanos() as u64);
        }
        Ok(value)
    }

    /// Width of the summarised stream (minimum distance between enclosing
    /// parallel lines), with its error interval. Degenerate streams
    /// (empty, point, collinear) have width exactly `0.0`. Cached; `O(r)`
    /// cold, `O(1)` warm.
    pub fn width(&mut self, id: StreamId) -> Result<Estimate, QueryError> {
        match self.serve(id, KindKey::Width, |hull, eps| {
            CachedValue::Width(Estimate::from_bound(calipers::width(hull), eps))
        })? {
            CachedValue::Width(e) => Ok(e),
            _ => Err(QueryError::Admission(AdmissionError::UnknownStream {
                stream: id,
            })),
        }
    }

    /// Diameter of the summarised stream with its error interval, or
    /// `None` when the stream has no points. Cached; `O(r)` cold.
    pub fn diameter(&mut self, id: StreamId) -> Result<Option<PairAnswer>, QueryError> {
        match self.serve(id, KindKey::Diameter, |hull, eps| {
            CachedValue::Diameter(calipers::diameter(hull).map(|(a, b, d)| PairAnswer {
                a,
                b,
                estimate: Estimate::from_bound(d, eps),
            }))
        })? {
            CachedValue::Diameter(p) => Ok(p),
            _ => Err(QueryError::Admission(AdmissionError::UnknownStream {
                stream: id,
            })),
        }
    }

    /// The two sample points realising the stream's diameter (the rotating
    /// calipers antipodal pair). Alias of [`diameter`](QueryEngine::diameter)
    /// — both share one cache slot.
    pub fn farthest_pair(&mut self, id: StreamId) -> Result<Option<PairAnswer>, QueryError> {
        self.diameter(id)
    }

    /// Directional extent of the stream along `dir`, with its error
    /// interval. The direction is quantized to a [`QDir`] bucket first;
    /// the answer is exact for the bucket's canonical unit vector. Cached
    /// per bucket; `O(log r)` cold, `O(1)` warm.
    pub fn extent(&mut self, id: StreamId, dir: Vec2) -> Result<Estimate, QueryError> {
        let q = QDir::quantize(dir).ok_or(QueryError::DegenerateDirection)?;
        self.extent_q(id, q)
    }

    /// [`extent`](QueryEngine::extent) for an already-quantized direction.
    pub fn extent_q(&mut self, id: StreamId, q: QDir) -> Result<Estimate, QueryError> {
        let unit = q.unit();
        match self.serve(id, KindKey::Extent(q), |hull, eps| {
            CachedValue::Extent(Estimate::from_bound(
                locate::directional_extent(hull, unit),
                eps,
            ))
        })? {
            CachedValue::Extent(e) => Ok(e),
            _ => Err(QueryError::Admission(AdmissionError::UnknownStream {
                stream: id,
            })),
        }
    }

    /// Axis-aligned bounding box of the summarised stream, or `None` when
    /// empty. Each side can undershoot the true stream's box by at most
    /// the stream's error bound. Cached; also the pruning certificate for
    /// the fleet scans.
    pub fn bounding_box(&mut self, id: StreamId) -> Result<Option<(Point2, Point2)>, QueryError> {
        match self.serve(id, KindKey::BBox, |hull, _| {
            CachedValue::BBox(calipers::bounding_box(hull))
        })? {
            CachedValue::BBox(b) => Ok(b),
            _ => Err(QueryError::Admission(AdmissionError::UnknownStream {
                stream: id,
            })),
        }
    }

    fn incircle_of(&mut self, id: StreamId) -> Result<Option<(Point2, f64)>, QueryError> {
        match self.serve(id, KindKey::Incircle, |hull, _| {
            CachedValue::Incircle(incircle(hull))
        })? {
            CachedValue::Incircle(c) => Ok(c),
            _ => Err(QueryError::Admission(AdmissionError::UnknownStream {
                stream: id,
            })),
        }
    }

    /// The `k` streams with the largest directional extent along `dir`
    /// (quantized to a [`QDir`] bucket).
    ///
    /// The scan first computes every stream's bbox **upper bound** on the
    /// extent (one cached-bbox lookup each), visits candidates in
    /// descending bound order with a running top-`k` heap, and stops the
    /// moment the next bound cannot beat the current `k`-th value — every
    /// remaining stream is discharged without an exact extent computation.
    /// The pruning never changes the answer, only the work. Inaccessible
    /// streams (quarantined, …) are skipped and counted. Ties at the
    /// `k`-th place are broken by ascending stream id.
    pub fn top_k_extent(&mut self, dir: Vec2, k: usize) -> Result<TopKAnswer, QueryError> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let q = QDir::quantize(dir).ok_or(QueryError::DegenerateDirection)?;
        let unit = q.unit();
        let mut ids: Vec<StreamId> = self.tenants.ids().collect();
        ids.sort_unstable();
        let mut answer = TopKAnswer {
            entries: Vec::new(),
            scanned: 0,
            pruned: 0,
            skipped: 0,
        };
        if k == 0 {
            return Ok(answer);
        }
        // Pass 1: bbox upper bounds. Extent along `unit` of anything
        // inside a box is at most the box's own extent along `unit`; an
        // empty stream has extent 0 and bound 0.
        let mut candidates: Vec<(f64, StreamId)> = Vec::with_capacity(ids.len());
        for id in ids {
            answer.scanned += 1;
            match self.bounding_box(id) {
                Ok(Some((lo, hi))) => {
                    let ub = unit.x.abs() * (hi.x - lo.x) + unit.y.abs() * (hi.y - lo.y);
                    candidates.push((ub, id));
                }
                Ok(None) => candidates.push((0.0, id)),
                Err(_) => answer.skipped += 1,
            }
        }
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        // Pass 2: exact extents in descending bound order. Min-heap of the
        // current top-k, keyed by (value, id) with total_cmp — ordering is
        // total, deterministic, and NaN-free (extents of finite hulls are
        // finite).
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::with_capacity(k + 1);
        for (rank, &(ub, id)) in candidates.iter().enumerate() {
            if heap.len() == k {
                if let Some(Reverse(worst)) = heap.peek() {
                    if ub < worst.value {
                        // Bounds only shrink from here: everything left is
                        // discharged at once.
                        answer.pruned += (candidates.len() - rank) as u64;
                        break;
                    }
                }
            }
            match self.extent_q(id, q) {
                Ok(estimate) => {
                    heap.push(Reverse(HeapEntry {
                        value: estimate.value,
                        id,
                        estimate,
                    }));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
                Err(_) => answer.skipped += 1,
            }
        }
        self.tel.topk_scanned.add(answer.scanned);
        self.tel.topk_pruned.add(answer.pruned);
        let mut ranked: Vec<HeapEntry> = heap.into_iter().map(|Reverse(e)| e).collect();
        ranked.sort_by(|a, b| b.value.total_cmp(&a.value).then_with(|| a.id.cmp(&b.id)));
        answer.entries = ranked
            .into_iter()
            .map(|e| TopKEntry {
                id: e.id,
                estimate: e.estimate,
            })
            .collect();
        Ok(answer)
    }

    /// All stream pairs whose summary hulls are within `max_distance` of
    /// each other, with the distance and the certificate that established
    /// it.
    ///
    /// Certificates discharge pairs before any exact `O(r·s)` polygon
    /// distance: the bbox gap is a lower bound on the hull distance
    /// (reject when it already exceeds the threshold), and overlapping
    /// inscribed circles prove intersection (accept at distance zero).
    /// Neither certificate can drop a qualifying pair. Pairs are reported
    /// with `a < b`, ordered lexicographically.
    pub fn separation_join(&mut self, max_distance: f64) -> Result<JoinAnswer, QueryError> {
        if !max_distance.is_finite() || max_distance < 0.0 {
            return Err(QueryError::InvalidThreshold);
        }
        let mut ids: Vec<StreamId> = self.tenants.ids().collect();
        ids.sort_unstable();
        let mut answer = JoinAnswer {
            pairs: Vec::new(),
            scanned_pairs: 0,
            bbox_rejects: 0,
            incircle_accepts: 0,
            exact_tests: 0,
            skipped: 0,
        };
        // Phase 1: per-stream certificates (cached across generations).
        struct Cert {
            id: StreamId,
            bbox: Option<(Point2, Point2)>,
            incircle: Option<(Point2, f64)>,
        }
        let mut certs: Vec<Cert> = Vec::with_capacity(ids.len());
        for id in ids {
            let bbox = match self.bounding_box(id) {
                Ok(b) => b,
                Err(_) => {
                    answer.skipped += 1;
                    continue;
                }
            };
            let incircle = self.incircle_of(id).unwrap_or(None);
            certs.push(Cert { id, bbox, incircle });
        }
        // Phase 2: certificate pass over pairs; collect survivors.
        let mut survivors: Vec<(StreamId, StreamId)> = Vec::new();
        for i in 0..certs.len() {
            for j in (i + 1)..certs.len() {
                answer.scanned_pairs += 1;
                let (ca, cb) = (&certs[i], &certs[j]);
                let (Some(ba), Some(bb)) = (ca.bbox, cb.bbox) else {
                    // An empty stream is infinitely far from everything.
                    answer.bbox_rejects += 1;
                    continue;
                };
                let gap = bbox_gap(ba, bb);
                if gap > max_distance {
                    answer.bbox_rejects += 1;
                    continue;
                }
                if let (Some((c1, r1sq)), Some((c2, r2sq))) = (ca.incircle, cb.incircle) {
                    if c1.distance(c2) <= r1sq.sqrt() + r2sq.sqrt() {
                        answer.incircle_accepts += 1;
                        answer.pairs.push(JoinPair {
                            a: ca.id,
                            b: cb.id,
                            distance: 0.0,
                            certificate: JoinCertificate::IncircleOverlap,
                        });
                        continue;
                    }
                }
                survivors.push((ca.id, cb.id));
            }
        }
        // Phase 3: exact polygon distance only for the survivors.
        let mut hulls: HashMap<StreamId, ConvexPolygon> = HashMap::new();
        for &(a, b) in &survivors {
            for id in [a, b] {
                if let std::collections::hash_map::Entry::Vacant(slot) = hulls.entry(id) {
                    if let Ok(h) = self.tenants.hull(id) {
                        slot.insert(h);
                    }
                }
            }
        }
        for (a, b) in survivors {
            let (Some(ha), Some(hb)) = (hulls.get(&a), hulls.get(&b)) else {
                answer.skipped += 1;
                continue;
            };
            answer.exact_tests += 1;
            let d = distance::min_distance(ha, hb);
            if d <= max_distance {
                answer.pairs.push(JoinPair {
                    a,
                    b,
                    distance: d,
                    certificate: JoinCertificate::Exact,
                });
            }
        }
        answer.pairs.sort_by_key(|p| (p.a, p.b));
        self.tel.join_bbox_rejects.add(answer.bbox_rejects);
        self.tel.join_incircle_accepts.add(answer.incircle_accepts);
        self.tel.join_exact.add(answer.exact_tests);
        Ok(answer)
    }
}

#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    value: f64,
    id: StreamId,
    estimate: Estimate,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.value.total_cmp(&other.value).is_eq() && self.id == other.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Larger value = better; on ties the *smaller* id wins, so it must
        // rank higher (and survive the min-heap pop) — hence the reverse
        // id comparison.
        self.value
            .total_cmp(&other.value)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Distance between two axis-aligned boxes (0 when they touch or
/// overlap) — a lower bound on the distance between anything inside them.
fn bbox_gap(a: (Point2, Point2), b: (Point2, Point2)) -> f64 {
    let dx = (b.0.x - a.1.x).max(a.0.x - b.1.x).max(0.0);
    let dy = (b.0.y - a.1.y).max(a.0.y - b.1.y).max(0.0);
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SummaryBuilder, SummaryKind};
    use crate::tenant::TenantConfig;

    fn engine(kind: SummaryKind) -> QueryEngine {
        QueryEngine::new(TenantEngine::new(TenantConfig::new(
            SummaryBuilder::new(kind).with_r(16),
        )))
    }

    fn ring(cx: f64, cy: f64, radius: f64, n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / n as f64;
                Point2::new(cx + radius * t.cos(), cy + radius * t.sin())
            })
            .collect()
    }

    #[test]
    fn qdir_round_trips_and_rejects_degenerate() {
        let q = QDir::quantize(Vec2::new(1.0, 1.0)).unwrap();
        assert_eq!(q.bucket(), DIR_BUCKETS / 8);
        assert!((q.unit().norm() - 1.0).abs() < 1e-12);
        assert!(QDir::quantize(Vec2::new(0.0, 0.0)).is_none());
        assert!(QDir::quantize(Vec2::new(f64::NAN, 1.0)).is_none());
        // Quantizing a bucket's own unit vector is a fixed point.
        for b in [0u16, 1, 17, 1024, 4095] {
            let q = QDir(b);
            assert_eq!(QDir::quantize(q.unit()), Some(q), "bucket {b}");
        }
    }

    #[test]
    fn cached_answers_are_bit_identical_and_invalidate_on_ingest() {
        let mut q = engine(SummaryKind::Adaptive);
        let id = StreamId(3);
        q.tenants_mut()
            .insert_batch(id, &ring(0.0, 0.0, 2.0, 64))
            .unwrap();

        let cold = q.width(id).unwrap();
        let stats = q.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let warm = q.width(id).unwrap();
        assert_eq!(cold.value.to_bits(), warm.value.to_bits());
        assert_eq!(cold.hi.to_bits(), warm.hi.to_bits());
        assert_eq!(q.cache_stats().hits, 1);

        // A hull-changing insert must invalidate.
        q.tenants_mut().insert(id, Point2::new(10.0, 0.0)).unwrap();
        let fresh = q.width(id).unwrap();
        assert_eq!(q.cache_stats().misses, 2);
        // Flush + recompute is bit-identical to the generation-keyed miss.
        q.flush_cache();
        let reference = q.width(id).unwrap();
        assert_eq!(fresh.value.to_bits(), reference.value.to_bits());
    }

    #[test]
    fn spill_restore_cannot_alias_a_stale_cache_entry() {
        let mut q = engine(SummaryKind::Adaptive);
        let id = StreamId(9);
        q.tenants_mut()
            .insert_batch(id, &ring(0.0, 0.0, 1.0, 32))
            .unwrap();
        let before = q.width(id).unwrap();
        assert_eq!(q.cache_stats().misses, 1);
        // A spill/restore round trip replaces the summary object, and the
        // snapshot contract allows its generation counter to restart — so
        // only the epoch half of the validation token keeps the old slot
        // from aliasing a later state at a coincidentally equal counter.
        assert!(q.tenants_mut().spill(id));
        q.tenants_mut().insert(id, Point2::new(50.0, 0.0)).unwrap();
        let after = q.width(id).unwrap();
        assert_eq!(
            q.cache_stats().misses,
            2,
            "post-restore query must miss, never alias the stale slot"
        );
        assert!(after.value >= before.value, "hull only grows on insert");
    }

    #[test]
    fn intervals_bracket_the_exact_stream_truth() {
        let mut q = engine(SummaryKind::Adaptive);
        let id = StreamId(1);
        let pts = ring(0.0, 0.0, 3.0, 500);
        q.tenants_mut().insert_batch(id, &pts).unwrap();
        // The exact-stream truth, from the full hull of every point.
        let truth = ConvexPolygon::hull_of(&pts);
        let true_d = calipers::diameter(&truth).unwrap().2;
        let true_w = calipers::width(&truth);
        let d = q.diameter(id).unwrap().unwrap();
        assert!(d.estimate.lo <= d.estimate.value);
        assert!(d.estimate.hi >= d.estimate.value);
        assert!(
            d.estimate.contains(true_d),
            "diameter {true_d} in {:?}",
            d.estimate
        );
        let w = q.width(id).unwrap();
        assert!(w.contains(true_w), "width {true_w} in {w:?}");
        let e = q.extent(id, Vec2::new(1.0, 0.0)).unwrap();
        let qd = QDir::quantize(Vec2::new(1.0, 0.0)).unwrap();
        let true_e = locate::directional_extent(&truth, qd.unit());
        assert!(e.contains(true_e), "x-extent {true_e} in {e:?}");
    }

    #[test]
    fn farthest_pair_is_the_diameter_pair() {
        let mut q = engine(SummaryKind::Exact);
        let id = StreamId(9);
        q.tenants_mut()
            .insert_batch(
                id,
                &[
                    Point2::new(0.0, 0.0),
                    Point2::new(3.0, 4.0),
                    Point2::new(1.0, 0.0),
                ],
            )
            .unwrap();
        let d = q.diameter(id).unwrap().unwrap();
        let f = q.farthest_pair(id).unwrap().unwrap();
        assert_eq!(d, f);
        assert!((d.estimate.value - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_missing_streams() {
        let mut q = engine(SummaryKind::Adaptive);
        // Unknown stream: typed error, no panic.
        assert!(matches!(
            q.width(StreamId(404)),
            Err(QueryError::Admission(_))
        ));
        // Stream with no hull yet (registered via empty batch).
        let id = StreamId(5);
        q.tenants_mut().insert_batch(id, &[]).unwrap();
        assert_eq!(q.diameter(id).unwrap(), None);
        assert_eq!(q.bounding_box(id).unwrap(), None);
        let w = q.width(id).unwrap();
        assert_eq!(w.value.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn degenerate_direction_is_a_typed_error() {
        let mut q = engine(SummaryKind::Adaptive);
        let id = StreamId(1);
        q.tenants_mut().insert(id, Point2::new(1.0, 1.0)).unwrap();
        assert_eq!(
            q.extent(id, Vec2::new(0.0, 0.0)),
            Err(QueryError::DegenerateDirection)
        );
        assert_eq!(
            q.top_k_extent(Vec2::new(f64::INFINITY, 0.0), 3),
            Err(QueryError::DegenerateDirection)
        );
        assert_eq!(
            q.separation_join(f64::NAN),
            Err(QueryError::InvalidThreshold)
        );
        assert_eq!(q.separation_join(-1.0), Err(QueryError::InvalidThreshold));
    }

    #[test]
    fn top_k_matches_unpruned_scan() {
        let mut q = engine(SummaryKind::Adaptive);
        // 40 rings of growing radius along the x axis.
        for i in 0..40u64 {
            let r = 0.5 + i as f64 * 0.1;
            q.tenants_mut()
                .insert_batch(StreamId(i), &ring(i as f64 * 10.0, 0.0, r, 48))
                .unwrap();
        }
        let dir = Vec2::new(0.3, 1.0);
        let top = q.top_k_extent(dir, 5).unwrap();
        assert_eq!(top.entries.len(), 5);
        assert_eq!(top.scanned, 40);
        // Reference: rank by exact per-stream extent.
        let qd = QDir::quantize(dir).unwrap();
        let mut all: Vec<(StreamId, f64)> = (0..40u64)
            .map(|i| {
                let id = StreamId(i);
                (id, q.extent_q(id, qd).unwrap().value)
            })
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (entry, expect) in top.entries.iter().zip(&all) {
            assert_eq!(entry.id, expect.0);
            assert_eq!(entry.estimate.value.to_bits(), expect.1.to_bits());
        }
        // Largest radii win: streams 39, 38, ...
        assert_eq!(top.entries[0].id, StreamId(39));
        // The scan must have pruned something on this workload once warm.
        let again = q.top_k_extent(dir, 5).unwrap();
        assert_eq!(again.entries, top.entries);
        assert!(again.pruned > 0, "bbox pruning engaged: {again:?}");
    }

    #[test]
    fn separation_join_finds_exactly_the_close_pairs() {
        let mut q = engine(SummaryKind::Exact);
        // Three clusters: 0 and 1 overlap, 2 is 1 apart from 1, 3 is far.
        q.tenants_mut()
            .insert_batch(StreamId(0), &ring(0.0, 0.0, 1.0, 32))
            .unwrap();
        q.tenants_mut()
            .insert_batch(StreamId(1), &ring(1.0, 0.0, 1.0, 32))
            .unwrap();
        q.tenants_mut()
            .insert_batch(StreamId(2), &ring(4.0, 0.0, 1.0, 32))
            .unwrap();
        q.tenants_mut()
            .insert_batch(StreamId(3), &ring(100.0, 0.0, 1.0, 32))
            .unwrap();
        let join = q.separation_join(1.5).unwrap();
        let pairs: Vec<(StreamId, StreamId)> = join.pairs.iter().map(|p| (p.a, p.b)).collect();
        assert_eq!(
            pairs,
            vec![(StreamId(0), StreamId(1)), (StreamId(1), StreamId(2)),]
        );
        assert_eq!(join.scanned_pairs, 6);
        assert!(join.bbox_rejects >= 2, "far pairs discharged by bbox");
        // The overlapping pair is certified without exact distance.
        let overlap = &join.pairs[0];
        assert_eq!(overlap.certificate, JoinCertificate::IncircleOverlap);
        assert_eq!(overlap.distance.to_bits(), 0.0f64.to_bits());
        // The 1-apart pair needed the exact test: gap = 4 - 1 - 1 - 1 = 1.
        let near = &join.pairs[1];
        assert_eq!(near.certificate, JoinCertificate::Exact);
        assert!((near.distance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_counts_queries_and_cache_outcomes() {
        let tel = Telemetry::new();
        let config = TenantConfig::new(SummaryBuilder::new(SummaryKind::Adaptive).with_r(16))
            .with_telemetry(tel);
        let mut q = QueryEngine::new(TenantEngine::new(config));
        let id = StreamId(1);
        q.tenants_mut()
            .insert_batch(id, &ring(0.0, 0.0, 1.0, 32))
            .unwrap();
        q.width(id).unwrap();
        q.width(id).unwrap();
        q.diameter(id).unwrap();
        let scrape = tel.scrape();
        assert_eq!(scrape.counter_total(names::QUERY_CACHE_MISSES), 2);
        assert_eq!(scrape.counter_total(names::QUERY_CACHE_HITS), 1);
        assert_eq!(
            scrape.counter_with(names::QUERY_ANSWERS, &[("kind", "width")]),
            Some(2)
        );
        assert_eq!(
            scrape.counter_with(names::QUERY_ANSWERS, &[("kind", "diameter")]),
            Some(1)
        );
    }
}
