//! SVG rendering of hulls, sample directions and uncertainty triangles —
//! enough to regenerate the paper's Fig. 10 (adaptive vs uniform hulls of
//! the rotated ellipse, with radial sample directions and solid uncertainty
//! triangles over the data).
//!
//! No drawing dependencies: the scene renders to a plain SVG string.

use geom::{ConvexPolygon, Point2, Segment, UncertaintyTriangle};
use std::fmt::Write as _;

/// A drawable item.
#[derive(Clone, Debug)]
enum Item {
    Points {
        pts: Vec<Point2>,
        radius: f64,
        color: String,
    },
    Polygon {
        poly: ConvexPolygon,
        stroke: String,
        fill: String,
        width: f64,
    },
    Segments {
        segs: Vec<Segment>,
        color: String,
        width: f64,
    },
    Triangles {
        tris: Vec<UncertaintyTriangle>,
        fill: String,
    },
    Label {
        at: Point2,
        text: String,
        size: f64,
    },
}

/// An SVG scene in data coordinates; the viewport is fitted automatically.
#[derive(Clone, Debug, Default)]
pub struct Scene {
    items: Vec<Item>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a point cloud.
    pub fn points(&mut self, pts: &[Point2], radius: f64, color: &str) -> &mut Self {
        self.items.push(Item::Points {
            pts: pts.to_vec(),
            radius,
            color: color.into(),
        });
        self
    }

    /// Adds a polygon outline (pass `"none"` for no fill).
    pub fn polygon(
        &mut self,
        poly: &ConvexPolygon,
        stroke: &str,
        fill: &str,
        width: f64,
    ) -> &mut Self {
        self.items.push(Item::Polygon {
            poly: poly.clone(),
            stroke: stroke.into(),
            fill: fill.into(),
            width,
        });
        self
    }

    /// Adds line segments (e.g. radial sample directions).
    pub fn segments(&mut self, segs: &[Segment], color: &str, width: f64) -> &mut Self {
        self.items.push(Item::Segments {
            segs: segs.to_vec(),
            color: color.into(),
            width,
        });
        self
    }

    /// Adds filled uncertainty triangles.
    pub fn triangles(&mut self, tris: &[UncertaintyTriangle], fill: &str) -> &mut Self {
        self.items.push(Item::Triangles {
            tris: tris.to_vec(),
            fill: fill.into(),
        });
        self
    }

    /// Adds a text label at a data coordinate.
    pub fn label(&mut self, at: Point2, text: &str, size: f64) -> &mut Self {
        self.items.push(Item::Label {
            at,
            text: text.into(),
            size,
        });
        self
    }

    fn bounds(&self) -> Option<(Point2, Point2)> {
        let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        let mut upd = |p: Point2| {
            any = true;
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        };
        for item in &self.items {
            match item {
                Item::Points { pts, .. } => pts.iter().copied().for_each(&mut upd),
                Item::Polygon { poly, .. } => poly.vertices().iter().copied().for_each(&mut upd),
                Item::Segments { segs, .. } => segs.iter().for_each(|s| {
                    upd(s.a);
                    upd(s.b);
                }),
                Item::Triangles { tris, .. } => tris.iter().for_each(|t| {
                    upd(t.base.a);
                    upd(t.base.b);
                    if let Some(x) = t.apex {
                        upd(x);
                    }
                }),
                Item::Label { at, .. } => upd(*at),
            }
        }
        any.then_some((min, max))
    }

    /// Renders the scene to an SVG string with the given pixel width.
    pub fn to_svg(&self, px_width: f64) -> String {
        let (min, max) = match self.bounds() {
            Some(b) => b,
            None => {
                return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\"/>"
                    .to_string()
            }
        };
        let w = (max.x - min.x).max(1e-9);
        let h = (max.y - min.y).max(1e-9);
        let margin = 0.05 * w.max(h);
        let scale = px_width / (w + 2.0 * margin);
        let px_height = (h + 2.0 * margin) * scale;
        // SVG y grows downward: flip.
        let tx = |p: Point2| -> (f64, f64) {
            (
                ((p.x - min.x) + margin) * scale,
                px_height - ((p.y - min.y) + margin) * scale,
            )
        };

        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.1}\" height=\"{:.1}\" \
             viewBox=\"0 0 {:.1} {:.1}\">",
            px_width, px_height, px_width, px_height
        );
        let _ = writeln!(out, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>");
        for item in &self.items {
            match item {
                Item::Points { pts, radius, color } => {
                    let _ = writeln!(out, "<g fill=\"{color}\">");
                    for &p in pts {
                        let (x, y) = tx(p);
                        let _ = writeln!(
                            out,
                            "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"{:.2}\"/>",
                            radius * scale
                        );
                    }
                    let _ = writeln!(out, "</g>");
                }
                Item::Polygon {
                    poly,
                    stroke,
                    fill,
                    width,
                } => {
                    if poly.is_empty() {
                        continue;
                    }
                    let pts: Vec<String> = poly
                        .vertices()
                        .iter()
                        .map(|&p| {
                            let (x, y) = tx(p);
                            format!("{x:.2},{y:.2}")
                        })
                        .collect();
                    let _ = writeln!(
                        out,
                        "<polygon points=\"{}\" fill=\"{fill}\" stroke=\"{stroke}\" \
                         stroke-width=\"{:.2}\"/>",
                        pts.join(" "),
                        width * scale
                    );
                }
                Item::Segments { segs, color, width } => {
                    let _ = writeln!(
                        out,
                        "<g stroke=\"{color}\" stroke-width=\"{:.2}\">",
                        width * scale
                    );
                    for s in segs {
                        let (x1, y1) = tx(s.a);
                        let (x2, y2) = tx(s.b);
                        let _ = writeln!(
                            out,
                            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\"/>"
                        );
                    }
                    let _ = writeln!(out, "</g>");
                }
                Item::Triangles { tris, fill } => {
                    let _ = writeln!(out, "<g fill=\"{fill}\">");
                    for t in tris {
                        let Some(apex) = t.apex else { continue };
                        let (x1, y1) = tx(t.base.a);
                        let (x2, y2) = tx(t.base.b);
                        let (x3, y3) = tx(apex);
                        let _ = writeln!(
                            out,
                            "<polygon points=\"{x1:.2},{y1:.2} {x2:.2},{y2:.2} {x3:.2},{y3:.2}\"/>"
                        );
                    }
                    let _ = writeln!(out, "</g>");
                }
                Item::Label { at, text, size } => {
                    let (x, y) = tx(*at);
                    let _ = writeln!(
                        out,
                        "<text x=\"{x:.1}\" y=\"{y:.1}\" font-size=\"{:.1}\" \
                         font-family=\"sans-serif\">{text}</text>",
                        size * scale
                    );
                }
            }
        }
        out.push_str("</svg>\n");
        out
    }
}

/// Renders the Fig.-10-style comparison for a summary: data points,
/// approximate hull, radial sample directions, and uncertainty triangles.
pub fn hull_figure(
    data: &[Point2],
    hull: &ConvexPolygon,
    triangles: &[UncertaintyTriangle],
    title: &str,
) -> String {
    let mut scene = Scene::new();
    scene.points(data, 0.002 * figure_extent(data), "#9db8d9");
    scene.triangles(triangles, "rgba(200,60,60,0.55)");
    scene.polygon(hull, "#203050", "none", 0.003 * figure_extent(data));
    if let Some(c) = hull.centroid() {
        // Radial "sample direction" spokes from the centroid to each vertex.
        let segs: Vec<Segment> = hull
            .vertices()
            .iter()
            .map(|&v| Segment::new(c, v))
            .collect();
        scene.segments(&segs, "#b0b0b0", 0.0015 * figure_extent(data));
    }
    if let Some((min, _)) = scene.bounds() {
        scene.label(min, title, 0.03 * figure_extent(data));
    }
    scene.to_svg(900.0)
}

fn figure_extent(data: &[Point2]) -> f64 {
    let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &p in data {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    ((max.x - min.x).max(max.y - min.y)).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Vec2;

    #[test]
    fn empty_scene_renders() {
        let svg = Scene::new().to_svg(100.0);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn scene_contains_expected_elements() {
        let poly = ConvexPolygon::hull_of(&[
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(2.0, 3.0),
        ]);
        let tri = UncertaintyTriangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Vec2::from_angle(2.0),
            Vec2::from_angle(1.0),
        );
        let mut s = Scene::new();
        s.points(&[Point2::new(1.0, 1.0)], 0.05, "red")
            .polygon(&poly, "black", "none", 0.02)
            .segments(
                &[Segment::new(Point2::ORIGIN, Point2::new(1.0, 0.0))],
                "gray",
                0.01,
            )
            .triangles(&[tri], "rgba(255,0,0,0.4)")
            .label(Point2::new(0.0, 3.0), "hello", 0.2);
        let svg = s.to_svg(400.0);
        assert!(svg.contains("<circle"));
        assert!(svg.matches("<polygon").count() >= 2);
        assert!(svg.contains("<line"));
        assert!(svg.contains("hello"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn figure_helper_produces_svg() {
        let data: Vec<Point2> = (0..100)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / 100.0;
                Point2::new(3.0 * t.cos(), t.sin())
            })
            .collect();
        let hull = ConvexPolygon::hull_of(&data);
        let svg = hull_figure(&data, &hull, &[], "test figure");
        assert!(svg.contains("test figure"));
        assert!(svg.len() > 1000);
    }
}
