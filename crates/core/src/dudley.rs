//! A static Dudley-style ε-kernel (the technique behind the core-set
//! algorithms of Agarwal–Har-Peled–Varadarajan and Chan, §1.2), included as
//! a comparison point for the static adaptive scheme of §4.
//!
//! Dudley's construction: place `m` evenly spaced anchor points on a circle
//! of radius `2·radius(S)` around the set, and for each anchor keep its
//! nearest neighbour in `S` (we use the nearest *hull vertex*, which is
//! equivalent for extent purposes). The resulting subset has Hausdorff
//! error `O(D/m²)` — the same asymptotics as adaptive sampling, but as a
//! global, offline technique with a larger constant and no streaming story,
//! which is exactly the contrast the paper draws.

use core::f64::consts::TAU;
use geom::{ConvexPolygon, Point2, Vec2};

/// Result of the Dudley construction.
#[derive(Clone, Debug)]
pub struct DudleyKernel {
    /// The selected subset (distinct hull vertices of the input).
    pub points: Vec<Point2>,
    /// The anchors used (for visualisation/diagnostics).
    pub anchors: Vec<Point2>,
}

impl DudleyKernel {
    /// Convex hull of the kernel.
    pub fn hull(&self) -> ConvexPolygon {
        ConvexPolygon::hull_of(&self.points)
    }

    /// Number of distinct kernel points.
    pub fn sample_size(&self) -> usize {
        self.points.len()
    }
}

/// Computes a Dudley kernel of `points` with `m` anchors.
///
/// Returns `None` on empty input. Degenerate inputs (all points equal or
/// collinear) return their exact hull vertices.
pub fn dudley_kernel(points: &[Point2], m: u32) -> Option<DudleyKernel> {
    if points.is_empty() {
        return None;
    }
    let hull = ConvexPolygon::hull_of(points);
    if hull.len() <= 2 {
        return Some(DudleyKernel {
            points: hull.vertices().to_vec(),
            anchors: Vec::new(),
        });
    }
    let c = hull.centroid().expect("non-degenerate hull has a centroid");
    let radius = hull
        .vertices()
        .iter()
        .map(|&v| c.distance(v))
        .fold(0.0f64, f64::max);
    let anchor_radius = 2.0 * radius.max(f64::MIN_POSITIVE);

    let mut selected: Vec<Point2> = Vec::with_capacity(m as usize);
    let mut anchors = Vec::with_capacity(m as usize);
    // Exact per-anchor scan. (A greedy walk from the previous anchor's
    // answer is tempting but wrong: vertex distance from an exterior
    // point is *not* cyclically unimodal — a thin hull has one local
    // minimum per chain, and the walk can stop on the wrong chain.)
    let verts = hull.vertices();
    for i in 0..m {
        let theta = TAU * i as f64 / m as f64;
        let anchor = c + Vec2::from_angle(theta) * anchor_radius;
        anchors.push(anchor);
        let nearest = verts
            .iter()
            .copied()
            .min_by(|a, b| anchor.distance_sq(*a).total_cmp(&anchor.distance_sq(*b)))
            .unwrap();
        selected.push(nearest);
    }
    selected.sort_by(|a, b| a.lex_cmp(*b));
    selected.dedup();
    Some(DudleyKernel {
        points: selected,
        anchors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle(n: usize, r: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = TAU * i as f64 / n as f64;
                Point2::new(r * t.cos(), r * t.sin())
            })
            .collect()
    }

    #[test]
    fn kernel_is_subset_with_bounded_error() {
        let pts = circle(5000, 3.0);
        let truth = ConvexPolygon::hull_of(&pts);
        let k = dudley_kernel(&pts, 64).unwrap();
        assert!(k.sample_size() <= 64);
        for p in &k.points {
            assert!(pts.contains(p));
        }
        let err = k.hull().directed_hausdorff_from(&truth);
        let d = 6.0;
        assert!(
            err <= 8.0 * d / (64.0 * 64.0) * 20.0,
            "error {err} too large"
        );
    }

    #[test]
    fn quadratic_decay() {
        let pts = circle(20000, 1.0);
        let truth = ConvexPolygon::hull_of(&pts);
        let errs: Vec<f64> = [16u32, 32, 64, 128]
            .iter()
            .map(|&m| {
                dudley_kernel(&pts, m)
                    .unwrap()
                    .hull()
                    .directed_hausdorff_from(&truth)
            })
            .collect();
        for w in errs.windows(2) {
            assert!(w[0] / w[1] > 2.0, "expected ~quadratic decay, got {errs:?}");
        }
    }

    #[test]
    fn thin_hull_selects_true_nearest_vertices() {
        // Regression: a thin vertical hull has one distance local-minimum
        // per chain, so any local-descent shortcut for the nearest-vertex
        // search picks the wrong chain. Verify every selected point is the
        // exact argmin for its anchor.
        let pts: Vec<Point2> = (0..11)
            .flat_map(|i| {
                let y = i as f64 - 5.0;
                [Point2::new(-0.005, y), Point2::new(0.005, y)]
            })
            .collect();
        let k = dudley_kernel(&pts, 2).unwrap();
        let hull = ConvexPolygon::hull_of(&pts);
        for anchor in &k.anchors {
            let best = hull
                .vertices()
                .iter()
                .map(|&v| anchor.distance_sq(v))
                .fold(f64::INFINITY, f64::min);
            assert!(
                k.points
                    .iter()
                    .any(|&p| anchor.distance_sq(p) <= best + 1e-12),
                "anchor {anchor:?}: kernel lost its true nearest vertex"
            );
        }
        // The two anchors sit east and west: the kernel must contain a
        // vertex from each chain (x < 0 and x > 0).
        assert!(k.points.iter().any(|p| p.x < 0.0));
        assert!(k.points.iter().any(|p| p.x > 0.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(dudley_kernel(&[], 16).is_none());
        let one = dudley_kernel(&[Point2::new(1.0, 1.0)], 16).unwrap();
        assert_eq!(one.sample_size(), 1);
        let seg: Vec<Point2> = (0..9).map(|i| Point2::new(i as f64, 0.0)).collect();
        let k = dudley_kernel(&seg, 16).unwrap();
        assert_eq!(k.sample_size(), 2);
    }
}
