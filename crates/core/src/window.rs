//! Sliding-window hull summaries: extent queries over the *recent* part
//! of a stream, for any [`SummaryKind`](crate::builder::SummaryKind).
//!
//! The whole-stream summaries in this crate never forget: their hulls
//! describe everything ever seen. Production traffic overwhelmingly asks
//! windowed questions instead — "the extent of the last `N` points", "the
//! diameter over the last `T` seconds". A hull summary cannot *delete* a
//! point, so [`WindowedSummary`] takes the classic synopsis route of
//! Datar–Gionis–Indyk–Motwani **exponential histograms**: it keeps a chain
//! of closed summaries ("buckets"), each covering a contiguous span of the
//! stream, with bucket spans growing geometrically towards the past.
//! Whole buckets expire as the window slides; only the oldest live bucket
//! can straddle the window boundary, so a window answer is exact about
//! *which recent points it covers* up to that one bucket — the reported
//! **staleness bound**.
//!
//! Concretely, for a chain with `k` buckets per size class and sealing
//! granularity `g` (points per freshest bucket):
//!
//! * inserts cost the underlying summary's insert plus **amortized O(1)**
//!   bucket merges (a merge re-inserts a bucket's ≤ `2r + 1` stored points
//!   into its older neighbour);
//! * the chain holds `O(k · log(W / g))` buckets for a window covering `W`
//!   points, each an independent [`Mergeable`] summary built by the same
//!   [`SummaryBuilder`] — so every backend, exact through cluster, windows
//!   through one code path;
//! * [`query_window`](WindowedSummary::query_window) merges the live
//!   buckets (oldest → newest) into a fresh collector of the same kind and
//!   reports the hull together with a **composed error bound** (the sum of
//!   the buckets' live bounds and accumulated merge debts plus the
//!   collector's own bound — the same composition the sharded engine's
//!   [`ShardRun`](crate::parallel::ShardRun) uses) and the staleness
//!   bound: at most `stale_points` points older than the window (reaching
//!   back at most `stale_duration` before it) may have been included.
//!   Raising `k` or lowering `g` tightens staleness at the price of more
//!   buckets.
//!
//! Windowed summaries compose with sharded ingestion: see
//! [`ShardedIngest::run_stream_windowed`](crate::parallel::ShardedIngest::run_stream_windowed),
//! which keeps one windowed summary per shard and merges their live
//! buckets **in shard order** at query time (PR 3's determinism contract).

use crate::builder::SummaryBuilder;
use crate::summary::{GenCache, HullCache, HullSummary, Mergeable};
use crate::telemetry::{names, Counter, Gauge, Telemetry};
use geom::{ConvexPolygon, Point2};
use std::collections::VecDeque;

/// The chain's registered instruments (all `Copy` no-ops until a
/// [`Telemetry`] handle is attached via
/// [`WindowedSummary::with_telemetry`]).
#[derive(Clone, Copy, Debug)]
struct WindowInstruments {
    seals: Counter,
    merges: Counter,
    expiries: Counter,
    staleness: Gauge,
}

impl WindowInstruments {
    const fn noop() -> Self {
        WindowInstruments {
            seals: Counter::noop(),
            merges: Counter::noop(),
            expiries: Counter::noop(),
            staleness: Gauge::noop(),
        }
    }

    fn register(telemetry: Telemetry) -> Self {
        WindowInstruments {
            seals: telemetry.counter(names::WINDOW_SEALS, &[]),
            merges: telemetry.counter(names::WINDOW_MERGES, &[]),
            expiries: telemetry.counter(names::WINDOW_EXPIRIES, &[]),
            staleness: telemetry.gauge(names::WINDOW_STALENESS, &[]),
        }
    }
}

/// Which trailing part of the stream a window covers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WindowPolicy {
    /// The last `n` stream points (count-based window).
    LastN(u64),
    /// Every point whose timestamp `t` satisfies `t >= now - dur`, where
    /// `now` is the newest timestamp seen (time-based window). Timestamps
    /// are supplied via [`WindowedSummary::insert_at`] /
    /// [`insert_batch_at`](WindowedSummary::insert_batch_at) and must be
    /// non-decreasing; the plain [`insert`](HullSummary::insert) path
    /// auto-ticks the clock by 1 per point.
    LastDur(f64),
}

/// Configuration of a [`WindowedSummary`]: the window policy plus the two
/// knobs of the exponential-histogram chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowConfig {
    /// The window policy (count- or time-based).
    pub policy: WindowPolicy,
    /// Maximum buckets per size class before the two oldest of that class
    /// merge (the exponential histogram's `k`). Larger `k` means more,
    /// finer buckets: staleness shrinks, memory and query cost grow.
    pub buckets_per_level: usize,
    /// Points gathered into the freshest bucket before it is sealed (the
    /// chain's granularity `g`). Smaller `g` means finer staleness at the
    /// newest end and more frequent seals.
    pub granularity: usize,
}

impl WindowConfig {
    /// A count-based window over the last `n` points (`n >= 1`), with the
    /// default chain shape (`k = 2`, `g = 64`).
    pub fn last_n(n: u64) -> Self {
        assert!(n >= 1, "window must cover at least one point");
        WindowConfig {
            policy: WindowPolicy::LastN(n),
            buckets_per_level: 2,
            granularity: 64,
        }
    }

    /// A time-based window over the last `dur` time units (`dur > 0`),
    /// with the default chain shape (`k = 2`, `g = 64`).
    pub fn last_dur(dur: f64) -> Self {
        assert!(
            dur > 0.0 && dur.is_finite(),
            "window duration must be positive and finite"
        );
        WindowConfig {
            policy: WindowPolicy::LastDur(dur),
            buckets_per_level: 2,
            granularity: 64,
        }
    }

    /// Sets the buckets-per-size-class cap `k` (`>= 1`).
    pub fn with_buckets_per_level(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one bucket per level");
        self.buckets_per_level = k;
        self
    }

    /// Sets the sealing granularity `g` (`>= 1` points per fresh bucket).
    pub fn with_granularity(mut self, g: usize) -> Self {
        assert!(g >= 1, "granularity must be at least one point");
        self.granularity = g;
        self
    }
}

/// The per-shard window configuration of a sharded run on the global
/// tick clock: a count window over distinct integer ticks is the
/// half-open tick interval `(now - n, now]`, carried as a duration
/// window with `-0.5` to exclude the boundary tick. Shared by
/// [`ShardedIngest::run_stream_windowed`](crate::parallel::ShardedIngest::run_stream_windowed)
/// and the supervised engine in [`crate::recovery`] so a recovered shard
/// windows exactly like an uninterrupted one.
pub(crate) fn shard_window_config(config: WindowConfig) -> WindowConfig {
    match config.policy {
        WindowPolicy::LastN(n) => WindowConfig {
            policy: WindowPolicy::LastDur(n as f64 - 0.5),
            ..config
        },
        WindowPolicy::LastDur(_) => config,
    }
}

/// One closed span of the stream: an independent summary of `count`
/// points whose timestamps lie in `[t_first, t_last]`.
#[derive(Debug)]
struct Bucket {
    summary: Box<dyn Mergeable + Send + Sync>,
    count: u64,
    t_first: f64,
    t_last: f64,
    /// Exponential-histogram size class: a sealed bucket at level `l`
    /// covers `g · 2^l` points (the open head is level 0 and partial).
    level: u32,
    /// Error-bound debt inherited from buckets merged away into this one:
    /// the sum of their composed bounds at merge time. `None` once any
    /// absorbed part had no live bound (frozen / cluster backends).
    debt: Option<f64>,
}

impl Bucket {
    /// The bucket's composed bound: inherited debt plus its summary's
    /// live bound. `None` if either is unavailable.
    fn composed_bound(&self) -> Option<f64> {
        match (self.debt, self.summary.error_bound()) {
            (Some(d), Some(b)) => Some(d + b),
            _ => None,
        }
    }
}

/// Aggregate report of one window query: the merged collector summary plus
/// the bookkeeping needed to interpret it honestly.
///
/// The collector's hull covers **every** in-window point the chain has
/// retained and at most [`stale_points`](WindowAnswer::stale_points)
/// points older than the window (none older than
/// [`stale_duration`](WindowAnswer::stale_duration) before the window
/// start) — stale points can only *enlarge* the reported hull, never lose
/// a recent point.
#[derive(Debug)]
#[must_use = "a window answer carries the merged summary and its error/staleness bounds"]
pub struct WindowAnswer {
    /// The collector: a fresh summary of the configured kind that absorbed
    /// every live bucket, oldest to newest (and in shard order for sharded
    /// windows).
    pub summary: Box<dyn Mergeable + Send + Sync>,
    /// Stream points covered by the merged buckets (in-window points plus
    /// at most [`stale_points`](WindowAnswer::stale_points) stale ones).
    pub merged_points: u64,
    /// Upper bound on merged points that are *older* than the window (the
    /// straddling-bucket slack; `0` means the answer covers exactly the
    /// window).
    pub stale_points: u64,
    /// Upper bound on how far (in time units) before the window start the
    /// merged data may reach. `0` when no bucket straddles the boundary.
    pub stale_duration: f64,
    /// Live buckets merged into the collector.
    pub buckets: usize,
    /// Sum of the merged buckets' composed error bounds (their live bounds
    /// plus accumulated merge debt); `None` when any bucket's backend
    /// reports no bound. Add the collector's own live bound — which
    /// [`error_bound`](WindowAnswer::error_bound) does — for the guarantee
    /// of the reported hull against the true hull of the covered points.
    pub bucket_bound_sum: Option<f64>,
}

impl WindowAnswer {
    /// The window hull (borrowing the collector's generation-counted
    /// cache).
    pub fn hull(&self) -> &ConvexPolygon {
        self.summary.hull_ref()
    }

    /// The composed error guarantee of [`hull`](WindowAnswer::hull)
    /// against the true convex hull of the covered points: the sum of the
    /// live buckets' composed bounds plus the collector's own live bound.
    /// `None` when the backend reports no bound (frozen, cluster).
    #[must_use]
    pub fn error_bound(&self) -> Option<f64> {
        match (self.bucket_bound_sum, self.summary.error_bound()) {
            (Some(parts), Some(own)) => Some(parts + own),
            _ => None,
        }
    }

    /// Lower bound on how many *in-window* points the answer covers.
    #[must_use]
    pub fn window_points(&self) -> u64 {
        self.merged_points.saturating_sub(self.stale_points)
    }

    /// `true` when the window covered no points at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.merged_points == 0
    }
}

/// Accumulator threaded through per-shard merges by
/// [`WindowedRun::query_window`](crate::parallel::WindowedRun); the
/// single-summary query uses it with one shard.
#[derive(Debug, Default)]
struct MergeStats {
    merged_points: u64,
    stale_points: u64,
    stale_duration: f64,
    buckets: usize,
    bound_sum: Option<f64>,
}

impl MergeStats {
    fn new() -> Self {
        MergeStats {
            bound_sum: Some(0.0),
            ..Default::default()
        }
    }

    fn add_bucket(&mut self, b: &Bucket) {
        self.merged_points += b.count;
        self.buckets += 1;
        self.bound_sum = match (self.bound_sum, b.composed_bound()) {
            (Some(acc), Some(bb)) => Some(acc + bb),
            _ => None,
        };
    }

    /// Packages the accumulated bookkeeping with the collector that
    /// absorbed the buckets (shared by the standalone and sharded query
    /// paths).
    fn into_answer(self, collector: Box<dyn Mergeable + Send + Sync>) -> WindowAnswer {
        WindowAnswer {
            summary: collector,
            merged_points: self.merged_points,
            stale_points: self.stale_points,
            stale_duration: self.stale_duration,
            buckets: self.buckets,
            bucket_bound_sum: self.bound_sum,
        }
    }
}

/// A sliding-window wrapper around any
/// [`SummaryKind`](crate::builder::SummaryKind): ingest a stream once,
/// answer extent/diameter/width queries about only its recent part.
///
/// Construct through [`SummaryBuilder::windowed`]:
///
/// ```
/// use adaptive_hull::window::WindowConfig;
/// use adaptive_hull::{HullSummary, SummaryBuilder, SummaryKind};
/// use geom::Point2;
///
/// let mut w = SummaryBuilder::new(SummaryKind::Adaptive)
///     .with_r(16)
///     .windowed(WindowConfig::last_n(1000).with_granularity(100));
/// for i in 0..5000 {
///     let t = i as f64 * 0.01;
///     w.insert(Point2::new(t.cos() + i as f64 * 0.001, t.sin()));
/// }
/// let ans = w.query_window();
/// assert!(ans.window_points() >= 1000); // covers the whole window
/// assert!(ans.stale_points <= 400);     // ... plus bounded slack
/// assert!(ans.hull().len() >= 3);
/// ```
///
/// `WindowedSummary` also implements [`HullSummary`] itself —
/// [`hull_ref`](HullSummary::hull_ref) is the *window* hull (rebuilt
/// lazily per generation), **not** the whole-stream hull; `points_seen`
/// still counts the whole stream. That makes windowed summaries drop-in
/// sources for the §6 query layer.
#[derive(Debug)]
pub struct WindowedSummary {
    builder: SummaryBuilder,
    config: WindowConfig,
    /// Sealed buckets plus (at the back, when `head_open`) the open head;
    /// oldest at the front, levels non-increasing front to back.
    buckets: VecDeque<Bucket>,
    head_open: bool,
    /// Newest timestamp seen (`-inf` before the first point).
    clock: f64,
    /// Total stream points ever consumed (also the auto-tick source).
    total_seen: u64,
    cache: HullCache,
    bound_cache: GenCache<Option<f64>>,
    /// Reusable buffer for stripping timestamps off `(Point2, f64)`
    /// batches ([`insert_batch_timestamped`](WindowedSummary::insert_batch_timestamped)).
    scratch: Vec<Point2>,
    /// Chain lifecycle instruments (no-ops unless attached).
    instruments: WindowInstruments,
}

impl WindowedSummary {
    /// A windowed summary whose buckets (and query collectors) are built
    /// by `builder`.
    pub fn new(builder: SummaryBuilder, config: WindowConfig) -> Self {
        // Re-validate (config may have been built literally).
        match config.policy {
            WindowPolicy::LastN(n) => assert!(n >= 1, "window must cover at least one point"),
            WindowPolicy::LastDur(d) => {
                assert!(d > 0.0 && d.is_finite(), "window duration must be positive")
            }
        }
        assert!(config.buckets_per_level >= 1 && config.granularity >= 1);
        WindowedSummary {
            builder,
            config,
            buckets: VecDeque::new(),
            head_open: false,
            clock: f64::NEG_INFINITY,
            total_seen: 0,
            cache: HullCache::new(),
            bound_cache: GenCache::new(),
            scratch: Vec::new(),
            instruments: WindowInstruments::noop(),
        }
    }

    /// Attaches an observability handle: the chain then counts head
    /// seals, carry merges, and expiries, and publishes the staleness of
    /// the oldest retained bucket (in ticks) as a gauge after every
    /// expiry sweep.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.instruments = WindowInstruments::register(telemetry);
        self
    }

    /// The window configuration.
    #[must_use]
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// The per-bucket summary configuration.
    #[must_use]
    pub fn builder(&self) -> SummaryBuilder {
        self.builder
    }

    /// Live buckets currently in the chain (`O(k · log(W/g))`).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The newest timestamp seen, or `None` before the first point.
    #[must_use]
    pub fn now(&self) -> Option<f64> {
        (self.total_seen > 0).then_some(self.clock)
    }

    /// Feeds one point stamped `t`. Timestamps must be non-decreasing;
    /// panics otherwise (a windowed summary cannot travel back in time).
    ///
    /// A non-finite point is dropped entirely — it is not counted and
    /// does not advance the window clock (see [`HullSummary`] on
    /// non-finite inputs).
    pub fn insert_at(&mut self, p: Point2, t: f64) {
        if !p.is_finite() {
            return;
        }
        self.feed_with(&[p], &|_| t);
        self.expire();
        self.cache.invalidate();
    }

    /// Feeds a batch of points that all arrived at time `t` (one sensor
    /// flush). Observably identical to `for p in pts { insert_at(p, t) }`,
    /// including dropping non-finite points.
    pub fn insert_batch_at(&mut self, pts: &[Point2], t: f64) {
        if pts.iter().any(|p| !p.is_finite()) {
            let finite: Vec<Point2> = pts.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch_at(&finite, t);
            return;
        }
        if pts.is_empty() {
            return;
        }
        self.feed_with(pts, &|_| t);
        self.expire();
        self.cache.invalidate();
    }

    /// Feeds a batch of individually timestamped points (the sharded
    /// dispatcher's entry point). Timestamps must be non-decreasing, both
    /// within the slice and against earlier inserts. Observably identical
    /// to `for (p, t) in pts { insert_at(p, t) }`.
    pub fn insert_batch_timestamped(&mut self, pts: &[(Point2, f64)]) {
        if pts.iter().any(|(p, _)| !p.is_finite()) {
            // A dropped point's `insert_at` is a full no-op, so its
            // timestamp never reaches the monotonicity check either.
            let finite: Vec<(Point2, f64)> =
                pts.iter().copied().filter(|(p, _)| p.is_finite()).collect();
            self.insert_batch_timestamped(&finite);
            return;
        }
        if pts.is_empty() {
            return;
        }
        assert!(
            pts.windows(2).all(|w| w[0].1 <= w[1].1),
            "timestamps must be non-decreasing within the batch"
        );
        // Strip the timestamps into the reusable scratch buffer so the
        // sharded dispatch path stays allocation-free per chunk.
        let mut points = std::mem::take(&mut self.scratch);
        points.clear();
        points.extend(pts.iter().map(|&(p, _)| p));
        self.feed_with(&points, &|i| pts[i].1);
        self.scratch = points;
        self.expire();
        self.cache.invalidate();
    }

    /// Feeds `pts` with consecutive auto-tick timestamps (1 tick per
    /// point), the windowed analogue of
    /// [`insert_batch`](HullSummary::insert_batch).
    fn insert_batch_ticked(&mut self, pts: &[Point2]) {
        if pts.is_empty() {
            return;
        }
        let start = self.next_tick();
        self.feed_with(pts, &|i| start + i as f64);
        self.expire();
        self.cache.invalidate();
    }

    /// The timestamp the auto-tick path assigns to the next point.
    fn next_tick(&self) -> f64 {
        if self.total_seen == 0 {
            0.0
        } else {
            self.clock + 1.0
        }
    }

    /// Core ingestion: feed `pts`, point `i` stamped `time_of(i)`
    /// (non-decreasing), splitting across head-bucket seals. The chain
    /// produced is a pure function of the point/timestamp sequence —
    /// batch boundaries never show (seals fire at the same counts, with
    /// the same clock, as the per-point loop; see the window proptests).
    fn feed_with(&mut self, pts: &[Point2], time_of: &dyn Fn(usize) -> f64) {
        let t_first = time_of(0);
        assert!(
            t_first.is_finite() && time_of(pts.len() - 1).is_finite(),
            "timestamps must be finite"
        );
        assert!(
            self.total_seen == 0 || t_first >= self.clock,
            "timestamps must be non-decreasing (got {t_first} after {})",
            self.clock
        );
        let g = self.config.granularity as u64;
        let mut rest = pts;
        let mut idx = 0usize; // points of `pts` already consumed
        while !rest.is_empty() {
            if !self.head_open {
                self.buckets.push_back(Bucket {
                    summary: self.builder.build_mergeable(),
                    count: 0,
                    t_first: time_of(idx),
                    t_last: time_of(idx),
                    level: 0,
                    debt: Some(0.0),
                });
                self.head_open = true;
            }
            let head = self.buckets.back_mut().expect("head just ensured");
            let room = (g - head.count) as usize;
            let take = room.min(rest.len());
            let (piece, tail) = rest.split_at(take);
            // Feed through the backend's batched fast path (`piece`
            // borrows the caller's slice, not `self`, so no copy needed).
            head.summary.insert_batch(piece);
            head.count += take as u64;
            head.t_last = time_of(idx + take - 1);
            self.total_seen += take as u64;
            self.clock = head.t_last;
            rest = tail;
            idx += take;
            if head.count == g {
                // Seal: the head becomes a closed level-0 bucket; restore
                // the exponential-histogram invariant. Expire first so the
                // carry never merges a bucket the per-point loop would
                // already have dropped (the expiry-races-batch-boundary
                // case).
                self.head_open = false;
                self.instruments.seals.inc();
                self.expire();
                self.carry();
            }
        }
    }

    /// Restores the invariant "at most `k` sealed buckets per level" by
    /// merging the two oldest buckets of an overfull level (amortized O(1)
    /// merges per insert, the exponential-histogram argument).
    fn carry(&mut self) {
        let k = self.config.buckets_per_level;
        let mut level = 0u32;
        loop {
            let sealed = self.buckets.len() - usize::from(self.head_open);
            // Levels are non-increasing front to back, so buckets of
            // `level` form one contiguous run; find it.
            let mut first = None;
            let mut count = 0usize;
            for (i, b) in self.buckets.iter().take(sealed).enumerate() {
                if b.level == level {
                    if first.is_none() {
                        first = Some(i);
                    }
                    count += 1;
                }
            }
            let Some(first) = first else { break };
            if count <= k {
                break;
            }
            // Merge the second-oldest of the run into the oldest: the
            // older bucket absorbs the newer one's stored sample and
            // inherits its bound debt.
            let absorbed = self.buckets.remove(first + 1).expect("run has >= 2");
            self.instruments.merges.inc();
            let survivor = &mut self.buckets[first];
            let absorbed_bound = absorbed.composed_bound();
            survivor.summary.merge_from(absorbed.summary.as_ref());
            survivor.count += absorbed.count;
            survivor.t_last = absorbed.t_last;
            survivor.level += 1;
            survivor.debt = match (survivor.debt, absorbed_bound) {
                (Some(d), Some(b)) => Some(d + b),
                _ => None,
            };
            level += 1;
        }
    }

    /// Drops buckets that lie entirely outside the window (from the
    /// oldest end; the straddling bucket stays — that is the staleness).
    fn expire(&mut self) {
        match self.config.policy {
            WindowPolicy::LastN(n) => {
                let mut total: u64 = self.buckets.iter().map(|b| b.count).sum();
                while let Some(front) = self.buckets.front() {
                    let is_head = self.head_open && self.buckets.len() == 1;
                    if !is_head && total - front.count >= n {
                        total -= front.count;
                        self.buckets.pop_front();
                        self.instruments.expiries.inc();
                    } else {
                        break;
                    }
                }
            }
            WindowPolicy::LastDur(d) => {
                let start = self.clock - d;
                while let Some(front) = self.buckets.front() {
                    let is_head = self.head_open && self.buckets.len() == 1;
                    if !is_head && front.t_last < start {
                        self.buckets.pop_front();
                        self.instruments.expiries.inc();
                    } else {
                        break;
                    }
                }
            }
        }
        if let Some(front) = self.buckets.front() {
            // How far the chain reaches behind `now`: the retained tail
            // the straddling bucket drags along (the staleness bound's
            // raw material). Saturating f64→i64 cast, so an absurd clock
            // clamps instead of wrapping.
            self.instruments
                .staleness
                .set((self.clock - front.t_first) as i64);
        }
    }

    /// Merges this chain's live buckets (w.r.t. the window anchored at
    /// `now`) into `collector`, oldest to newest, accumulating the answer
    /// bookkeeping. Shared by the standalone and sharded query paths.
    fn merge_window_into(&self, now: f64, collector: &mut dyn Mergeable, stats: &mut MergeStats) {
        if self.total_seen == 0 {
            return;
        }
        match self.config.policy {
            WindowPolicy::LastN(n) => {
                // Expiry keeps the chain minimal, so every bucket is live;
                // only the front one can straddle the count boundary.
                let total: u64 = self.buckets.iter().map(|b| b.count).sum();
                let stale = total.saturating_sub(n);
                if stale > 0 {
                    stats.stale_points += stale;
                    if let Some(front) = self.buckets.front() {
                        // The true window start lies inside the front
                        // bucket, whose span bounds the extra time.
                        stats.stale_duration =
                            stats.stale_duration.max(front.t_last - front.t_first);
                    }
                }
                for b in &self.buckets {
                    collector.merge_from(b.summary.as_ref());
                    stats.add_bucket(b);
                }
            }
            WindowPolicy::LastDur(d) => {
                let start = now - d;
                for b in &self.buckets {
                    if b.t_last < start {
                        continue; // expired w.r.t. a newer (global) clock
                    }
                    if b.t_first < start {
                        // Straddling: everything but the point at `t_last`
                        // may be stale, reaching back to `t_first`.
                        stats.stale_points += b.count.saturating_sub(1);
                        stats.stale_duration = stats.stale_duration.max(start - b.t_first);
                    }
                    collector.merge_from(b.summary.as_ref());
                    stats.add_bucket(b);
                }
            }
        }
    }

    /// Answers the window query: merges the live buckets into a fresh
    /// collector of the configured kind and reports the hull with its
    /// composed error bound and staleness bound. `O(buckets · r)` — cheap
    /// next to ingestion; for repeated between-insert queries prefer
    /// [`hull_ref`](HullSummary::hull_ref), which caches per generation.
    pub fn query_window(&self) -> WindowAnswer {
        let mut collector = self.builder.build_mergeable();
        let mut stats = MergeStats::new();
        self.merge_window_into(self.clock, collector.as_mut(), &mut stats);
        stats.into_answer(collector)
    }

    /// Points currently stored across the chain (the window's memory
    /// footprint in points).
    fn stored_points(&self) -> usize {
        self.buckets.iter().map(|b| b.summary.sample_size()).sum()
    }

    /// Snapshot payload: the builder and window configuration, the chain
    /// clock/accounting, and every bucket — each bucket's summary sealed
    /// with the same envelope codec
    /// ([`Mergeable::encode_snapshot`]), its span metadata
    /// (`count`, `t_first`, `t_last`, level, error debt) preserved so a
    /// restored chain seals, carries, and expires at exactly the same
    /// instants as the original.
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_bytes, put_f64, put_u32, put_u64, put_u8};
        self.builder.snapshot_payload(out);
        match self.config.policy {
            WindowPolicy::LastN(n) => {
                put_u8(out, 0);
                put_u64(out, n);
            }
            WindowPolicy::LastDur(d) => {
                put_u8(out, 1);
                put_f64(out, d);
            }
        }
        put_u64(out, self.config.buckets_per_level as u64);
        put_u64(out, self.config.granularity as u64);
        put_u8(out, self.head_open as u8);
        put_f64(out, self.clock);
        put_u64(out, self.total_seen);
        put_u64(out, self.buckets.len() as u64);
        for b in &self.buckets {
            put_u64(out, b.count);
            put_f64(out, b.t_first);
            put_f64(out, b.t_last);
            put_u32(out, b.level);
            put_u8(out, b.debt.is_some() as u8);
            put_f64(out, b.debt.unwrap_or(0.0));
            put_bytes(out, &b.summary.encode_snapshot());
        }
    }

    /// Inverse of [`WindowedSummary::snapshot_payload`]. Re-validates the
    /// chain invariants the ingestion arithmetic relies on (head fill
    /// below the sealing granularity, finite non-decreasing bucket spans,
    /// non-increasing sealed levels), so restored state can never trip the
    /// feed path's assertions.
    pub(crate) fn from_snapshot_payload(
        reader: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let builder = SummaryBuilder::from_snapshot_payload(reader)?;
        let policy = match reader.u8()? {
            0 => {
                let n = reader.u64()?;
                if n < 1 {
                    return Err(SnapshotError::Malformed("count window must be >= 1"));
                }
                WindowPolicy::LastN(n)
            }
            1 => {
                let d = reader.f64()?;
                if !(d > 0.0 && d.is_finite()) {
                    return Err(SnapshotError::Malformed("duration window must be positive"));
                }
                WindowPolicy::LastDur(d)
            }
            _ => return Err(SnapshotError::Malformed("unknown window policy")),
        };
        let buckets_per_level = reader.u64()? as usize;
        let granularity = reader.u64()? as usize;
        if buckets_per_level < 1 || granularity < 1 {
            return Err(SnapshotError::Malformed("degenerate chain shape"));
        }
        let head_open = reader.u8()? != 0;
        let clock = reader.f64()?;
        let total_seen = reader.u64()?;
        if total_seen > 0 && !clock.is_finite() {
            return Err(SnapshotError::Malformed("non-finite window clock"));
        }
        let bucket_count = reader.count(38)?;
        if head_open && bucket_count == 0 {
            return Err(SnapshotError::Malformed("open head without a bucket"));
        }
        let mut buckets = VecDeque::with_capacity(bucket_count);
        let mut live_total = 0u64;
        for i in 0..bucket_count {
            let count = reader.u64()?;
            let t_first = reader.f64()?;
            let t_last = reader.f64()?;
            let level = reader.u32()?;
            let has_debt = reader.u8()? != 0;
            let debt_value = reader.f64()?;
            let summary = crate::snapshot::restore_mergeable(reader.bytes()?)?;
            if !(t_first.is_finite() && t_last.is_finite() && t_first <= t_last) {
                return Err(SnapshotError::Malformed("invalid bucket time span"));
            }
            // Buckets cover contiguous, chronological spans of the stream
            // and the clock is the newest timestamp seen.
            if let Some(prev) = buckets.back() {
                let prev: &Bucket = prev;
                if t_first < prev.t_last {
                    return Err(SnapshotError::Malformed("bucket spans out of order"));
                }
            }
            if t_last > clock {
                return Err(SnapshotError::Malformed("bucket newer than the clock"));
            }
            let is_head = head_open && i + 1 == bucket_count;
            if is_head {
                if !(1..granularity as u64).contains(&count) {
                    return Err(SnapshotError::Malformed("head fill out of range"));
                }
            } else {
                // A sealed level-l bucket holds exactly g·2^l points (the
                // head seals at g; carries merge equal-size pairs), which
                // also rules out the forged-count overflows the chain
                // arithmetic cannot survive.
                let expected = (granularity as u64)
                    .checked_shl(level)
                    .filter(|&e| e == count);
                if expected.is_none() {
                    return Err(SnapshotError::Malformed("sealed bucket count mismatch"));
                }
            }
            live_total = live_total
                .checked_add(count)
                .filter(|&t| t <= total_seen)
                .ok_or(SnapshotError::Malformed("bucket counts exceed the stream"))?;
            buckets.push_back(Bucket {
                summary,
                count,
                t_first,
                t_last,
                level,
                debt: has_debt.then_some(debt_value),
            });
        }
        let sealed = buckets.len() - usize::from(head_open);
        for w in buckets.iter().take(sealed).collect::<Vec<_>>().windows(2) {
            if w[0].level < w[1].level {
                return Err(SnapshotError::Malformed("sealed levels must not increase"));
            }
        }
        Ok(WindowedSummary {
            builder,
            config: WindowConfig {
                policy,
                buckets_per_level,
                granularity,
            },
            buckets,
            head_open,
            clock,
            total_seen,
            cache: HullCache::new(),
            bound_cache: GenCache::new(),
            scratch: Vec::new(),
            instruments: WindowInstruments::noop(),
        })
    }
}

impl HullSummary for WindowedSummary {
    /// Auto-tick ingestion: the point is stamped one tick after the
    /// previous one (so `LastN(n)` and `LastDur(n - 0.5)` agree on pure
    /// auto-tick streams).
    fn insert(&mut self, p: Point2) {
        // Guard before `next_tick`: a dropped point must not consume a
        // tick (see `HullSummary` on non-finite inputs).
        if !p.is_finite() {
            return;
        }
        let t = self.next_tick();
        self.insert_at(p, t);
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Filter before assigning ticks so the surviving points get
            // the same consecutive timestamps the per-point loop would
            // assign (dropped points consume no ticks).
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch_ticked(&finite);
            return;
        }
        self.insert_batch_ticked(points);
    }

    /// The **window** hull (not the whole-stream hull), lazily rebuilt per
    /// generation from [`query_window`](WindowedSummary::query_window).
    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| self.query_window().summary.hull())
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.stored_points()
    }

    fn points_seen(&self) -> u64 {
        self.total_seen
    }

    fn name(&self) -> &'static str {
        "windowed"
    }

    /// The composed window bound ([`WindowAnswer::error_bound`]), memoised
    /// per generation.
    fn error_bound(&self) -> Option<f64> {
        self.bound_cache
            .get_or_compute(self.cache.generation(), || {
                self.query_window().error_bound()
            })
    }
}

/// The result of a sharded windowed ingestion run
/// ([`ShardedIngest::run_stream_windowed`](crate::parallel::ShardedIngest::run_stream_windowed)):
/// one [`WindowedSummary`] per shard, each covering the shard's round-robin
/// share of the stream on the **shared global clock**.
///
/// [`query_window`](WindowedRun::query_window) anchors every shard's
/// window at the same global `now` (the newest timestamp any shard saw)
/// and merges all live buckets into one collector **in shard order,
/// oldest bucket first within each shard** — for a fixed stream, summary
/// configuration, shard count, and chunk size the answer is bit-identical
/// across runs, exactly PR 3's determinism contract.
#[derive(Debug)]
#[must_use = "a windowed run holds the per-shard window state; query it or inspect the shards"]
pub struct WindowedRun {
    builder: SummaryBuilder,
    shards: Vec<WindowedSummary>,
    elapsed: std::time::Duration,
}

impl WindowedRun {
    /// Assembles a run from per-shard windowed summaries (the collector
    /// kind comes from `builder`). Exposed for the parallel engine.
    pub(crate) fn new(
        builder: SummaryBuilder,
        shards: Vec<WindowedSummary>,
        elapsed: std::time::Duration,
    ) -> Self {
        WindowedRun {
            builder,
            shards,
            elapsed,
        }
    }

    /// Reassembles a run from per-shard windowed summaries restored
    /// elsewhere — e.g. [`Snapshot`](crate::snapshot::Snapshot)-decoded
    /// shard checkpoints shipped across processes. Feed the summaries in
    /// shard order and [`query_window`](WindowedRun::query_window) answers
    /// bit-identically to the in-process run they were snapshotted from
    /// (`elapsed` reports zero: no ingestion happened here).
    pub fn from_shards(builder: SummaryBuilder, shards: Vec<WindowedSummary>) -> Self {
        WindowedRun::new(builder, shards, std::time::Duration::ZERO)
    }

    /// The per-shard windowed summaries, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[WindowedSummary] {
        &self.shards
    }

    /// Wall-clock time of the whole ingestion (dispatch through the last
    /// worker join), for throughput accounting alongside
    /// [`points_seen`](WindowedRun::points_seen).
    #[must_use]
    pub fn elapsed(&self) -> std::time::Duration {
        self.elapsed
    }

    /// Total stream points consumed across all shards.
    #[must_use]
    pub fn points_seen(&self) -> u64 {
        self.shards.iter().map(|s| s.points_seen()).sum()
    }

    /// Live buckets across all shards.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.shards.iter().map(|s| s.bucket_count()).sum()
    }

    /// The newest timestamp any shard has seen (`None` on an empty run).
    #[must_use]
    pub fn now(&self) -> Option<f64> {
        self.shards.iter().filter_map(|s| s.now()).reduce(f64::max)
    }

    /// Answers the union-window query: every shard's live buckets (w.r.t.
    /// the shared global `now`) merge into one fresh collector in shard
    /// order, with the same composed error and staleness bookkeeping as
    /// [`WindowedSummary::query_window`]. Per-shard clocks may trail the
    /// global one by at most the in-flight chunks, which the liveness
    /// filter and staleness bounds already account for.
    pub fn query_window(&self) -> WindowAnswer {
        let now = self.now().unwrap_or(f64::NEG_INFINITY);
        let mut collector = self.builder.build_mergeable();
        let mut stats = MergeStats::new();
        for shard in &self.shards {
            shard.merge_window_into(now, collector.as_mut(), &mut stats);
        }
        stats.into_answer(collector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SummaryKind;

    #[test]
    fn telemetry_tracks_chain_lifecycle() {
        let tel = Telemetry::new();
        let config = WindowConfig::last_n(64).with_granularity(16);
        let mut w = WindowedSummary::new(SummaryBuilder::new(SummaryKind::Exact), config)
            .with_telemetry(tel);
        for i in 0..256 {
            w.insert(Point2::new(i as f64, (i % 7) as f64));
        }
        let s = tel.scrape();
        // The head seals exactly every `granularity` points.
        assert_eq!(s.counter_total(names::WINDOW_SEALS), 256 / 16);
        assert!(
            s.counter_total(names::WINDOW_EXPIRIES) > 0,
            "old buckets expired"
        );
        let staleness = s.gauge_value(names::WINDOW_STALENESS).unwrap();
        assert!(staleness >= 0, "staleness gauge published");
    }

    fn drifting(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.37;
                Point2::new(t.cos() + i as f64 * 0.01, t.sin())
            })
            .collect()
    }

    fn window(kind: SummaryKind, config: WindowConfig) -> WindowedSummary {
        SummaryBuilder::new(kind).with_r(16).windowed(config)
    }

    #[test]
    fn empty_window_answers_empty() {
        let w = window(SummaryKind::Adaptive, WindowConfig::last_n(10));
        let ans = w.query_window();
        assert!(ans.is_empty());
        assert_eq!(ans.buckets, 0);
        let _ = ans.error_bound(); // must not panic on an empty window
        assert!(w.hull_ref().is_empty());
        assert_eq!(w.bucket_count(), 0);
        assert_eq!(w.now(), None);
    }

    #[test]
    fn single_bucket_window_is_exact() {
        // Fewer points than the granularity: one open head bucket, no
        // staleness, answer covers exactly the window.
        let mut w = window(
            SummaryKind::Exact,
            WindowConfig::last_n(100).with_granularity(128),
        );
        let pts = drifting(50);
        w.insert_batch(&pts);
        assert_eq!(w.bucket_count(), 1);
        let ans = w.query_window();
        assert_eq!(ans.merged_points, 50);
        assert_eq!(ans.stale_points, 0);
        assert_eq!(ans.error_bound(), Some(0.0));
        let truth = ConvexPolygon::hull_of(&pts);
        assert_eq!(ans.hull().vertices(), truth.vertices());
    }

    #[test]
    fn last_n_covers_window_with_bounded_staleness() {
        let g = 32u64;
        let n = 200u64;
        let mut w = window(
            SummaryKind::Exact,
            WindowConfig::last_n(n).with_granularity(g as usize),
        );
        let pts = drifting(2000);
        for &p in &pts {
            w.insert(p);
        }
        let ans = w.query_window();
        // Covers at least the window...
        assert!(ans.window_points() >= n);
        // ...and the chain stays logarithmic.
        assert!(
            w.bucket_count() <= 2 * 8 + 1,
            "{} buckets",
            w.bucket_count()
        );
        // Exact backend: the answer hull contains every in-window point.
        let suffix = &pts[pts.len() - n as usize..];
        for &p in suffix {
            assert!(ans.hull().contains_linear(p), "{p:?} lost from window");
        }
        // Stale points are bounded by the straddling bucket's size.
        let total_merged = ans.merged_points;
        assert_eq!(total_merged - ans.stale_points, n);
    }

    #[test]
    fn expiry_drops_old_buckets() {
        let mut w = window(
            SummaryKind::Uniform,
            WindowConfig::last_n(64).with_granularity(16),
        );
        w.insert_batch(&drifting(10_000));
        // The chain must not grow with the stream: it is bounded by the
        // window, not the stream length.
        assert!(w.bucket_count() <= 12, "{} buckets", w.bucket_count());
        assert_eq!(w.points_seen(), 10_000);
        assert!(w.sample_size() <= 12 * 33);
    }

    #[test]
    fn last_dur_expires_by_time() {
        let mut w = window(
            SummaryKind::Exact,
            WindowConfig::last_dur(10.0).with_granularity(4),
        );
        // Two phases 100 time units apart: the old phase must vanish.
        for i in 0..40 {
            w.insert_at(Point2::new(100.0 + i as f64, 0.0), i as f64 * 0.1);
        }
        for i in 0..40 {
            w.insert_at(Point2::new(-(i as f64), 5.0), 100.0 + i as f64 * 0.1);
        }
        let ans = w.query_window();
        let hull = ans.hull();
        // No first-phase point (x >= 100) can survive in the window hull.
        assert!(
            hull.vertices().iter().all(|v| v.x < 100.0),
            "stale phase leaked: {:?}",
            hull.vertices()
        );
        assert_eq!(ans.merged_points, 40);
    }

    #[test]
    fn batch_equals_loop_across_seal_and_expiry_boundaries() {
        let pts = drifting(777);
        for &kind in &[SummaryKind::Exact, SummaryKind::Adaptive] {
            let config = WindowConfig::last_n(100).with_granularity(32);
            let mut looped = window(kind, config);
            for &p in &pts {
                looped.insert(p);
            }
            let mut batched = window(kind, config);
            for chunk in pts.chunks(53) {
                batched.insert_batch(chunk);
            }
            assert_eq!(looped.points_seen(), batched.points_seen(), "{kind}");
            assert_eq!(looped.bucket_count(), batched.bucket_count(), "{kind}");
            assert_eq!(
                looped.hull_ref().vertices(),
                batched.hull_ref().vertices(),
                "{kind}"
            );
            let (a, b) = (looped.query_window(), batched.query_window());
            assert_eq!(a.merged_points, b.merged_points, "{kind}");
            assert_eq!(a.stale_points, b.stale_points, "{kind}");
            assert_eq!(a.error_bound(), b.error_bound(), "{kind}");
        }
    }

    #[test]
    fn every_kind_windows() {
        for &kind in &SummaryKind::ALL {
            let mut w = window(kind, WindowConfig::last_n(128).with_granularity(32));
            w.insert_batch(&drifting(1000));
            let ans = w.query_window();
            assert!(ans.window_points() >= 128, "{kind}");
            assert!(ans.hull().len() >= 3, "{kind}");
            assert_eq!(w.name(), "windowed");
            // Bound availability mirrors the backend's: frozen and
            // cluster have no live guarantee, every other kind does.
            let expects_bound = !matches!(kind, SummaryKind::Frozen | SummaryKind::Cluster);
            assert_eq!(ans.error_bound().is_some(), expects_bound, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_timestamps_panic() {
        let mut w = window(SummaryKind::Exact, WindowConfig::last_dur(5.0));
        w.insert_at(Point2::new(0.0, 0.0), 10.0);
        w.insert_at(Point2::new(1.0, 0.0), 9.0);
    }
}
