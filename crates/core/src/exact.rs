//! Exact insert-only convex hull in `O(log n)` amortized time per point.
//!
//! This is the evaluation substrate: experiments measure approximate
//! summaries against this ground truth. It maintains the upper and lower
//! hull chains in ordered maps keyed by `x`; each insertion does two map
//! searches plus amortized `O(1)` deletions (every point enters and leaves
//! a chain at most once).
//!
//! Note this is **not** a small-space summary — it stores every hull vertex
//! (possibly all `n` points). The paper's point is precisely that one can
//! do with `2r + 1` points instead; see [`crate::adaptive`].

use crate::batch::{incircle, CertCache, BATCH_LEAF};
use crate::summary::{HullCache, HullSummary, Mergeable};
use core::cmp::Ordering;
use geom::predicates::orient2d_sign;
use geom::{ConvexPolygon, Point2};
use std::collections::BTreeMap;

/// Totally ordered `f64` key (finite values only; `-0.0` is normalised to
/// `+0.0` by [`FiniteF64::new`] so that [`f64::total_cmp`] coincides with
/// the IEEE partial order on every stored key).
#[derive(Clone, Copy, Debug, PartialEq)]
struct FiniteF64(f64);

impl FiniteF64 {
    #[inline]
    fn new(x: f64) -> Self {
        // `+ 0.0` maps -0.0 to +0.0 and is the identity on every other
        // finite value.
        FiniteF64(x + 0.0)
    }
}

impl Eq for FiniteF64 {}
impl PartialOrd for FiniteF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Which chain a [`Chain`] instance maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Upper,
    Lower,
}

/// One monotone hull chain (upper or lower), keyed by `x`.
#[derive(Clone, Debug)]
struct Chain {
    side: Side,
    pts: BTreeMap<FiniteF64, f64>,
}

impl Chain {
    fn new(side: Side) -> Self {
        Chain {
            side,
            pts: BTreeMap::new(),
        }
    }

    #[inline]
    fn better(&self, candidate: f64, incumbent: f64) -> bool {
        match self.side {
            Side::Upper => candidate > incumbent,
            Side::Lower => candidate < incumbent,
        }
    }

    /// `true` iff walking left-to-right the triple `(a, b, c)` keeps `b` on
    /// the strict chain (upper chains turn clockwise, lower chains turn
    /// counterclockwise).
    #[inline]
    fn keeps(&self, a: Point2, b: Point2, c: Point2) -> bool {
        let want = match self.side {
            Side::Upper => Ordering::Less,
            Side::Lower => Ordering::Greater,
        };
        orient2d_sign(a, b, c) == want
    }

    fn prev(&self, x: f64) -> Option<Point2> {
        self.pts
            .range(..FiniteF64::new(x))
            .next_back()
            .map(|(k, &v)| Point2::new(k.0, v))
    }

    fn next(&self, x: f64) -> Option<Point2> {
        use core::ops::Bound::*;
        self.pts
            .range((Excluded(FiniteF64::new(x)), Unbounded))
            .next()
            .map(|(k, &v)| Point2::new(k.0, v))
    }

    /// Inserts `p`, restoring strict convexity. Returns `true` if the chain
    /// changed.
    fn insert(&mut self, p: Point2) -> bool {
        // Same-x handling: keep only the better y.
        if let Some(&y) = self.pts.get(&FiniteF64::new(p.x)) {
            if !self.better(p.y, y) {
                return false;
            }
            self.pts.remove(&FiniteF64::new(p.x));
        }
        let pred = self.prev(p.x);
        let succ = self.next(p.x);
        if let (Some(a), Some(b)) = (pred, succ) {
            // Interior insertion: p must beat the segment a..b strictly.
            if !self.keeps(a, p, b) {
                return false;
            }
        }
        self.pts.insert(FiniteF64::new(p.x), p.y);

        // Fix convexity to the right of p.
        while let Some(n1) = self.next(p.x) {
            let Some(n2) = self.next(n1.x) else { break };
            if self.keeps(p, n1, n2) {
                break;
            }
            self.pts.remove(&FiniteF64::new(n1.x));
        }
        // Fix convexity to the left of p.
        while let Some(p1) = self.prev(p.x) {
            let Some(p2) = self.prev(p1.x) else { break };
            if self.keeps(p2, p1, p) {
                break;
            }
            self.pts.remove(&FiniteF64::new(p1.x));
        }
        true
    }

    fn iter(&self) -> impl DoubleEndedIterator<Item = Point2> + '_ {
        self.pts.iter().map(|(k, &v)| Point2::new(k.0, v))
    }

    fn len(&self) -> usize {
        self.pts.len()
    }
}

/// Exact, insert-only convex hull of a point stream.
///
/// # Example
/// ```
/// use adaptive_hull::{ExactHull, HullSummary};
/// use geom::Point2;
///
/// let mut hull = ExactHull::new();
/// for p in [(0.0, 0.0), (4.0, 0.0), (2.0, 3.0), (2.0, 1.0)] {
///     hull.insert(Point2::new(p.0, p.1));
/// }
/// assert_eq!(hull.hull().len(), 3); // (2,1) is interior
/// ```
#[derive(Clone, Debug)]
pub struct ExactHull {
    upper: Chain,
    lower: Chain,
    seen: u64,
    cache: HullCache,
}

impl Default for ExactHull {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactHull {
    /// Creates an empty exact hull.
    pub fn new() -> Self {
        ExactHull {
            upper: Chain::new(Side::Upper),
            lower: Chain::new(Side::Lower),
            seen: 0,
            cache: HullCache::new(),
        }
    }

    /// Inserts a point; returns `true` iff the hull changed. Non-finite
    /// points are silently dropped without being counted (see the
    /// [`HullSummary`] non-finite-input policy).
    pub fn insert_point(&mut self, p: Point2) -> bool {
        if !p.is_finite() {
            return false;
        }
        self.seen += 1;
        let changed = self.insert_chains(p);
        if changed {
            self.cache.invalidate();
        }
        changed
    }

    /// Chain updates without seen/cache bookkeeping.
    #[inline]
    fn insert_chains(&mut self, p: Point2) -> bool {
        let u = self.upper.insert(p);
        let l = self.lower.insert(p);
        u || l
    }

    /// Exact containment test against the current hull.
    pub fn contains(&self, p: Point2) -> bool {
        geom::locate::contains(self.hull_ref(), p)
    }

    /// Number of vertices currently on the hull.
    pub fn hull_size(&self) -> usize {
        let u = self.upper.len();
        let l = self.lower.len();
        if l <= 2 && u <= 2 {
            // Degenerate: count distinct points.
            return self.hull_ref().len();
        }
        // Endpoints shared between the chains are counted once.
        u + l - 2
    }

    // Exact identity comparisons of stored coordinates: both sides come
    // from the same normalised `FiniteF64` keys, so `==` is the precise
    // "same hull column" test, not an approximate-equality smell.
    #[allow(clippy::float_cmp)]
    fn build_hull(&self) -> ConvexPolygon {
        // ccw cycle: lower chain left-to-right, then upper chain
        // right-to-left, dropping the shared endpoints from the upper pass.
        let lower: Vec<Point2> = self.lower.iter().collect();
        if lower.is_empty() {
            return ConvexPolygon::empty();
        }
        let mut cycle = lower;
        let first_x = cycle[0].x;
        let last_x = cycle[cycle.len() - 1].x;
        for p in self.upper.iter().rev() {
            if p.x == last_x || p.x == first_x {
                // Chain endpoints: already represented unless the extreme
                // column has two distinct hull points (upper != lower y).
                let twin = if p.x == last_x {
                    cycle[cycle.len() - 1]
                } else {
                    cycle[0]
                };
                if p == twin {
                    continue;
                }
            }
            cycle.push(p);
        }
        // Remove a possible duplicate when the left column contributed the
        // same point twice.
        if cycle.len() > 1 && cycle[cycle.len() - 1] == cycle[0] {
            cycle.pop();
        }
        geom::hull::canonicalize_ccw(&mut cycle);
        if cycle.len() <= 2 {
            cycle.dedup();
            return ConvexPolygon::from_ccw_unchecked(cycle);
        }
        ConvexPolygon::from_ccw_unchecked(cycle)
    }
}

impl ExactHull {
    /// Snapshot payload: seen count plus both chains' points in `x` order
    /// (see [`crate::snapshot`] for the envelope around it).
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_point, put_u64};
        put_u64(out, self.seen);
        for chain in [&self.upper, &self.lower] {
            put_u64(out, chain.len() as u64);
            for p in chain.iter() {
                put_point(out, p);
            }
        }
    }

    /// Inverse of [`ExactHull::snapshot_payload`]. Rejects non-finite
    /// coordinates (which the insert boundary would never have admitted
    /// and whose ordered-map keys would panic downstream).
    pub(crate) fn from_snapshot_payload(
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let seen = r.u64()?;
        let mut chains = [Chain::new(Side::Upper), Chain::new(Side::Lower)];
        for chain in &mut chains {
            let count = r.count(16)?;
            let mut prev_x = f64::NEG_INFINITY;
            for _ in 0..count {
                let p = r.point()?;
                if !p.is_finite() {
                    return Err(SnapshotError::Malformed("non-finite chain point"));
                }
                if p.x <= prev_x {
                    return Err(SnapshotError::Malformed("chain not strictly x-sorted"));
                }
                prev_x = p.x;
                chain.pts.insert(FiniteF64::new(p.x), p.y);
            }
        }
        let [upper, lower] = chains;
        Ok(ExactHull {
            upper,
            lower,
            seen,
            cache: HullCache::new(),
        })
    }
}

impl HullSummary for ExactHull {
    fn insert(&mut self, p: Point2) {
        self.insert_point(p);
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them
            // one by one); the recursion then runs the all-finite fast
            // path below, preserving batch ≡ loop equivalence.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        if points.len() <= BATCH_LEAF {
            for &p in points {
                self.insert_point(p);
            }
            return;
        }
        // Interior-certificate fast path: a point strictly inside the
        // current hull leaves both chains untouched (its insertions fail
        // the strict-convexity tests), so a point inside the hull's
        // inscribed circle is certified a no-op and skipped for two
        // multiplies instead of two BTree searches. The certificate is
        // rebuilt from the chains only after a hull change; cache
        // invalidations coalesce into one per batch. Non-finite points
        // were filtered out above, so every point here is chain-safe.
        let mut cert = CertCache::new(32);
        let mut changed = false;
        for &p in points {
            if cert.covers(p, || incircle(&self.build_hull())) {
                self.seen += 1;
                continue;
            }
            self.seen += 1;
            if self.insert_chains(p) {
                changed = true;
                cert.invalidate();
            }
        }
        if changed {
            self.cache.invalidate();
        }
    }

    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache.get_or_rebuild(|| self.build_hull())
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.hull_size()
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn name(&self) -> &'static str {
        "exact"
    }

    fn error_bound(&self) -> Option<f64> {
        Some(0.0)
    }
}

impl Mergeable for ExactHull {
    fn sample_points(&self) -> Vec<Point2> {
        self.hull_ref().vertices().to_vec()
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::hull::monotone_chain;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn check_matches_batch(pts: &[Point2]) {
        let mut h = ExactHull::new();
        for &q in pts {
            h.insert_point(q);
        }
        let want = monotone_chain(pts);
        let got = h.hull();
        assert_eq!(
            got.vertices(),
            want.as_slice(),
            "batch mismatch for {} pts",
            pts.len()
        );
    }

    #[test]
    fn simple_cases() {
        check_matches_batch(&[]);
        check_matches_batch(&[p(1.0, 1.0)]);
        check_matches_batch(&[p(1.0, 1.0), p(1.0, 1.0)]);
        check_matches_batch(&[p(0.0, 0.0), p(2.0, 0.0)]);
        check_matches_batch(&[p(0.0, 0.0), p(2.0, 0.0), p(1.0, 1.0)]);
        check_matches_batch(&[p(0.0, 0.0), p(2.0, 0.0), p(1.0, 0.0)]); // collinear
    }

    #[test]
    fn vertical_line_points() {
        check_matches_batch(&[p(1.0, 0.0), p(1.0, 5.0), p(1.0, 2.0), p(1.0, -3.0)]);
    }

    #[test]
    fn square_with_interior() {
        check_matches_batch(&[
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0),
            p(2.0, 0.0),
            p(0.0, 2.0),
        ]);
    }

    #[test]
    fn insert_reports_change() {
        let mut h = ExactHull::new();
        assert!(h.insert_point(p(0.0, 0.0)));
        assert!(h.insert_point(p(2.0, 0.0)));
        assert!(h.insert_point(p(1.0, 2.0)));
        assert!(
            !h.insert_point(p(1.0, 0.5)),
            "interior point changes nothing"
        );
        assert!(
            !h.insert_point(p(1.0, 0.0)),
            "boundary point changes nothing"
        );
        assert!(h.insert_point(p(1.0, -2.0)));
        assert_eq!(h.points_seen(), 6);
    }

    #[test]
    fn pseudorandom_stream_matches_batch_at_checkpoints() {
        let mut seed = 0xabcdefu64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point2> = (0..800)
            .map(|_| p(next() * 20.0 - 10.0, next() * 6.0))
            .collect();
        let mut h = ExactHull::new();
        for (i, &q) in pts.iter().enumerate() {
            h.insert_point(q);
            if i % 97 == 0 || i + 1 == pts.len() {
                let want = monotone_chain(&pts[..=i]);
                assert_eq!(h.hull().vertices(), want.as_slice(), "at point {i}");
            }
        }
    }

    #[test]
    fn duplicate_and_collinear_heavy_stream() {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(p(i as f64, 0.0)); // bottom line
            pts.push(p(i as f64, 10.0)); // top line
            pts.push(p(25.0, i as f64 / 5.0)); // interior column
            pts.push(p(i as f64, 0.0)); // duplicates
        }
        check_matches_batch(&pts);
    }

    #[test]
    fn circle_keeps_every_point() {
        let pts: Vec<Point2> = (0..100)
            .map(|i| {
                let t = core::f64::consts::TAU * i as f64 / 100.0;
                p(t.cos(), t.sin())
            })
            .collect();
        let mut h = ExactHull::new();
        for &q in &pts {
            h.insert_point(q);
        }
        assert_eq!(h.hull_size(), 100);
        assert_eq!(h.hull().len(), 100);
    }

    #[test]
    fn contains_query() {
        let mut h = ExactHull::new();
        for &q in &[p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)] {
            h.insert_point(q);
        }
        assert!(h.contains(p(2.0, 2.0)));
        assert!(h.contains(p(0.0, 0.0)));
        assert!(!h.contains(p(5.0, 2.0)));
    }

    #[test]
    fn adversarial_spiral_matches_batch() {
        let pts: Vec<Point2> = (0..300)
            .map(|i| {
                let t = 2.399963229728653 * i as f64;
                let r = 1.0 + 0.01 * i as f64;
                p(r * t.cos(), r * t.sin())
            })
            .collect();
        check_matches_batch(&pts);
    }
}
