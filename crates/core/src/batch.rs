//! Shared machinery for the batched-ingestion fast paths.
//!
//! Every summary's [`insert_batch`](crate::summary::HullSummary::insert_batch)
//! override leans on one of two chunk reductions:
//!
//! * [`CertCache`] — an **interior certificate**: the inscribed circle
//!   (vertex-centroid center, conservatively shrunk min edge distance) of
//!   the summary's current hull of extrema `A`. A point inside the circle
//!   is *strictly* inside `A`, which is exactly the class of points the
//!   per-point path no-ops (discards after an `O(log r)` point location,
//!   or after an `O(r)` direction scan) — so the batch path discards it
//!   for two multiplies and a compare. The certificate is rebuilt only
//!   when `A` changes (amortised across the chunk) and disables itself
//!   when a boundary-heavy chunk keeps invalidating it without hits, so
//!   adversarial streams degrade to the plain loop plus a bounded number
//!   of rebuilds. Because certified points are *precisely* points the
//!   loop would no-op, batched ingestion stays observably identical to
//!   the loop even for the order-dependent adaptive structures.
//! * [`BatchScratch::boundary_survivors`] — reduce the chunk to the points
//!   on the boundary of its own convex hull (stream order preserved),
//!   via the buffered monotone chain in [`geom::hull`]. Sound for pure
//!   per-direction-maximum summaries: a point strictly inside the chunk
//!   hull is *strictly* dominated in **every** direction by some boundary
//!   point of the same chunk, so it can neither end up as a stored
//!   extremum nor (being dominated by retained chunk-mates) shift which
//!   retained point first attains each final maximum. Keeping the
//!   boundary-collinear points (not just strict vertices) is what makes
//!   ties exact: a point *on* a chunk-hull edge can tie a vertex's support
//!   value and, arriving first, win the tie under the strict-`>` beating
//!   rule. The sort makes this worthwhile only when the per-point scan is
//!   expensive — the direction-scan summaries use it for
//!   `r >= `[`PREFILTER_MIN_DIRS`] where `O(r)` per point dwarfs the
//!   `O(log m)` sort share.
//!
//! The scratch buffers live on each summary struct, so steady-state
//! batched ingestion performs no heap allocations: buffers grow to the
//! chunk size once and are reused forever after.

use geom::{ConvexPolygon, Point2};

/// Chunks at or below this length take the plain per-point loop — the
/// batch machinery costs more than the per-point work it saves.
pub(crate) const BATCH_LEAF: usize = 24;

/// Direction count from which the monotone-chain pre-hull beats the
/// `O(r)`-per-point direction scan.
pub(crate) const PREFILTER_MIN_DIRS: usize = 64;

/// The inscribed-circle interior certificate of a convex polygon:
/// `(center, safe_radius²)`. Any point within the circle is strictly
/// inside the polygon.
///
/// Center is the vertex centroid (strictly interior for a strictly convex
/// polygon with ≥ 3 vertices); the radius is the minimum distance from the
/// center to an edge line, shrunk by a relative `1e-9` so floating-point
/// rounding (relative error ~`1e-15`) can never certify a point that is
/// not strictly interior. Returns `None` for degenerate polygons or when
/// the center fails the strict-interior check.
pub(crate) fn incircle(poly: &ConvexPolygon) -> Option<(Point2, f64)> {
    let n = poly.len();
    if n < 3 {
        return None;
    }
    let (sx, sy) = poly
        .vertices()
        .iter()
        .fold((0.0f64, 0.0f64), |(sx, sy), v| (sx + v.x, sy + v.y));
    let center = Point2::new(sx / n as f64, sy / n as f64);
    if !center.is_finite() {
        return None;
    }
    let mut rmin = f64::INFINITY;
    for (a, b) in poly.edges() {
        let e = b - a;
        let len = e.norm();
        // Signed distance: positive iff center is strictly left of the ccw
        // edge, i.e. strictly inside its half-plane.
        let d = e.cross(center - a) / len;
        // Must be strictly positive; NaN (degenerate edge) also bails.
        if d.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater) {
            return None;
        }
        rmin = rmin.min(d);
    }
    let r = rmin * (1.0 - 1e-9);
    if r > 0.0 && r.is_finite() {
        Some((center, r * r))
    } else {
        None
    }
}

/// Per-batch state for the interior certificate: rebuilds lazily after the
/// hull changes and disables itself when rebuilds outnumber the points
/// they certify (boundary-heavy chunks), bounding the overhead of the
/// fast path at a handful of rebuilds per batch.
pub(crate) struct CertCache {
    cert: Option<(Point2, f64)>,
    fresh: bool,
    hits: u32,
    refreshes: u32,
    disabled: bool,
    /// Required `hits / refreshes` ratio to stay enabled — higher for
    /// summaries whose rebuild is expensive (hull reconstruction) than for
    /// those with an eagerly maintained hull.
    min_ratio: u32,
}

impl CertCache {
    /// A fresh certificate cache for one batch.
    pub(crate) fn new(min_ratio: u32) -> Self {
        CertCache {
            cert: None,
            fresh: false,
            hits: 0,
            refreshes: 0,
            disabled: false,
            min_ratio,
        }
    }

    /// Marks the certificate stale (call after any mutation that may have
    /// changed the hull it certifies against).
    pub(crate) fn invalidate(&mut self) {
        self.fresh = false;
    }

    /// `true` iff `q` is certified strictly interior. `rebuild` supplies a
    /// fresh incircle when the cached one is stale; it is only invoked
    /// when needed, and never again once the cache self-disables.
    pub(crate) fn covers(
        &mut self,
        q: Point2,
        rebuild: impl FnOnce() -> Option<(Point2, f64)>,
    ) -> bool {
        if self.disabled {
            return false;
        }
        if !self.fresh {
            self.refreshes += 1;
            if self.refreshes >= 8 && self.hits < self.min_ratio * self.refreshes {
                self.disabled = true;
                self.cert = None;
                return false;
            }
            self.cert = rebuild();
            self.fresh = true;
        }
        match self.cert {
            Some((c, r2)) if (q - c).norm_sq() <= r2 => {
                self.hits += 1;
                true
            }
            _ => false,
        }
    }
}

impl Drop for CertCache {
    /// Flush this batch's certificate tallies to the process-wide
    /// hot-kernel counters (see [`crate::telemetry::hot`]): two relaxed
    /// adds per *batch*, so the per-point fast path stays untouched.
    fn drop(&mut self) {
        crate::telemetry::hot::record_cert(u64::from(self.hits), u64::from(self.refreshes));
    }
}

/// Reusable buffers for the chunk reductions. Intentionally `Clone`s to
/// fresh empty buffers: scratch space is not summary state.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// Sort/dedup working copy of the chunk.
    sort: Vec<Point2>,
    /// Chunk hull (strict or boundary-inclusive, per call).
    hull: Vec<Point2>,
    /// Boundary survivors in original stream order.
    survivors: Vec<Point2>,
}

impl Clone for BatchScratch {
    fn clone(&self) -> Self {
        BatchScratch::default()
    }
}

impl BatchScratch {
    /// Filters `chunk` down to the points on its own convex-hull boundary,
    /// preserving stream order (duplicates of boundary points survive).
    ///
    /// Returns `None` when the chunk contains a non-finite point — callers
    /// must then fall back to the per-point loop so panics/NaN semantics
    /// stay identical to unbatched ingestion.
    pub(crate) fn boundary_survivors(&mut self, chunk: &[Point2]) -> Option<&[Point2]> {
        if !chunk.iter().all(|p| p.is_finite()) {
            return None;
        }
        self.sort.clear();
        self.sort.extend_from_slice(chunk);
        geom::hull::monotone_chain_with(&mut self.sort, &mut self.hull, true);
        // The inclusive chain can emit duplicates on degenerate inputs;
        // turn it into a sorted set for binary-search membership.
        self.hull.sort_by(|a, b| a.lex_cmp(*b));
        self.hull.dedup();
        self.survivors.clear();
        for &q in chunk {
            if self.hull.binary_search_by(|b| b.lex_cmp(q)).is_ok() {
                self.survivors.push(q);
            }
        }
        Some(&self.survivors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn survivors_keep_boundary_points_in_stream_order() {
        let mut s = BatchScratch::default();
        // Square, one edge-midpoint (boundary), one interior point.
        let chunk = [
            p(1.0, 0.0), // on the bottom edge: kept (tie candidate)
            p(0.0, 0.0),
            p(1.0, 1.0), // strictly interior: dropped
            p(2.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(1.0, 1.0), // duplicate interior: dropped
        ];
        let out = s.boundary_survivors(&chunk).unwrap();
        assert_eq!(
            out,
            &[
                p(1.0, 0.0),
                p(0.0, 0.0),
                p(2.0, 0.0),
                p(2.0, 2.0),
                p(0.0, 2.0)
            ]
        );
    }

    #[test]
    fn non_finite_chunks_are_rejected() {
        let mut s = BatchScratch::default();
        let chunk = [p(0.0, 0.0), p(f64::NAN, 1.0)];
        assert!(s.boundary_survivors(&chunk).is_none());
    }

    #[test]
    fn incircle_certifies_only_strict_interior() {
        let square = ConvexPolygon::hull_of(&[p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)]);
        let (c, r2) = incircle(&square).unwrap();
        assert_eq!(c, p(1.0, 1.0));
        // Safe radius just under the true inradius 1.
        assert!(r2 < 1.0 && r2 > 0.99);
        // Interior point certified, boundary point not.
        assert!((p(1.2, 0.8) - c).norm_sq() <= r2);
        assert!((p(1.0, 0.0) - c).norm_sq() > r2);
        // Degenerate polygons yield no certificate.
        assert!(incircle(&ConvexPolygon::empty()).is_none());
        assert!(incircle(&ConvexPolygon::hull_of(&[p(0.0, 0.0), p(1.0, 0.0)])).is_none());
    }

    #[test]
    fn cert_cache_rebuilds_lazily_and_self_disables() {
        let square = ConvexPolygon::hull_of(&[p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)]);
        let mut cache = CertCache::new(8);
        let mut rebuilds = 0u32;
        let check = |cache: &mut CertCache, q: Point2, rebuilds: &mut u32| {
            cache.covers(q, || {
                *rebuilds += 1;
                incircle(&square)
            })
        };
        assert!(check(&mut cache, p(1.0, 1.0), &mut rebuilds));
        assert!(check(&mut cache, p(1.1, 1.0), &mut rebuilds));
        assert_eq!(rebuilds, 1, "second hit reuses the certificate");
        assert!(!check(&mut cache, p(5.0, 5.0), &mut rebuilds), "outside");
        assert!(!check(&mut cache, p(f64::NAN, 0.0), &mut rebuilds), "NaN");
        // Constant invalidation without hits trips the self-disable.
        let mut cold = CertCache::new(8);
        let mut cold_rebuilds = 0u32;
        for _ in 0..50 {
            let _ = cold.covers(p(100.0, 100.0), || {
                cold_rebuilds += 1;
                incircle(&square)
            });
            cold.invalidate();
        }
        assert!(
            cold_rebuilds < 10,
            "self-disable bounds rebuilds, got {cold_rebuilds}"
        );
    }

    #[test]
    fn scratch_clone_is_fresh() {
        let mut s = BatchScratch::default();
        let _ = s.boundary_survivors(&[p(0.0, 0.0), p(1.0, 0.0)]);
        let c = s.clone();
        assert!(c.sort.is_empty() && c.hull.is_empty() && c.survivors.is_empty());
    }
}
