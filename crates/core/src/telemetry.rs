//! Zero-dependency observability: counters, gauges, log-scale histograms,
//! and structured trace events, with Prometheus-text and JSON-lines
//! exporters.
//!
//! # Design
//!
//! The whole layer hangs off a [`Telemetry`] handle, which is `Copy` and
//! two machine words wide: either *disabled* (every operation is a branch
//! on `None` and nothing else — this is the path the benches compare
//! against) or a reference to a leaked, process-lifetime registry.
//! Leaking is deliberate: the engines that carry the handle
//! (`ShardedIngest`, `TenantConfig`, …) are `Copy` and flow across scoped
//! threads, so the registry must be `'static`; a registry is a few KiB of
//! instrument cells and one ring buffer, created once per process (or per
//! test — tests get isolated registries precisely *because* each
//! [`Telemetry::new`] is its own arena).
//!
//! Hot-path cost model:
//! * counters are striped over [`STRIPES`] cache-line-aligned atomics
//!   (stripe chosen once per thread), so an increment is one relaxed
//!   `fetch_add` with no sharing between concurrent shard workers;
//! * histograms are fixed log₂-bucket arrays — recording is two relaxed
//!   adds and an `ilog2`;
//! * instrument *registration* takes a mutex and should happen once, up
//!   front; handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Copy`
//!   and free to pass into worker closures.
//!
//! Tracing is deterministic-friendly: events carry a registry-assigned
//! sequence number and a **caller-supplied tick** (a chunk index, an
//! engine clock — never wall-clock), so seeded runs produce identical
//! trails. The ring keeps the newest [`Telemetry::trace_capacity`] events
//! and counts what it evicted in `events_dropped` (note the tenant event
//! ledger makes the opposite choice — it keeps the *oldest* — so the two
//! trails bracket a run from both ends).

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of cache-line-aligned stripes per counter. Each thread is
/// assigned one stripe round-robin on first use; scrapes sum all of them.
pub const STRIPES: usize = 8;

/// Number of log₂ buckets per histogram. Bucket `0` holds exact zeros,
/// bucket `i` holds values in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything at or above `2^(HIST_BUCKETS-2)` (≈ 1.07 s when the
/// unit is nanoseconds).
pub const HIST_BUCKETS: usize = 32;

/// Default trace-ring capacity for [`Telemetry::new`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The stripe this thread writes counters through (assigned once,
/// round-robin, on the thread's first increment).
fn stripe_id() -> usize {
    STRIPE.with(|slot| {
        let cur = slot.get();
        if cur != usize::MAX {
            return cur;
        }
        let id = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
        slot.set(id);
        id
    })
}

#[repr(align(64))]
struct Stripe(AtomicU64);

struct CounterCell {
    stripes: [Stripe; STRIPES],
}

impl CounterCell {
    fn new() -> Self {
        CounterCell {
            stripes: std::array::from_fn(|_| Stripe(AtomicU64::new(0))),
        }
    }

    fn add(&self, n: u64) {
        self.stripes[stripe_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

struct GaugeCell(AtomicI64);

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// Log₂ bucket index for `v` (see [`HIST_BUCKETS`] for the layout).
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((v.ilog2() as usize) + 1).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` as a Prometheus `le` label
/// (`2^i - 1`; the final bucket is `+Inf`).
fn bucket_le(i: usize) -> String {
    if i + 1 == HIST_BUCKETS {
        "+Inf".to_owned()
    } else {
        ((1u64 << i) - 1).to_string()
    }
}

/// Canonical instrument identity: name plus label set, labels sorted by
/// key so registration order and call-site label order don't matter.
#[derive(Clone, PartialEq, Eq)]
struct Key {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

impl Key {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect();
        labels.sort_by(|a, b| a.0.cmp(b.0));
        Key { name, labels }
    }
}

struct Trace {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

struct Inner {
    counters: Mutex<Vec<(Key, &'static CounterCell)>>,
    gauges: Mutex<Vec<(Key, &'static GaugeCell)>>,
    hists: Mutex<Vec<(Key, &'static HistCell)>>,
    trace: Trace,
}

/// A structured trace event: registry-assigned sequence number, a
/// caller-supplied deterministic tick, and small integer fields.
///
/// `tick` is whatever monotone counter the emitting subsystem already
/// owns (supervisor chunk sequence, tenant engine clock) — never
/// wall-clock, so seeded runs trace identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the registry's total event order (starts at 0).
    pub seq: u64,
    /// Caller-supplied deterministic tick.
    pub tick: u64,
    /// Emitting subsystem (e.g. `"recovery"`, `"tenant"`).
    pub target: &'static str,
    /// Event name (e.g. `"fault"`, `"spill"`).
    pub name: &'static str,
    /// Small structured payload.
    pub fields: Vec<(&'static str, i64)>,
}

/// An in-flight span: holds the start tick, emits one event on
/// [`Span::end`] carrying `start_tick` and `duration_ticks` fields.
#[derive(Debug)]
pub struct Span {
    tel: Telemetry,
    target: &'static str,
    name: &'static str,
    start_tick: u64,
}

impl Span {
    /// Close the span at `tick`, emitting its event.
    pub fn end(self, tick: u64) {
        self.tel.event(
            self.target,
            self.name,
            tick,
            &[
                ("start_tick", self.start_tick as i64),
                (
                    "duration_ticks",
                    tick.saturating_sub(self.start_tick) as i64,
                ),
            ],
        );
    }
}

/// Monotonic counter handle (`Copy`; no-op when its registry is
/// disabled). Obtain via [`Telemetry::counter`].
#[derive(Clone, Copy)]
pub struct Counter(Option<&'static CounterCell>);

impl Counter {
    /// A counter that ignores every increment.
    pub const fn noop() -> Self {
        Counter(None)
    }

    /// Add `n` (relaxed atomic on a per-thread stripe).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = self.0 {
            cell.add(n);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Counter({})",
            if self.0.is_some() { "live" } else { "noop" }
        )
    }
}

/// Gauge handle: a settable signed level (`Copy`; no-op when disabled).
#[derive(Clone, Copy)]
pub struct Gauge(Option<&'static GaugeCell>);

impl Gauge {
    /// A gauge that ignores every update.
    pub const fn noop() -> Self {
        Gauge(None)
    }

    /// Set the current level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = self.0 {
            cell.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the current level by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = self.0 {
            cell.0.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Gauge({})",
            if self.0.is_some() { "live" } else { "noop" }
        )
    }
}

/// Log₂-bucket histogram handle (`Copy`; no-op when disabled).
#[derive(Clone, Copy)]
pub struct Histogram(Option<&'static HistCell>);

impl Histogram {
    /// A histogram that ignores every observation.
    pub const fn noop() -> Self {
        Histogram(None)
    }

    /// `true` when observations are actually recorded. Hot paths use
    /// this to skip taking timestamps for a no-op sink.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = self.0 {
            cell.record(v);
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram({})",
            if self.0.is_some() { "live" } else { "noop" }
        )
    }
}

/// The observability handle threaded through the engines.
///
/// `Copy` and cheap to pass by value; [`Telemetry::disabled`] (also the
/// `Default`) is a compile-time-const no-op whose every operation is a
/// single branch, which is what the `telemetry_overhead` bench dimension
/// compares the instrumented path against.
///
/// ```
/// use adaptive_hull::telemetry::Telemetry;
///
/// let tel = Telemetry::new();
/// let pts = tel.counter("streamhull_ingest_points_total", &[("backend", "exact")]);
/// pts.add(128);
/// tel.event("demo", "chunk", 0, &[("points", 128)]);
///
/// let scrape = tel.scrape();
/// assert_eq!(scrape.counter_total("streamhull_ingest_points_total"), 128);
/// assert_eq!(scrape.events.len(), 1);
/// ```
#[derive(Clone, Copy, Default)]
pub struct Telemetry {
    inner: Option<&'static Inner>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Telemetry {
    /// A live registry with the default trace capacity. The registry is
    /// leaked (process lifetime) so the handle stays `Copy` across the
    /// `Copy` engines; create one per process, or one per test for
    /// isolation.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A live registry whose trace ring keeps the newest `capacity`
    /// events (older ones are evicted and counted as dropped).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        let inner: &'static Inner = Box::leak(Box::new(Inner {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            hists: Mutex::new(Vec::new()),
            trace: Trace {
                ring: Mutex::new(VecDeque::new()),
                capacity,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            },
        }));
        Telemetry { inner: Some(inner) }
    }

    /// The no-op handle: every instrument it hands out ignores updates.
    pub const fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// `true` when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace ring's capacity (0 when disabled).
    pub fn trace_capacity(&self) -> usize {
        self.inner.map_or(0, |i| i.trace.capacity)
    }

    /// Register (or look up) the counter `name` with `labels`.
    /// Registration locks a mutex — do it once up front, then hand the
    /// `Copy` handle to the hot path.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        match self.inner {
            None => Counter(None),
            Some(inner) => {
                let key = Key::new(name, labels);
                let mut reg = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
                if let Some((_, cell)) = reg.iter().find(|(k, _)| *k == key) {
                    return Counter(Some(cell));
                }
                let cell: &'static CounterCell = Box::leak(Box::new(CounterCell::new()));
                reg.push((key, cell));
                Counter(Some(cell))
            }
        }
    }

    /// Register (or look up) the gauge `name` with `labels`.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        match self.inner {
            None => Gauge(None),
            Some(inner) => {
                let key = Key::new(name, labels);
                let mut reg = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
                if let Some((_, cell)) = reg.iter().find(|(k, _)| *k == key) {
                    return Gauge(Some(cell));
                }
                let cell: &'static GaugeCell = Box::leak(Box::new(GaugeCell(AtomicI64::new(0))));
                reg.push((key, cell));
                Gauge(Some(cell))
            }
        }
    }

    /// Register (or look up) the histogram `name` with `labels`.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
        match self.inner {
            None => Histogram(None),
            Some(inner) => {
                let key = Key::new(name, labels);
                let mut reg = inner.hists.lock().unwrap_or_else(|e| e.into_inner());
                if let Some((_, cell)) = reg.iter().find(|(k, _)| *k == key) {
                    return Histogram(Some(cell));
                }
                let cell: &'static HistCell = Box::leak(Box::new(HistCell::new()));
                reg.push((key, cell));
                Histogram(Some(cell))
            }
        }
    }

    /// Emit a trace event at the caller-supplied deterministic `tick`.
    /// Returns the event's sequence number (0 when disabled).
    pub fn event(
        &self,
        target: &'static str,
        name: &'static str,
        tick: u64,
        fields: &[(&'static str, i64)],
    ) -> u64 {
        let Some(inner) = self.inner else { return 0 };
        let seq = inner.trace.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            tick,
            target,
            name,
            fields: fields.to_vec(),
        };
        let mut ring = inner.trace.ring.lock().unwrap_or_else(|e| e.into_inner());
        if inner.trace.capacity == 0 {
            inner.trace.dropped.fetch_add(1, Ordering::Relaxed);
            return seq;
        }
        if ring.len() == inner.trace.capacity {
            ring.pop_front();
            inner.trace.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
        seq
    }

    /// Open a span starting at `start_tick`; close it with [`Span::end`].
    pub fn span(&self, target: &'static str, name: &'static str, start_tick: u64) -> Span {
        Span {
            tel: *self,
            target,
            name,
            start_tick,
        }
    }

    /// Snapshot every instrument and the trace ring into a [`Scrape`]
    /// with a deterministic (sorted) sample order. Cheap enough to call
    /// mid-run; counters are summed across stripes at this point.
    pub fn scrape(&self) -> Scrape {
        let mut scrape = Scrape {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            events: Vec::new(),
            events_dropped: 0,
            hot: hot::snapshot(),
        };
        let Some(inner) = self.inner else {
            return scrape;
        };
        {
            let reg = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
            for (key, cell) in reg.iter() {
                scrape.counters.push(CounterSample {
                    name: key.name,
                    labels: key.labels.clone(),
                    value: cell.value(),
                });
            }
        }
        {
            let reg = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
            for (key, cell) in reg.iter() {
                scrape.gauges.push(GaugeSample {
                    name: key.name,
                    labels: key.labels.clone(),
                    value: cell.0.load(Ordering::Relaxed),
                });
            }
        }
        {
            let reg = inner.hists.lock().unwrap_or_else(|e| e.into_inner());
            for (key, cell) in reg.iter() {
                let buckets: Vec<u64> = cell
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                let count = buckets.iter().sum();
                scrape.histograms.push(HistogramSample {
                    name: key.name,
                    labels: key.labels.clone(),
                    buckets,
                    count,
                    sum: cell.sum.load(Ordering::Relaxed),
                });
            }
        }
        let sort_key =
            |name: &'static str, labels: &[(&'static str, String)]| (name, labels.to_vec());
        scrape
            .counters
            .sort_by(|a, b| sort_key(a.name, &a.labels).cmp(&sort_key(b.name, &b.labels)));
        scrape
            .gauges
            .sort_by(|a, b| sort_key(a.name, &a.labels).cmp(&sort_key(b.name, &b.labels)));
        scrape
            .histograms
            .sort_by(|a, b| sort_key(a.name, &a.labels).cmp(&sort_key(b.name, &b.labels)));
        {
            let ring = inner.trace.ring.lock().unwrap_or_else(|e| e.into_inner());
            scrape.events.extend(ring.iter().cloned());
        }
        scrape.events_dropped = inner.trace.dropped.load(Ordering::Relaxed);
        scrape
    }
}

/// One counter sample in a [`Scrape`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: &'static str,
    /// Sorted label set.
    pub labels: Vec<(&'static str, String)>,
    /// Stripe-summed value at scrape time.
    pub value: u64,
}

/// One gauge sample in a [`Scrape`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: &'static str,
    /// Sorted label set.
    pub labels: Vec<(&'static str, String)>,
    /// Level at scrape time.
    pub value: i64,
}

/// One histogram sample in a [`Scrape`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: &'static str,
    /// Sorted label set.
    pub labels: Vec<(&'static str, String)>,
    /// Raw (non-cumulative) per-bucket counts, [`HIST_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A point-in-time snapshot of a registry: every instrument (sorted by
/// name then labels), the trace ring's surviving events in sequence
/// order, and the process-wide hot-kernel tallies.
#[derive(Clone, Debug, Default, PartialEq)]
#[must_use]
pub struct Scrape {
    /// Counter samples, sorted.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, sorted.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, sorted.
    pub histograms: Vec<HistogramSample>,
    /// Surviving trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring before this scrape.
    pub events_dropped: u64,
    /// Process-wide kernel counters (see [`hot`]).
    pub hot: hot::HotKernelStats,
}

impl Scrape {
    /// Sum of `name` across every label set (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The counter `name` with exactly `labels` (order-insensitive).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort_by(|a, b| a.0.cmp(b.0));
        self.counters
            .iter()
            .find(|c| {
                c.name == name
                    && c.labels.len() == want.len()
                    && c.labels
                        .iter()
                        .zip(want.iter())
                        .all(|((k, v), (wk, wv))| k == wk && v == wv)
            })
            .map(|c| c.value)
    }

    /// The gauge `name` with an empty label set.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// `true` when nothing has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Render in the Prometheus text exposition format: `# TYPE` lines,
    /// escaped label values, cumulative `_bucket{le=…}` series plus
    /// `_sum`/`_count` for histograms, and two synthetic series for the
    /// trace ring (`streamhull_trace_events_total`,
    /// `streamhull_trace_events_dropped_total`) and the hot-kernel
    /// tallies.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last = "";
        for c in &self.counters {
            if c.name != last {
                let _ = writeln!(out, "# TYPE {} counter", c.name);
                last = c.name;
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                c.name,
                fmt_label_set(&c.labels, None),
                c.value
            );
        }
        last = "";
        for g in &self.gauges {
            if g.name != last {
                let _ = writeln!(out, "# TYPE {} gauge", g.name);
                last = g.name;
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                g.name,
                fmt_label_set(&g.labels, None),
                g.value
            );
        }
        last = "";
        for h in &self.histograms {
            if h.name != last {
                let _ = writeln!(out, "# TYPE {} histogram", h.name);
                last = h.name;
            }
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cum += b;
                let le = bucket_le(i);
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    fmt_label_set(&h.labels, Some(("le", &le))),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                h.name,
                fmt_label_set(&h.labels, None),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                h.name,
                fmt_label_set(&h.labels, None),
                h.count
            );
        }
        let _ = writeln!(out, "# TYPE streamhull_trace_events_total counter");
        let _ = writeln!(
            out,
            "streamhull_trace_events_total {}",
            self.events.len() as u64 + self.events_dropped
        );
        let _ = writeln!(out, "# TYPE streamhull_trace_events_dropped_total counter");
        let _ = writeln!(
            out,
            "streamhull_trace_events_dropped_total {}",
            self.events_dropped
        );
        let _ = writeln!(out, "# TYPE streamhull_cert_hits_total counter");
        let _ = writeln!(out, "streamhull_cert_hits_total {}", self.hot.cert_hits);
        let _ = writeln!(out, "# TYPE streamhull_cert_refreshes_total counter");
        let _ = writeln!(
            out,
            "streamhull_cert_refreshes_total {}",
            self.hot.cert_refreshes
        );
        out
    }

    /// Render as JSON lines: one self-contained JSON object per line
    /// (`kind` discriminates `counter` / `gauge` / `histogram` /
    /// `event` / `trace_meta` / `hot`), suitable for appending to a log
    /// stream.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = write!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{}\"",
                json_escape(c.name)
            );
            json_labels(&mut out, &c.labels);
            let _ = writeln!(out, ",\"value\":{}}}", c.value);
        }
        for g in &self.gauges {
            let _ = write!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{}\"",
                json_escape(g.name)
            );
            json_labels(&mut out, &g.labels);
            let _ = writeln!(out, ",\"value\":{}}}", g.value);
        }
        for h in &self.histograms {
            let _ = write!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{}\"",
                json_escape(h.name)
            );
            json_labels(&mut out, &h.labels);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ",");
                }
                let _ = write!(out, "{b}");
            }
            let _ = writeln!(out, "]}}");
        }
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"kind\":\"event\",\"seq\":{},\"tick\":{},\"target\":\"{}\",\"name\":\"{}\",\"fields\":{{",
                e.seq,
                e.tick,
                json_escape(e.target),
                json_escape(e.name)
            );
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ",");
                }
                let _ = write!(out, "\"{}\":{}", json_escape(k), v);
            }
            let _ = writeln!(out, "}}}}");
        }
        let _ = writeln!(
            out,
            "{{\"kind\":\"trace_meta\",\"events\":{},\"events_dropped\":{}}}",
            self.events.len(),
            self.events_dropped
        );
        let _ = writeln!(
            out,
            "{{\"kind\":\"hot\",\"cert_hits\":{},\"cert_refreshes\":{}}}",
            self.hot.cert_hits, self.hot.cert_refreshes
        );
        out
    }
}

/// Render a label set as `{k="v",…}` (empty string for no labels),
/// appending `extra` (used for histogram `le`) last.
fn fmt_label_set(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, prom_escape(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", k, prom_escape(v));
    }
    out.push('}');
    out
}

/// Escape a Prometheus label value: backslash, double-quote, newline.
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a JSON string body (quotes, backslashes, control characters).
fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            _ => out.push(c),
        }
    }
    out
}

/// Append `,"labels":{…}` for a sample's label set.
fn json_labels(out: &mut String, labels: &[(&'static str, String)]) {
    let _ = write!(out, ",\"labels\":{{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, ",");
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    let _ = write!(out, "}}");
}

/// Canonical metric names, so instrumentation sites, the README table,
/// tests, and dashboards agree on spelling. Label conventions:
/// `backend` = summary kind label, `outcome` = result class of a
/// multi-way operation, `kind` = fault/spill subtype.
pub mod names {
    /// Points accepted by a backend's batch path (`backend` label).
    pub const INGEST_POINTS: &str = "streamhull_ingest_points_total";
    /// Batches (chunks) processed by a backend (`backend` label).
    pub const INGEST_BATCHES: &str = "streamhull_ingest_batches_total";
    /// Per-chunk ingest latency in ns/point (`backend` label, histogram).
    pub const INGEST_NS_PER_POINT: &str = "streamhull_ingest_ns_per_point";

    /// Window generation seals (bucket boundaries crossed).
    pub const WINDOW_SEALS: &str = "streamhull_window_seals_total";
    /// Same-size bucket merges in the exponential-histogram chain.
    pub const WINDOW_MERGES: &str = "streamhull_window_merges_total";
    /// Buckets expired off the tail of the window.
    pub const WINDOW_EXPIRIES: &str = "streamhull_window_expiries_total";
    /// Staleness of the oldest retained bucket, in ticks (gauge).
    pub const WINDOW_STALENESS: &str = "streamhull_window_staleness_ticks";

    /// Checkpoint snapshot encode latency in ns (histogram).
    pub const CHECKPOINT_ENCODE_NS: &str = "streamhull_checkpoint_encode_ns";
    /// Checkpoint snapshot decode/verify latency in ns (histogram).
    pub const CHECKPOINT_DECODE_NS: &str = "streamhull_checkpoint_decode_ns";

    /// Faults observed by the supervisor (`kind` label).
    pub const RECOVERY_FAULTS: &str = "streamhull_recovery_faults_total";
    /// Checkpoints accepted / rejected (`outcome` label).
    pub const RECOVERY_CHECKPOINTS: &str = "streamhull_recovery_checkpoints_total";
    /// Chunks replayed from checkpoint.
    pub const RECOVERY_REPLAYED_CHUNKS: &str = "streamhull_recovery_replayed_chunks_total";
    /// Points replayed from checkpoint.
    pub const RECOVERY_REPLAYED_POINTS: &str = "streamhull_recovery_replayed_points_total";
    /// Points lost to unrecoverable faults.
    pub const RECOVERY_LOST_POINTS: &str = "streamhull_recovery_lost_points_total";
    /// Non-finite coordinates dropped at the door.
    pub const RECOVERY_DROPPED_NON_FINITE: &str = "streamhull_recovery_dropped_non_finite_total";
    /// Non-finite coordinates injected by the fault plan.
    pub const RECOVERY_INJECTED_NON_FINITE: &str = "streamhull_recovery_injected_non_finite_total";

    /// Tenant admission outcomes (`outcome` label: `admitted` /
    /// `rejected`).
    pub const TENANT_STREAMS: &str = "streamhull_tenant_streams_total";
    /// Finite points offered to admitted tenants (`== ingested + shed`).
    pub const TENANT_POINTS_SEEN: &str = "streamhull_tenant_points_seen_total";
    /// Points ingested across all tenants.
    pub const TENANT_POINTS_INGESTED: &str = "streamhull_tenant_points_ingested_total";
    /// Points shed by overload policy.
    pub const TENANT_POINTS_SHED: &str = "streamhull_tenant_points_shed_total";
    /// Points refused with a typed error.
    pub const TENANT_POINTS_REJECTED: &str = "streamhull_tenant_points_rejected_total";
    /// Spill / restore operations (`kind` label: `spill` / `restore`).
    pub const TENANT_TIER_OPS: &str = "streamhull_tenant_tier_ops_total";
    /// Bytes moved by spill / restore (`kind` label).
    pub const TENANT_TIER_BYTES: &str = "streamhull_tenant_tier_bytes_total";
    /// Streams evicted under memory pressure.
    pub const TENANT_EVICTIONS: &str = "streamhull_tenant_evictions_total";
    /// Accuracy degradations applied by overload policy.
    pub const TENANT_DEGRADATIONS: &str = "streamhull_tenant_degradations_total";
    /// Streams quarantined on corrupt state.
    pub const TENANT_QUARANTINES: &str = "streamhull_tenant_quarantines_total";
    /// Ledger events dropped by the bounded `PressureReport` trail.
    pub const TENANT_EVENTS_DROPPED: &str = "streamhull_tenant_events_dropped_total";
    /// Estimated summary bytes currently resident (gauge).
    pub const TENANT_BYTES_IN_USE: &str = "streamhull_tenant_bytes_in_use";
    /// High-water mark of accounted bytes (gauge).
    pub const TENANT_BYTES_PEAK: &str = "streamhull_tenant_bytes_peak";
    /// Streams currently in the hot tier (gauge).
    pub const TENANT_HOT_STREAMS: &str = "streamhull_tenant_hot_streams";
    /// Streams currently spilled cold (gauge).
    pub const TENANT_COLD_STREAMS: &str = "streamhull_tenant_cold_streams";
    /// Streams currently quarantined (gauge).
    pub const TENANT_QUARANTINED_STREAMS: &str = "streamhull_tenant_quarantined_streams";

    /// Analytic answers served by the query layer (`kind` label: `width` /
    /// `diameter` / `extent` / `bbox` / `incircle`).
    pub const QUERY_ANSWERS: &str = "streamhull_query_answers_total";
    /// Answers served straight from the generation-keyed query cache.
    pub const QUERY_CACHE_HITS: &str = "streamhull_query_cache_hits_total";
    /// Answers recomputed on the summary hull (then cached).
    pub const QUERY_CACHE_MISSES: &str = "streamhull_query_cache_misses_total";
    /// Per-answer serving latency in ns (histogram).
    pub const QUERY_LATENCY_NS: &str = "streamhull_query_latency_ns";
    /// Streams examined by top-k fleet scans.
    pub const QUERY_TOPK_SCANNED: &str = "streamhull_query_topk_scanned_total";
    /// Streams discharged by the bbox upper bound in top-k scans.
    pub const QUERY_TOPK_PRUNED: &str = "streamhull_query_topk_pruned_total";
    /// Separation-join pair outcomes (`outcome` label: `bbox_reject` /
    /// `incircle_accept` / `exact`).
    pub const QUERY_JOIN_PAIRS: &str = "streamhull_query_join_pairs_total";
}

/// Process-wide hot-kernel tallies.
///
/// The interior-certificate cache lives inside per-batch kernel loops
/// that have no `Telemetry` handle (and must not pay a lookup); instead
/// each batch flushes its hit/refresh counts here — two relaxed adds per
/// *batch*, not per point. Cumulative for the process lifetime, so tests
/// assert on deltas, not absolutes.
pub mod hot {
    use std::sync::atomic::{AtomicU64, Ordering};

    static CERT_HITS: AtomicU64 = AtomicU64::new(0);
    static CERT_REFRESHES: AtomicU64 = AtomicU64::new(0);

    /// Interior-certificate cache outcomes since process start.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    #[must_use]
    pub struct HotKernelStats {
        /// Points answered by a cached interior certificate (no hull
        /// rebuild, no exact predicate).
        pub cert_hits: u64,
        /// Certificate rebuilds after a miss.
        pub cert_refreshes: u64,
    }

    impl HotKernelStats {
        /// Hits per certificate outcome, `0.0` when nothing ran.
        pub fn hit_rate(&self) -> f64 {
            let total = self.cert_hits + self.cert_refreshes;
            if total == 0 {
                0.0
            } else {
                self.cert_hits as f64 / total as f64
            }
        }
    }

    /// Flush one batch's certificate tallies (called from the kernel's
    /// batch epilogue).
    pub fn record_cert(hits: u64, refreshes: u64) {
        if hits > 0 {
            CERT_HITS.fetch_add(hits, Ordering::Relaxed);
        }
        if refreshes > 0 {
            CERT_REFRESHES.fetch_add(refreshes, Ordering::Relaxed);
        }
    }

    /// Current process-wide tallies.
    pub fn snapshot() -> HotKernelStats {
        HotKernelStats {
            cert_hits: CERT_HITS.load(Ordering::Relaxed),
            cert_refreshes: CERT_REFRESHES.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_scrapes_empty() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let c = tel.counter("x_total", &[]);
        c.add(5);
        tel.gauge("g", &[]).set(7);
        tel.histogram("h", &[]).record(3);
        tel.event("t", "e", 0, &[]);
        let s = tel.scrape();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.events.is_empty());
    }

    #[test]
    fn counter_registration_dedups_and_label_order_is_canonical() {
        let tel = Telemetry::new();
        let a = tel.counter("c_total", &[("b", "2"), ("a", "1")]);
        let b = tel.counter("c_total", &[("a", "1"), ("b", "2")]);
        a.add(3);
        b.add(4);
        let s = tel.scrape();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(
            s.counter_with("c_total", &[("b", "2"), ("a", "1")]),
            Some(7)
        );
    }

    #[test]
    fn histogram_buckets_cover_zero_small_and_saturating_values() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let tel = Telemetry::new();
        let h = tel.histogram("lat_ns", &[]);
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let s = tel.scrape();
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].count, 6);
        assert_eq!(s.histograms[0].buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn trace_ring_keeps_newest_and_counts_drops() {
        let tel = Telemetry::with_trace_capacity(3);
        for tick in 0..5u64 {
            tel.event("t", "e", tick, &[("i", tick as i64)]);
        }
        let s = tel.scrape();
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.events_dropped, 2);
        // Newest survive; seq stays a total order.
        assert_eq!(s.events[0].seq, 2);
        assert_eq!(s.events[2].seq, 4);
        assert_eq!(s.events[2].tick, 4);
    }

    #[test]
    fn span_emits_duration_fields() {
        let tel = Telemetry::new();
        let span = tel.span("t", "work", 10);
        span.end(14);
        let s = tel.scrape();
        assert_eq!(s.events.len(), 1);
        assert_eq!(
            s.events[0].fields,
            vec![("start_tick", 10), ("duration_ticks", 4)]
        );
    }

    #[test]
    fn prometheus_text_escapes_and_orders() {
        let tel = Telemetry::new();
        tel.counter("m_total", &[("path", "a\\b\"c\nd")]).inc();
        tel.gauge("level", &[]).set(-3);
        tel.histogram("lat_ns", &[]).record(2);
        let text = tel.scrape().to_prometheus_text();
        assert!(text.contains("# TYPE m_total counter"));
        assert!(text.contains("m_total{path=\"a\\\\b\\\"c\\nd\"} 1"));
        assert!(text.contains("level -3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ns_count 1"));
        assert!(text.contains("lat_ns_sum 2"));
    }

    #[test]
    fn json_lines_one_object_per_line() {
        let tel = Telemetry::new();
        tel.counter("m_total", &[("k", "v\"q")]).inc();
        tel.event("t", "e", 1, &[("f", -2)]);
        let out = tel.scrape().to_json_lines();
        for line in out.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
        }
        assert!(out.contains("\"k\":\"v\\\"q\""));
        assert!(out.contains("\"fields\":{\"f\":-2}"));
    }

    #[test]
    fn striped_counters_merge_across_threads() {
        let tel = Telemetry::new();
        let c = tel.counter("threads_total", &[]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(tel.scrape().counter_total("threads_total"), 8000);
    }
}
