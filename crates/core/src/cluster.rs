//! ClusterHull — the paper's §8 extension (developed by the authors in
//! "Summarizing spatial data streams using ClusterHulls", ALENEX 2006):
//! a *shape* summary that reveals cavities and multiple components which a
//! single convex hull hides ("if the points formed an 'L' shape, then the
//! convex hull approximation hides the cavity").
//!
//! This is a faithful-in-spirit, simplified implementation: the stream is
//! partitioned online into at most `k` clusters, each summarised by its
//! own [`AdaptiveHull`]; when over budget, the pair of clusters whose
//! union hull has the smallest *cost increase* is merged (cost = hull area
//! plus a perimeter² term, the ALENEX paper's objective, which prefers
//! merging nearby/overlapping clusters and resists bridging distant
//! blobs). Merging re-summarises the union of the two samples, so the
//! whole structure remains a single-pass, `O(k·r)`-point summary.

use crate::adaptive::stream::{AdaptiveHull, AdaptiveHullConfig};
use crate::summary::{GenCache, HullCache, HullSummary, Mergeable};
use geom::{ConvexPolygon, Point2};

/// Configuration for [`ClusterHull`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterHullConfig {
    /// Maximum number of clusters `k`.
    pub max_clusters: usize,
    /// Adaptive-hull parameter per cluster.
    pub r: u32,
    /// Weight of the perimeter² term in the cost objective. The ALENEX
    /// paper's objective is `area + w·perimeter²`; `w = 0.05` works well
    /// for blob-like data.
    pub perimeter_weight: f64,
    /// A point within `join_factor · perimeter` of its nearest cluster
    /// joins it directly instead of opening a (transient) new cluster.
    pub join_factor: f64,
}

impl ClusterHullConfig {
    /// Sensible defaults for `k` clusters.
    pub fn new(max_clusters: usize) -> Self {
        assert!(max_clusters >= 1);
        ClusterHullConfig {
            max_clusters,
            r: 16,
            perimeter_weight: 0.05,
            join_factor: 0.1,
        }
    }

    /// Sets the per-cluster adaptive parameter.
    pub fn with_r(mut self, r: u32) -> Self {
        self.r = r;
        self
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    summary: AdaptiveHull,
    hull: ConvexPolygon, // cached; refreshed on change
    /// Generation `hull` was cloned at — interior points leave the
    /// summary's hull untouched, so the per-point clone is skipped unless
    /// the generation advanced (the dominant cost of cluster ingestion
    /// before this check).
    hull_gen: u64,
}

impl Cluster {
    fn new(r: u32, p: Point2) -> Self {
        let mut summary = AdaptiveHull::new(AdaptiveHullConfig::new(r));
        summary.insert(p);
        let hull = summary.hull();
        let hull_gen = summary.hull_generation();
        Cluster {
            summary,
            hull,
            hull_gen,
        }
    }

    fn insert(&mut self, p: Point2) {
        self.summary.insert(p);
        self.refresh_hull();
    }

    fn refresh_hull(&mut self) {
        let gen = self.summary.hull_generation();
        if gen != self.hull_gen {
            self.hull = self.summary.hull();
            self.hull_gen = gen;
        }
    }

    fn cost(&self, w: f64) -> f64 {
        let per = self.hull.perimeter();
        self.hull.area() + w * per * per
    }
}

/// Online cluster-of-hulls shape summary (paper §8 / ALENEX'06 follow-up).
///
/// # Example
/// ```
/// use adaptive_hull::cluster::{ClusterHull, ClusterHullConfig};
/// use adaptive_hull::HullSummary;
/// use geom::Point2;
///
/// let mut ch = ClusterHull::new(ClusterHullConfig::new(4).with_r(8));
/// for i in 0..200 {
///     let t = i as f64 * 0.1;
///     ch.insert(Point2::new(t.cos(), t.sin()));           // ring at origin
///     ch.insert(Point2::new(50.0 + t.sin(), t.cos()));    // blob far away
/// }
/// // The two components stay separate (possibly split into <= 4 pieces
/// // while the budget allows); the gap between them is never covered.
/// assert!(ch.cluster_count() <= 4);
/// assert!(ch.covers(Point2::new(0.0, 0.0)));
/// assert!(ch.covers(Point2::new(50.0, 0.0)));
/// assert!(!ch.covers(Point2::new(25.0, 0.0)));
/// ```
#[derive(Debug, Clone)]
pub struct ClusterHull {
    config: ClusterHullConfig,
    clusters: Vec<Cluster>,
    seen: u64,
    /// Cache of the union hull reported through [`HullSummary::hull_ref`].
    cache: HullCache,
    distinct: GenCache<usize>,
}

impl ClusterHull {
    /// Creates an empty cluster summary.
    pub fn new(config: ClusterHullConfig) -> Self {
        ClusterHull {
            config,
            clusters: Vec::new(),
            seen: 0,
            cache: HullCache::new(),
            distinct: GenCache::new(),
        }
    }

    /// Number of clusters currently maintained.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The per-cluster hulls.
    pub fn hulls(&self) -> Vec<ConvexPolygon> {
        self.clusters.iter().map(|c| c.hull.clone()).collect()
    }

    /// Sum of the cluster hull areas — the "shape area". For cavity-laden
    /// or multi-component streams this is far below the single-hull area.
    pub fn total_area(&self) -> f64 {
        self.clusters.iter().map(|c| c.hull.area()).sum()
    }

    /// `true` iff `p` lies in some cluster hull (the summarised shape).
    /// This is the shape query; [`HullSummary::hull_ref`] reports the
    /// single convex hull over all clusters instead.
    pub fn covers(&self, p: Point2) -> bool {
        self.clusters
            .iter()
            .any(|c| geom::locate::contains(&c.hull, p))
    }

    /// All stored sample points across the clusters.
    pub fn all_sample_points(&self) -> Vec<Point2> {
        self.clusters
            .iter()
            .flat_map(|c| c.summary.sample_points())
            .collect()
    }

    /// One point without cache bookkeeping (the caller invalidates: per
    /// point for `insert`, once per batch for `insert_batch`).
    fn insert_impl(&mut self, p: Point2) {
        assert!(p.is_finite(), "ClusterHull requires finite coordinates");
        self.seen += 1;
        // Assign to the cluster whose hull is nearest (0 when inside).
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = c.hull.distance_to_point(p);
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((i, d));
            }
            if d == 0.0 {
                break;
            }
        }
        // Join the nearest cluster when inside it or within the join
        // margin of its boundary (prevents steady-state churn where every
        // boundary point spawns a transient cluster).
        if let Some((i, d)) = best {
            let margin = self.config.join_factor * self.clusters[i].hull.perimeter();
            if d <= margin {
                self.clusters[i].insert(p);
                return;
            }
        }
        match best {
            Some((i, 0.0)) => self.clusters[i].insert(p),
            _ => {
                // Outside every hull: open a new cluster, then enforce the
                // budget by merging the cheapest pair. (Opening first and
                // merging after lets the cost objective decide whether the
                // point really belongs to its nearest cluster.)
                self.clusters.push(Cluster::new(self.config.r, p));
                while self.clusters.len() > self.config.max_clusters {
                    self.merge_cheapest_pair();
                }
            }
        }
    }

    /// Merges the pair of clusters minimising the cost increase
    /// `cost(A ∪ B) − cost(A) − cost(B)`.
    fn merge_cheapest_pair(&mut self) {
        let w = self.config.perimeter_weight;
        let n = self.clusters.len();
        debug_assert!(n >= 2);
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                let mut pts = self.clusters[i].summary.sample_points();
                pts.extend(self.clusters[j].summary.sample_points());
                let hull = ConvexPolygon::hull_of(&pts);
                let per = hull.perimeter();
                let merged_cost = hull.area() + w * per * per;
                let delta = merged_cost - self.clusters[i].cost(w) - self.clusters[j].cost(w);
                if delta < best.2 {
                    best = (i, j, delta);
                }
            }
        }
        let (i, j, _) = best;
        let cj = self.clusters.swap_remove(j); // j > i, i stays valid
        let pts = cj.summary.sample_points();
        let carried = cj.summary.points_seen().saturating_sub(pts.len() as u64);
        let _ = carried;
        for p in pts {
            self.clusters[i].summary.insert(p);
        }
        self.clusters[i].hull = self.clusters[i].summary.hull();
        self.clusters[i].hull_gen = self.clusters[i].summary.hull_generation();
    }
}

impl HullSummary for ClusterHull {
    fn insert(&mut self, p: Point2) {
        self.insert_impl(p);
        self.cache.invalidate();
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        // Clustering is order- and interior-sensitive (an interior point
        // still joins and grows a cluster), so no pre-hull reduction is
        // sound; the batch win is one union-hull cache invalidation per
        // chunk instead of per point.
        if points.is_empty() {
            return;
        }
        for &p in points {
            self.insert_impl(p);
        }
        self.cache.invalidate();
    }

    /// The single convex hull over every stored sample point — what the
    /// summary looks like when flattened to the common interface. The
    /// multi-component shape structure stays available through
    /// [`ClusterHull::hulls`] and [`ClusterHull::covers`].
    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| ConvexPolygon::hull_of(&self.all_sample_points()))
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.distinct.get_or_compute(self.cache.generation(), || {
            self.clusters.iter().map(|c| c.summary.sample_size()).sum()
        })
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn name(&self) -> &'static str {
        "cluster"
    }
}

impl Mergeable for ClusterHull {
    fn sample_points(&self) -> Vec<Point2> {
        self.all_sample_points()
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, rad: f64, n: usize, seed: u64) -> Vec<Point2> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let (x, y) = loop {
                    let x = next() * 2.0 - 1.0;
                    let y = next() * 2.0 - 1.0;
                    if x * x + y * y <= 1.0 {
                        break (x, y);
                    }
                };
                Point2::new(cx + x * rad, cy + y * rad)
            })
            .collect()
    }

    #[test]
    fn separated_blobs_stay_separate() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(4).with_r(8));
        let blobs = [
            blob(0.0, 0.0, 1.0, 500, 1),
            blob(20.0, 0.0, 1.0, 500, 2),
            blob(0.0, 20.0, 1.0, 500, 3),
        ];
        // Interleave so clustering cannot rely on arrival order.
        for i in 0..500 {
            for b in &blobs {
                ch.insert(b[i]);
            }
        }
        // Three blobs, up to one transient extra (budget is 4; the cost
        // objective never prefers a cross-blob merge while same-blob pairs
        // exist).
        let k = ch.cluster_count();
        assert!((3..=4).contains(&k), "expected 3-4 clusters, got {k}");
        // Each blob centre is covered, the gaps are not.
        assert!(ch.covers(Point2::new(0.0, 0.0)));
        assert!(ch.covers(Point2::new(20.0, 0.0)));
        assert!(ch.covers(Point2::new(0.0, 20.0)));
        assert!(!ch.covers(Point2::new(10.0, 0.0)));
        assert!(!ch.covers(Point2::new(10.0, 10.0)));
        assert_eq!(ch.points_seen(), 1500);
    }

    #[test]
    fn budget_forces_merging_of_nearest() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(2).with_r(8));
        for p in blob(0.0, 0.0, 1.0, 300, 4) {
            ch.insert(p);
        }
        for p in blob(3.0, 0.0, 1.0, 300, 5) {
            ch.insert(p);
        }
        for p in blob(50.0, 0.0, 1.0, 300, 6) {
            ch.insert(p);
        }
        assert!(ch.cluster_count() <= 2);
        // The two near blobs merged; the far one kept its own cluster:
        // total area stays far below a single hull bridging to x = 50.
        let single = {
            let mut all = blob(0.0, 0.0, 1.0, 300, 4);
            all.extend(blob(3.0, 0.0, 1.0, 300, 5));
            all.extend(blob(50.0, 0.0, 1.0, 300, 6));
            ConvexPolygon::hull_of(&all).area()
        };
        assert!(
            ch.total_area() < single / 3.0,
            "cluster area {} vs single hull {single}",
            ch.total_area()
        );
    }

    #[test]
    fn l_shape_cavity_is_preserved() {
        // The §8 motivating example: an L-shaped stream. A single hull
        // covers the cavity; the cluster hulls should not.
        let mut ch = ClusterHull::new(ClusterHullConfig::new(6).with_r(8));
        let mut s = 9u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut all = Vec::new();
        for _ in 0..4000 {
            // Vertical bar [0,1]x[0,10] and horizontal bar [0,10]x[0,1].
            let p = if next() < 0.5 {
                Point2::new(next(), next() * 10.0)
            } else {
                Point2::new(next() * 10.0, next())
            };
            all.push(p);
            ch.insert(p);
        }
        let single_area = ConvexPolygon::hull_of(&all).area(); // ~50
        let cluster_area = ch.total_area(); // ideal L area = 19
        assert!(
            cluster_area < single_area * 0.75,
            "clusters {cluster_area} should beat single hull {single_area}"
        );
        // The far corner of the cavity must be outside the summarised shape
        // (a single hull would cover it).
        assert!(
            !ch.covers(Point2::new(8.0, 8.0)),
            "cavity corner must stay uncovered"
        );
        // The shape itself is well covered: clusters tile the bars with
        // convex pieces (tiny gaps between adjacent pieces are possible, so
        // measure coverage over the actual stream with a small margin).
        let near = all
            .iter()
            .filter(|p| ch.hulls().iter().any(|h| h.distance_to_point(**p) <= 0.3))
            .count();
        assert!(
            near * 100 >= all.len() * 95,
            "only {near}/{} stream points near the summarised shape",
            all.len()
        );
    }

    #[test]
    fn sample_budget_is_bounded() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(5).with_r(8));
        for p in blob(0.0, 0.0, 5.0, 3000, 10) {
            ch.insert(p);
        }
        assert!(ch.sample_size() <= 5 * (2 * 8 + 1));
    }

    #[test]
    fn degenerate_streams() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(3));
        for _ in 0..50 {
            ch.insert(Point2::new(1.0, 1.0));
        }
        assert_eq!(ch.cluster_count(), 1);
        assert!(ch.covers(Point2::new(1.0, 1.0)));
        assert!(!ch.covers(Point2::new(1.1, 1.0)));
        assert_eq!(ch.total_area(), 0.0);
    }
}
