//! ClusterHull — the paper's §8 extension (developed by the authors in
//! "Summarizing spatial data streams using ClusterHulls", ALENEX 2006):
//! a *shape* summary that reveals cavities and multiple components which a
//! single convex hull hides ("if the points formed an 'L' shape, then the
//! convex hull approximation hides the cavity").
//!
//! This is a faithful-in-spirit, simplified implementation: the stream is
//! partitioned online into at most `k` clusters, each summarised by its
//! own [`AdaptiveHull`]; when over budget, the pair of clusters whose
//! union hull has the smallest *cost increase* is merged (cost = hull area
//! plus a perimeter² term, the ALENEX paper's objective, which prefers
//! merging nearby/overlapping clusters and resists bridging distant
//! blobs). Merging re-summarises the union of the two samples, so the
//! whole structure remains a single-pass, `O(k·r)`-point summary.

use crate::adaptive::stream::{AdaptiveHull, AdaptiveHullConfig};
use crate::batch::incircle;
use crate::summary::{GenCache, HullCache, HullSummary, Mergeable};
use geom::{ConvexPolygon, Point2};
use std::collections::HashMap;

/// Configuration for [`ClusterHull`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterHullConfig {
    /// Maximum number of clusters `k`.
    pub max_clusters: usize,
    /// Adaptive-hull parameter per cluster.
    pub r: u32,
    /// Weight of the perimeter² term in the cost objective. The ALENEX
    /// paper's objective is `area + w·perimeter²`; `w = 0.05` works well
    /// for blob-like data.
    pub perimeter_weight: f64,
    /// A point within `join_factor · perimeter` of its nearest cluster
    /// joins it directly instead of opening a (transient) new cluster.
    pub join_factor: f64,
}

impl ClusterHullConfig {
    /// Sensible defaults for `k` clusters.
    pub fn new(max_clusters: usize) -> Self {
        assert!(max_clusters >= 1);
        ClusterHullConfig {
            max_clusters,
            r: 16,
            perimeter_weight: 0.05,
            join_factor: 0.1,
        }
    }

    /// Sets the per-cluster adaptive parameter.
    pub fn with_r(mut self, r: u32) -> Self {
        self.r = r;
        self
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    /// Stable identity surviving `swap_remove` reordering; the pairwise
    /// merge-cost cache is keyed by id pairs.
    id: u64,
    summary: AdaptiveHull,
    hull: ConvexPolygon, // cached; refreshed on change
    /// Generation `hull` (and every derived cache below) was computed at —
    /// interior points leave the summary's hull untouched, so per-point
    /// recomputation is skipped unless the generation advanced (the
    /// dominant cost of cluster ingestion before this check).
    hull_gen: u64,
    /// Axis-aligned bounding box of `hull` (`min_x, min_y, max_x, max_y`):
    /// the hull lies inside it, so the distance from a query point to the
    /// box lower-bounds the distance to the hull — an O(1) reject for the
    /// nearest-cluster scan.
    bbox: (f64, f64, f64, f64),
    /// Inscribed circle of `hull` (`center, radius²`) from the batch
    /// machinery: a point inside it is strictly inside the hull, i.e. its
    /// distance is exactly 0 — an O(1) accept for the common "point lands
    /// in an existing cluster" case.
    incircle: Option<(Point2, f64)>,
    /// Cached `hull.perimeter()` (the join margin reads it per insert).
    perimeter: f64,
    /// Cached cost `area + w·perimeter²` under the configured weight.
    cost: f64,
}

impl Cluster {
    fn new(id: u64, r: u32, w: f64, p: Point2) -> Self {
        let mut summary = AdaptiveHull::new(AdaptiveHullConfig::new(r));
        summary.insert(p);
        let mut c = Cluster {
            id,
            summary,
            hull: ConvexPolygon::empty(),
            hull_gen: u64::MAX,
            bbox: (0.0, 0.0, 0.0, 0.0),
            incircle: None,
            perimeter: 0.0,
            cost: 0.0,
        };
        c.refresh(w);
        c
    }

    fn insert(&mut self, p: Point2, w: f64) {
        self.summary.insert(p);
        self.refresh(w);
    }

    /// Recomputes the hull clone and every derived cache iff the summary's
    /// hull generation advanced since the last refresh.
    fn refresh(&mut self, w: f64) {
        let gen = self.summary.hull_generation();
        if gen == self.hull_gen {
            return;
        }
        self.hull = self.summary.hull();
        self.hull_gen = gen;
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in self.hull.vertices() {
            min_x = min_x.min(v.x);
            min_y = min_y.min(v.y);
            max_x = max_x.max(v.x);
            max_y = max_y.max(v.y);
        }
        self.bbox = (min_x, min_y, max_x, max_y);
        self.incircle = incircle(&self.hull);
        self.perimeter = self.hull.perimeter();
        self.cost = self.hull.area() + w * self.perimeter * self.perimeter;
    }

    /// Squared distance from `p` to the bounding box (0 inside): a lower
    /// bound on `hull.distance_to_point(p)²` because the hull is contained
    /// in the box.
    #[inline]
    fn bbox_dist_sq(&self, p: Point2) -> f64 {
        let (min_x, min_y, max_x, max_y) = self.bbox;
        let dx = (min_x - p.x).max(p.x - max_x).max(0.0);
        let dy = (min_y - p.y).max(p.y - max_y).max(0.0);
        dx * dx + dy * dy
    }

    /// Exact containment (`distance == 0`) with O(1) filters in front:
    /// the inscribed-circle accept, the bbox reject, then the `O(log h)`
    /// fan search. Agrees with `hull.distance_to_point(p) == 0.0` on every
    /// input.
    #[inline]
    fn contains(&self, p: Point2) -> bool {
        if let Some((c, r2)) = self.incircle {
            if (p - c).norm_sq() <= r2 {
                return true;
            }
        }
        let (min_x, min_y, max_x, max_y) = self.bbox;
        if p.x < min_x || p.x > max_x || p.y < min_y || p.y > max_y {
            return false;
        }
        geom::locate::contains(&self.hull, p)
    }
}

/// Merge-cost cache entry: the cost delta of merging an id pair, valid
/// while both clusters still sit at the recorded hull generations.
#[derive(Clone, Copy, Debug)]
struct PairCost {
    gen_lo: u64,
    gen_hi: u64,
    delta: f64,
}

/// Online cluster-of-hulls shape summary (paper §8 / ALENEX'06 follow-up).
///
/// # Example
/// ```
/// use adaptive_hull::cluster::{ClusterHull, ClusterHullConfig};
/// use adaptive_hull::HullSummary;
/// use geom::Point2;
///
/// let mut ch = ClusterHull::new(ClusterHullConfig::new(4).with_r(8));
/// for i in 0..200 {
///     let t = i as f64 * 0.1;
///     ch.insert(Point2::new(t.cos(), t.sin()));           // ring at origin
///     ch.insert(Point2::new(50.0 + t.sin(), t.cos()));    // blob far away
/// }
/// // The two components stay separate (possibly split into <= 4 pieces
/// // while the budget allows); the gap between them is never covered.
/// assert!(ch.cluster_count() <= 4);
/// assert!(ch.covers(Point2::new(0.0, 0.0)));
/// assert!(ch.covers(Point2::new(50.0, 0.0)));
/// assert!(!ch.covers(Point2::new(25.0, 0.0)));
/// ```
#[derive(Debug, Clone)]
pub struct ClusterHull {
    config: ClusterHullConfig,
    clusters: Vec<Cluster>,
    seen: u64,
    /// Cache of the union hull reported through [`HullSummary::hull_ref`].
    cache: HullCache,
    distinct: GenCache<usize>,
    /// Next cluster id (monotone; ids are never reused).
    next_id: u64,
    /// Pairwise merge-cost deltas keyed by `(id_lo, id_hi)`. Entries stay
    /// valid while both clusters' hull generations are unchanged, so a
    /// budget trip only recomputes the rows touched by clusters that
    /// actually changed since the last trip instead of re-hulling all
    /// O(k²) pairs.
    pair_costs: HashMap<(u64, u64), PairCost>,
    /// Scratch for the union-of-samples point set (reused across merges).
    merge_scratch: Vec<Point2>,
    /// Scratch for the monotone chain inside `assign_hull_of`.
    hull_scratch: Vec<Point2>,
    /// Reused polygon buffer for candidate union hulls.
    trial_hull: ConvexPolygon,
}

impl ClusterHull {
    /// Creates an empty cluster summary.
    pub fn new(config: ClusterHullConfig) -> Self {
        ClusterHull {
            config,
            clusters: Vec::new(),
            seen: 0,
            cache: HullCache::new(),
            distinct: GenCache::new(),
            next_id: 0,
            pair_costs: HashMap::new(),
            merge_scratch: Vec::new(),
            hull_scratch: Vec::new(),
            trial_hull: ConvexPolygon::empty(),
        }
    }

    /// Number of clusters currently maintained.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The per-cluster hulls.
    pub fn hulls(&self) -> Vec<ConvexPolygon> {
        self.clusters.iter().map(|c| c.hull.clone()).collect()
    }

    /// Sum of the cluster hull areas — the "shape area". For cavity-laden
    /// or multi-component streams this is far below the single-hull area.
    pub fn total_area(&self) -> f64 {
        self.clusters.iter().map(|c| c.hull.area()).sum()
    }

    /// `true` iff `p` lies in some cluster hull (the summarised shape).
    /// This is the shape query; [`HullSummary::hull_ref`] reports the
    /// single convex hull over all clusters instead.
    pub fn covers(&self, p: Point2) -> bool {
        self.clusters
            .iter()
            .any(|c| geom::locate::contains(&c.hull, p))
    }

    /// All stored sample points across the clusters.
    pub fn all_sample_points(&self) -> Vec<Point2> {
        self.clusters
            .iter()
            .flat_map(|c| c.summary.sample_points())
            .collect()
    }

    /// One point without cache bookkeeping (the caller invalidates: per
    /// point for `insert`, once per batch for `insert_batch`).
    fn insert_impl(&mut self, p: Point2) {
        assert!(p.is_finite(), "ClusterHull requires finite coordinates");
        self.seen += 1;
        let w = self.config.perimeter_weight;
        // Assign to the cluster whose hull is nearest (0 when inside),
        // picking exactly the cluster the plain O(k·h) distance scan
        // would: the first index attaining the strict minimum, with an
        // early exit at distance 0.
        //
        // Pass 1 — containment: a cluster containing `p` has distance 0,
        // which beats every earlier (strictly positive) distance and ends
        // the plain scan, so the *first containing cluster* is the winner
        // whenever one exists. Containment is O(1) for the bulk of points
        // (inscribed-circle accept / bbox reject) and O(log h) otherwise —
        // no exact distances at all on this path, which is the hot one:
        // in steady state almost every point lands inside some cluster.
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            if c.contains(p) {
                best = Some((i, 0.0));
                break;
            }
        }
        // Pass 2 — `p` escapes every hull: now the exact nearest matters.
        // The bbox lower bound skips clusters that provably cannot beat
        // the incumbent (only a strictly smaller distance displaces it),
        // and the containment test inside `distance_to_point` is skipped —
        // pass 1 already proved `p` outside.
        if best.is_none() {
            for (i, c) in self.clusters.iter().enumerate() {
                if let Some((_, bd)) = best {
                    if c.bbox_dist_sq(p) >= bd * bd {
                        continue;
                    }
                }
                let d = c.hull.boundary_distance(p);
                if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, d));
                }
            }
        }
        // Join the nearest cluster when inside it or within the join
        // margin of its boundary (prevents steady-state churn where every
        // boundary point spawns a transient cluster).
        if let Some((i, d)) = best {
            let margin = self.config.join_factor * self.clusters[i].perimeter;
            if d <= margin {
                self.clusters[i].insert(p, w);
                return;
            }
        }
        // Reaching here means no cluster exists yet, or the nearest one is
        // beyond its join margin (a contained point has d = 0 <= margin and
        // joined above): open a new cluster, then enforce the budget by
        // merging the cheapest pair. (Opening first and merging after lets
        // the cost objective decide whether the point really belongs to
        // its nearest cluster.)
        let id = self.next_id;
        self.next_id += 1;
        self.clusters.push(Cluster::new(id, self.config.r, w, p));
        while self.clusters.len() > self.config.max_clusters {
            self.merge_cheapest_pair();
        }
    }

    /// Snapshot payload: the configuration, stream accounting, and each
    /// cluster as `(stable id, nested AdaptiveHull envelope)` — the same
    /// codec all the way down. The derived per-cluster caches (hull, bbox,
    /// incircle, cost) and the pairwise merge-cost cache are pure
    /// memoisations of that state and are recomputed on restore.
    pub(crate) fn snapshot_payload(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_bytes, put_f64, put_u32, put_u64, Snapshot};
        put_u64(out, self.config.max_clusters as u64);
        put_u32(out, self.config.r);
        put_f64(out, self.config.perimeter_weight);
        put_f64(out, self.config.join_factor);
        put_u64(out, self.seen);
        put_u64(out, self.next_id);
        put_u64(out, self.clusters.len() as u64);
        for c in &self.clusters {
            put_u64(out, c.id);
            put_bytes(out, &c.summary.encode());
        }
    }

    /// Inverse of [`ClusterHull::snapshot_payload`].
    pub(crate) fn from_snapshot_payload(
        reader: &mut crate::snapshot::Reader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{Snapshot, SnapshotError};
        let max_clusters = reader.u64()? as usize;
        if max_clusters < 1 {
            return Err(SnapshotError::Malformed("cluster budget must be >= 1"));
        }
        let r = reader.u32()?;
        if !r.is_power_of_two() || !(8..=1 << 20).contains(&r) {
            // Mirrors the per-cluster AdaptiveHull grid assert: without
            // this, a checksum-valid forged payload would decode Ok and
            // panic on the first insert that opens a cluster.
            return Err(SnapshotError::Malformed("cluster r outside the grid range"));
        }
        let perimeter_weight = reader.f64()?;
        let join_factor = reader.f64()?;
        let seen = reader.u64()?;
        let next_id = reader.u64()?;
        let cluster_count = reader.count(16)?;
        if cluster_count > max_clusters {
            return Err(SnapshotError::Malformed("more clusters than the budget"));
        }
        let config = ClusterHullConfig {
            max_clusters,
            r,
            perimeter_weight,
            join_factor,
        };
        let mut s = ClusterHull::new(config);
        s.seen = seen;
        s.next_id = next_id;
        let mut ids_seen = Vec::with_capacity(cluster_count);
        for _ in 0..cluster_count {
            let id = reader.u64()?;
            if id >= next_id || ids_seen.contains(&id) {
                return Err(SnapshotError::Malformed("invalid cluster id"));
            }
            ids_seen.push(id);
            let summary = AdaptiveHull::decode(reader.bytes()?)?;
            let mut cluster = Cluster {
                id,
                summary,
                hull: ConvexPolygon::empty(),
                hull_gen: u64::MAX,
                bbox: (0.0, 0.0, 0.0, 0.0),
                incircle: None,
                perimeter: 0.0,
                cost: 0.0,
            };
            cluster.refresh(perimeter_weight);
            s.clusters.push(cluster);
        }
        Ok(s)
    }

    /// The cost delta of merging clusters `i` and `j`, served from the
    /// pairwise cache when both clusters are unchanged since it was
    /// computed, recomputed (and re-cached) otherwise.
    fn pair_delta(&mut self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.clusters[i], &self.clusters[j]);
        let (key, gen_lo, gen_hi) = if a.id < b.id {
            ((a.id, b.id), a.hull_gen, b.hull_gen)
        } else {
            ((b.id, a.id), b.hull_gen, a.hull_gen)
        };
        if let Some(e) = self.pair_costs.get(&key) {
            if e.gen_lo == gen_lo && e.gen_hi == gen_hi {
                return e.delta;
            }
        }
        self.merge_scratch.clear();
        self.merge_scratch.extend(a.summary.sample_points());
        self.merge_scratch.extend(b.summary.sample_points());
        let mut trial = core::mem::replace(&mut self.trial_hull, ConvexPolygon::empty());
        trial.assign_hull_of(&self.merge_scratch, &mut self.hull_scratch);
        let per = trial.perimeter();
        let w = self.config.perimeter_weight;
        let merged_cost = trial.area() + w * per * per;
        self.trial_hull = trial;
        let delta = merged_cost - self.clusters[i].cost - self.clusters[j].cost;
        self.pair_costs.insert(
            key,
            PairCost {
                gen_lo,
                gen_hi,
                delta,
            },
        );
        delta
    }

    /// Merges the pair of clusters minimising the cost increase
    /// `cost(A ∪ B) − cost(A) − cost(B)`.
    ///
    /// Pair deltas are served from [`ClusterHull::pair_costs`]: between
    /// budget trips only the clusters that absorbed points (or the freshly
    /// opened one) have advanced generations, so the quadratic re-hulling
    /// of every pair collapses to the handful of changed rows.
    fn merge_cheapest_pair(&mut self) {
        let n = self.clusters.len();
        debug_assert!(n >= 2);
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                let delta = self.pair_delta(i, j);
                if delta < best.2 {
                    best = (i, j, delta);
                }
            }
        }
        let (i, j, _) = best;
        let cj = self.clusters.swap_remove(j); // j > i, i stays valid
                                               // Absorb the loser wholesale: its stored sample is re-summarised
                                               // and the points it consumed-but-dropped are carried into the
                                               // survivor's seen-count, so per-cluster accounting never loses the
                                               // points an absorbed cluster had already digested.
        self.clusters[i].summary.merge_from(&cj.summary);
        let w = self.config.perimeter_weight;
        self.clusters[i].refresh(w);
        // Drop cache rows referencing the dead id; rows touching the
        // survivor self-invalidate through its advanced generation.
        let dead = cj.id;
        self.pair_costs
            .retain(|&(lo, hi), _| lo != dead && hi != dead);
    }
}

impl HullSummary for ClusterHull {
    fn insert(&mut self, p: Point2) {
        // Non-finite points are dropped, not counted (see `HullSummary`).
        if !p.is_finite() {
            return;
        }
        self.insert_impl(p);
        self.cache.invalidate();
    }

    fn insert_batch(&mut self, points: &[Point2]) {
        if points.iter().any(|p| !p.is_finite()) {
            // Drop non-finite points up front (the loop path drops them one
            // by one); recursing on the all-finite remainder preserves the
            // batch == loop equivalence contract.
            let finite: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
            self.insert_batch(&finite);
            return;
        }
        // Clustering is order- and interior-sensitive (an interior point
        // still joins and grows a cluster), so no pre-hull reduction is
        // sound; the batch win is one union-hull cache invalidation per
        // chunk instead of per point.
        if points.is_empty() {
            return;
        }
        for &p in points {
            self.insert_impl(p);
        }
        self.cache.invalidate();
    }

    /// The single convex hull over every stored sample point — what the
    /// summary looks like when flattened to the common interface. The
    /// multi-component shape structure stays available through
    /// [`ClusterHull::hulls`] and [`ClusterHull::covers`].
    fn hull_ref(&self) -> &ConvexPolygon {
        self.cache
            .get_or_rebuild(|| ConvexPolygon::hull_of(&self.all_sample_points()))
    }

    fn hull_generation(&self) -> u64 {
        self.cache.generation()
    }

    fn sample_size(&self) -> usize {
        self.distinct.get_or_compute(self.cache.generation(), || {
            self.clusters.iter().map(|c| c.summary.sample_size()).sum()
        })
    }

    fn points_seen(&self) -> u64 {
        self.seen
    }

    fn approx_bytes(&self) -> usize {
        // Each cluster carries a full adaptive summary plus cached
        // geometry (hull, bbox, incircle); the pairwise merge-cost cache
        // rides on top. Dominates the trait default by design: a cluster
        // summary's envelope serializes every member hull, and spilling
        // must shrink the accounted footprint.
        let clusters: usize = self
            .clusters
            .iter()
            .map(|c| c.summary.approx_bytes() + 128 + c.hull.len() * size_of::<Point2>())
            .sum();
        192 + clusters + self.pair_costs.len() * 48
    }

    fn name(&self) -> &'static str {
        "cluster"
    }
}

impl Mergeable for ClusterHull {
    fn sample_points(&self) -> Vec<Point2> {
        self.all_sample_points()
    }

    fn absorb_seen(&mut self, n: u64) {
        self.seen += n;
    }

    fn encode_snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, rad: f64, n: usize, seed: u64) -> Vec<Point2> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let (x, y) = loop {
                    let x = next() * 2.0 - 1.0;
                    let y = next() * 2.0 - 1.0;
                    if x * x + y * y <= 1.0 {
                        break (x, y);
                    }
                };
                Point2::new(cx + x * rad, cy + y * rad)
            })
            .collect()
    }

    #[test]
    fn separated_blobs_stay_separate() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(4).with_r(8));
        let blobs = [
            blob(0.0, 0.0, 1.0, 500, 1),
            blob(20.0, 0.0, 1.0, 500, 2),
            blob(0.0, 20.0, 1.0, 500, 3),
        ];
        // Interleave so clustering cannot rely on arrival order.
        for i in 0..500 {
            for b in &blobs {
                ch.insert(b[i]);
            }
        }
        // Three blobs, up to one transient extra (budget is 4; the cost
        // objective never prefers a cross-blob merge while same-blob pairs
        // exist).
        let k = ch.cluster_count();
        assert!((3..=4).contains(&k), "expected 3-4 clusters, got {k}");
        // Each blob centre is covered, the gaps are not.
        assert!(ch.covers(Point2::new(0.0, 0.0)));
        assert!(ch.covers(Point2::new(20.0, 0.0)));
        assert!(ch.covers(Point2::new(0.0, 20.0)));
        assert!(!ch.covers(Point2::new(10.0, 0.0)));
        assert!(!ch.covers(Point2::new(10.0, 10.0)));
        assert_eq!(ch.points_seen(), 1500);
    }

    #[test]
    fn budget_forces_merging_of_nearest() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(2).with_r(8));
        for p in blob(0.0, 0.0, 1.0, 300, 4) {
            ch.insert(p);
        }
        for p in blob(3.0, 0.0, 1.0, 300, 5) {
            ch.insert(p);
        }
        for p in blob(50.0, 0.0, 1.0, 300, 6) {
            ch.insert(p);
        }
        assert!(ch.cluster_count() <= 2);
        // The two near blobs merged; the far one kept its own cluster:
        // total area stays far below a single hull bridging to x = 50.
        let single = {
            let mut all = blob(0.0, 0.0, 1.0, 300, 4);
            all.extend(blob(3.0, 0.0, 1.0, 300, 5));
            all.extend(blob(50.0, 0.0, 1.0, 300, 6));
            ConvexPolygon::hull_of(&all).area()
        };
        assert!(
            ch.total_area() < single / 3.0,
            "cluster area {} vs single hull {single}",
            ch.total_area()
        );
    }

    #[test]
    fn l_shape_cavity_is_preserved() {
        // The §8 motivating example: an L-shaped stream. A single hull
        // covers the cavity; the cluster hulls should not.
        let mut ch = ClusterHull::new(ClusterHullConfig::new(6).with_r(8));
        let mut s = 9u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut all = Vec::new();
        for _ in 0..4000 {
            // Vertical bar [0,1]x[0,10] and horizontal bar [0,10]x[0,1].
            let p = if next() < 0.5 {
                Point2::new(next(), next() * 10.0)
            } else {
                Point2::new(next() * 10.0, next())
            };
            all.push(p);
            ch.insert(p);
        }
        let single_area = ConvexPolygon::hull_of(&all).area(); // ~50
        let cluster_area = ch.total_area(); // ideal L area = 19
        assert!(
            cluster_area < single_area * 0.75,
            "clusters {cluster_area} should beat single hull {single_area}"
        );
        // The far corner of the cavity must be outside the summarised shape
        // (a single hull would cover it).
        assert!(
            !ch.covers(Point2::new(8.0, 8.0)),
            "cavity corner must stay uncovered"
        );
        // The shape itself is well covered: clusters tile the bars with
        // convex pieces (tiny gaps between adjacent pieces are possible, so
        // measure coverage over the actual stream with a small margin).
        let near = all
            .iter()
            .filter(|p| ch.hulls().iter().any(|h| h.distance_to_point(**p) <= 0.3))
            .count();
        assert!(
            near * 100 >= all.len() * 95,
            "only {near}/{} stream points near the summarised shape",
            all.len()
        );
    }

    #[test]
    fn sample_budget_is_bounded() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(5).with_r(8));
        for p in blob(0.0, 0.0, 5.0, 3000, 10) {
            ch.insert(p);
        }
        assert!(ch.sample_size() <= 5 * (2 * 8 + 1));
    }

    #[test]
    fn degenerate_streams() {
        let mut ch = ClusterHull::new(ClusterHullConfig::new(3));
        for _ in 0..50 {
            ch.insert(Point2::new(1.0, 1.0));
        }
        assert_eq!(ch.cluster_count(), 1);
        assert!(ch.covers(Point2::new(1.0, 1.0)));
        assert!(!ch.covers(Point2::new(1.1, 1.0)));
        // A single coincident cluster has exactly zero area.
        assert_eq!(ch.total_area().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn merging_carries_absorbed_seen_counts() {
        // Regression: merge_cheapest_pair used to drop the absorbed
        // cluster's consumed-but-not-stored count (`let _ = carried;`), so
        // after any merge the per-cluster accounting under-reported the
        // stream. The invariant: every stream point is consumed by exactly
        // one cluster summary, so the per-cluster seen-counts always sum
        // to the whole summary's.
        let mut ch = ClusterHull::new(ClusterHullConfig::new(2).with_r(8));
        // Three well-separated dense blobs under a budget of 2 force
        // merges of clusters that have each digested (and dropped) many
        // points.
        for i in 0..400 {
            for (j, b) in [
                blob(0.0, 0.0, 1.0, 400, 21),
                blob(6.0, 0.0, 1.0, 400, 22),
                blob(0.0, 6.0, 1.0, 400, 23),
            ]
            .iter()
            .enumerate()
            {
                ch.insert(b[i]);
                let _ = j;
            }
        }
        let per_cluster: u64 = ch.clusters.iter().map(|c| c.summary.points_seen()).sum();
        assert_eq!(
            per_cluster,
            ch.points_seen(),
            "cluster summaries forgot {} absorbed points",
            ch.points_seen() as i64 - per_cluster as i64
        );
        assert_eq!(ch.points_seen(), 1200);
    }

    #[test]
    fn prefiltered_assignment_matches_plain_scan() {
        // The incircle accept + bbox reject must leave the nearest-cluster
        // decision exactly as the plain O(k·h) distance scan made it; feed
        // an adversarial mixture and compare against a reference scan done
        // with distance_to_point on the live hulls before each insert.
        let mut ch = ClusterHull::new(ClusterHullConfig::new(4).with_r(8));
        let pts: Vec<Point2> = blob(0.0, 0.0, 2.0, 300, 31)
            .into_iter()
            .zip(blob(9.0, 1.0, 2.0, 300, 32))
            .flat_map(|(a, b)| [a, b])
            .collect();
        for &p in &pts {
            // Reference decision on the current state.
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in ch.clusters.iter().enumerate() {
                let d = c.hull.distance_to_point(p);
                if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, d));
                }
                if d == 0.0 {
                    break;
                }
            }
            let expect_join = best
                .map(|(i, d)| d <= ch.config.join_factor * ch.clusters[i].perimeter)
                .unwrap_or(false);
            let counts_before: Vec<u64> = ch
                .clusters
                .iter()
                .map(|c| c.summary.points_seen())
                .collect();
            let k_before = ch.cluster_count();
            ch.insert(p);
            if expect_join {
                let (i, _) = best.unwrap();
                assert_eq!(ch.cluster_count(), k_before, "joined, no new cluster");
                assert_eq!(
                    ch.clusters[i].summary.points_seen(),
                    counts_before[i] + 1,
                    "prefilter sent the point to a different cluster"
                );
            }
        }
    }
}
