//! # sh-stream — synthetic geometric point streams
//!
//! Workload generators for evaluating stream summaries, reproducing every
//! distribution used in the paper's experiments (§7) plus the lower-bound
//! construction (§5.4) and a few adversarial extras:
//!
//! * uniform **disk**, **square**, and **ellipse** (with aspect ratio and
//!   rotation — the Table 1 workloads);
//! * the **changing distribution** (near-vertical ellipse followed by a
//!   containing near-horizontal ellipse — Table 1, part 4);
//! * **evenly spaced circle points** (the `Ω(D/r²)` lower bound of
//!   Theorem 5.5);
//! * Gaussian clouds, annuli, segments and outward spirals (adversarial for
//!   incremental hulls: every point is a new hull vertex);
//! * **interleaved multi-tenant traffic** ([`TenantTraffic`]): `(stream,
//!   point)` pairs over many streams with hot/cold skew, the workload for
//!   the governed tenant engine.
//!
//! All generators are deterministic given a seed, implement
//! [`Iterator<Item = Point2>`], and can be composed with the adapters in
//! [`transform`] — or corrupted deterministically with the chaos adapters
//! in [`fault`] to exercise the ingestion layer's sanitize-and-recover
//! paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod shapes;
pub mod tenant;
pub mod transform;

use geom::Point2;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use fault::{CoordinateGlitch, NonFiniteBursts};
pub use shapes::{
    Annulus, Changing, CirclePoints, Disk, Drift, Ellipse, Gaussian, SegmentCloud, Spiral, Square,
};
pub use tenant::TenantTraffic;
pub use transform::{Chunks, Rotate, Scale, Timestamped, Translate};

/// A finite, seeded stream of points. Blanket-implemented for every
/// `Iterator<Item = Point2>`; exists so generic harness code can name the
/// bound tersely.
pub trait PointStream: Iterator<Item = Point2> {}
impl<T: Iterator<Item = Point2>> PointStream for T {}

/// Creates the deterministic RNG used by all generators for a given seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Collects a stream into a vector (convenience for tests and experiments).
pub fn collect<S: PointStream>(stream: S) -> Vec<Point2> {
    stream.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_calls() {
        let a: Vec<Point2> = Disk::new(7, 100, 1.0).collect();
        let b: Vec<Point2> = Disk::new(7, 100, 1.0).collect();
        assert_eq!(a, b);
        let c: Vec<Point2> = Disk::new(8, 100, 1.0).collect();
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn lengths_are_exact() {
        assert_eq!(Disk::new(1, 123, 2.0).count(), 123);
        assert_eq!(Square::new(1, 45, 1.0).count(), 45);
        assert_eq!(Ellipse::new(1, 10, 16.0, 0.0).count(), 10);
        assert_eq!(CirclePoints::new(32, 1.0).count(), 32);
    }
}
