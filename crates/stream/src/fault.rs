//! Fault-injecting stream adapters: deterministic corruption for chaos
//! testing the ingestion paths. These model *dirty inputs* (a sensor
//! emitting NaNs, a flaky serialiser mangling coordinates) as opposed to
//! the engine-side faults a
//! `FaultPlan` scripts (worker crashes, stalls, corrupt checkpoints) —
//! compose them with [`PointStream`](crate::PointStream)s to drive the
//! supervisor's sanitize-and-continue path end to end.
//!
//! Everything here is a pure function of `(seed, stream index)`: the same
//! construction corrupts the same positions every run, so chaos tests
//! replay exactly.

use geom::Point2;

/// SplitMix64 — the same seed mixer the generators use, applied per
/// stream index so corruption positions are independent of iteration
/// order elsewhere.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Splices bursts of non-finite points into the inner stream: before the
/// inner point at each scripted index, `burst_len` NaN points are
/// emitted. The inner stream's points all pass through unchanged, so a
/// consumer that drops non-finite input must recover exactly the clean
/// stream — which is precisely what the sanitize tests assert.
#[derive(Debug)]
pub struct NonFiniteBursts<S> {
    inner: S,
    /// Scripted injection points (inner-stream indices), sorted ascending.
    at: Vec<usize>,
    burst_len: usize,
    next_inner: usize,
    remaining_burst: usize,
    cursor: usize,
}

impl<S> NonFiniteBursts<S> {
    /// Bursts of `burst_len` NaN points immediately before the inner
    /// points at `positions` (indices into the *clean* stream; out-of-range
    /// positions never fire).
    pub fn at(inner: S, mut positions: Vec<usize>, burst_len: usize) -> Self {
        assert!(burst_len >= 1, "a burst holds at least one point");
        positions.sort_unstable();
        positions.dedup();
        NonFiniteBursts {
            inner,
            at: positions,
            burst_len,
            next_inner: 0,
            remaining_burst: 0,
            cursor: 0,
        }
    }

    /// Seeded variant: roughly one burst per `period` points, at
    /// positions derived purely from `(seed, index)` over the first `n`
    /// points. Same arguments → same bursts, every run.
    pub fn seeded(inner: S, seed: u64, n: usize, period: usize, burst_len: usize) -> Self {
        assert!(period >= 1, "period must be at least 1");
        let positions = (0..n)
            .filter(|&i| splitmix64(seed ^ i as u64).is_multiple_of(period as u64))
            .collect();
        NonFiniteBursts::at(inner, positions, burst_len)
    }
}

impl<S: Iterator<Item = Point2>> Iterator for NonFiniteBursts<S> {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.remaining_burst > 0 {
            self.remaining_burst -= 1;
            return Some(Point2::new(f64::NAN, f64::NAN));
        }
        if self
            .at
            .get(self.cursor)
            .is_some_and(|&pos| pos == self.next_inner)
        {
            self.cursor += 1;
            self.remaining_burst = self.burst_len - 1;
            return Some(Point2::new(f64::NAN, f64::NAN));
        }
        let p = self.inner.next()?;
        self.next_inner += 1;
        Some(p)
    }
}

/// Seeded per-point corruption: roughly one in `period` points has a
/// coordinate replaced by a non-finite value (NaN, +∞, or −∞, chosen by
/// the same hash). Unlike [`NonFiniteBursts`] this *destroys* the
/// affected points — the clean stream is not recoverable — modelling a
/// flaky serialiser rather than a chatty-but-separable sensor.
#[derive(Debug)]
pub struct CoordinateGlitch<S> {
    inner: S,
    seed: u64,
    period: u64,
    i: u64,
}

impl<S> CoordinateGlitch<S> {
    /// Corrupts roughly one in `period` points, deterministically in
    /// `(seed, index)`.
    pub fn new(inner: S, seed: u64, period: usize) -> Self {
        assert!(period >= 1, "period must be at least 1");
        CoordinateGlitch {
            inner,
            seed,
            period: period as u64,
            i: 0,
        }
    }
}

impl<S: Iterator<Item = Point2>> Iterator for CoordinateGlitch<S> {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        let p = self.inner.next()?;
        let h = splitmix64(self.seed ^ self.i);
        self.i += 1;
        if !h.is_multiple_of(self.period) {
            return Some(p);
        }
        let bad = match (h >> 32) % 3 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        Some(if (h >> 34).is_multiple_of(2) {
            Point2::new(bad, p.y)
        } else {
            Point2::new(p.x, bad)
        })
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::CirclePoints;

    #[test]
    fn bursts_fire_at_scripted_positions_and_preserve_clean_points() {
        let dirty: Vec<Point2> =
            NonFiniteBursts::at(CirclePoints::new(10, 1.0), vec![0, 3, 99], 2).collect();
        // 10 clean + 2 bursts of 2 (position 99 is out of range).
        assert_eq!(dirty.len(), 14);
        assert!(dirty[0].x.is_nan() && dirty[1].x.is_nan());
        assert!(dirty[2].is_finite());
        // Burst before clean index 3: dirty positions 2,3,4 carry clean
        // 0,1,2, then the burst.
        assert!(dirty[5].x.is_nan() && dirty[6].x.is_nan());
        let cleaned: Vec<Point2> = dirty.into_iter().filter(|p| p.is_finite()).collect();
        let clean: Vec<Point2> = CirclePoints::new(10, 1.0).collect();
        assert_eq!(cleaned, clean, "filtering recovers the clean stream");
    }

    #[test]
    fn seeded_bursts_replay_exactly() {
        let a: Vec<Point2> =
            NonFiniteBursts::seeded(CirclePoints::new(500, 1.0), 9, 500, 50, 3).collect();
        let b: Vec<Point2> =
            NonFiniteBursts::seeded(CirclePoints::new(500, 1.0), 9, 500, 50, 3).collect();
        assert_eq!(a.len(), b.len());
        assert!(a.len() > 500, "some bursts fired");
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| (x.is_finite() && x == y) || (!x.is_finite() && !y.is_finite())));
    }

    #[test]
    fn glitch_is_deterministic_and_sparse() {
        let a: Vec<Point2> = CoordinateGlitch::new(CirclePoints::new(1000, 1.0), 3, 100).collect();
        let b: Vec<Point2> = CoordinateGlitch::new(CirclePoints::new(1000, 1.0), 3, 100).collect();
        assert_eq!(a.len(), 1000, "glitching never changes the length");
        let bad_a: Vec<usize> = (0..a.len()).filter(|&i| !a[i].is_finite()).collect();
        let bad_b: Vec<usize> = (0..b.len()).filter(|&i| !b[i].is_finite()).collect();
        assert_eq!(bad_a, bad_b, "same seed corrupts the same positions");
        assert!(!bad_a.is_empty() && bad_a.len() < 50, "sparse corruption");
        // Unaffected points pass through untouched.
        let clean: Vec<Point2> = CirclePoints::new(1000, 1.0).collect();
        for i in (0..1000).filter(|i| !bad_a.contains(i)) {
            assert_eq!(a[i], clean[i]);
        }
    }
}
