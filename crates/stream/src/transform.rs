//! Stream adapters: rotate, scale, translate, interleave, chunk, and
//! clamp arbitrary point streams. These compose with any
//! [`PointStream`](crate::PointStream).

use geom::{Point2, Vec2};

/// Gathers the inner stream into `Vec<Point2>` chunks of a fixed size
/// (the final chunk may be shorter) — the feeding adapter for batched and
/// sharded ingestion: chunks go straight into
/// `HullSummary::insert_batch` or a `ShardedIngest` dispatcher without
/// materialising the whole stream.
#[derive(Debug)]
pub struct Chunks<S> {
    inner: S,
    size: usize,
}

impl<S> Chunks<S> {
    /// Chunking with `size >= 1` points per chunk.
    pub fn new(inner: S, size: usize) -> Self {
        assert!(size >= 1, "chunk size must be at least 1");
        Chunks { inner, size }
    }
}

impl<S: Iterator<Item = Point2>> Iterator for Chunks<S> {
    type Item = Vec<Point2>;
    fn next(&mut self) -> Option<Vec<Point2>> {
        let mut chunk = Vec::with_capacity(self.size);
        for p in self.inner.by_ref() {
            chunk.push(p);
            if chunk.len() == self.size {
                break;
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.size_hint();
        (lo.div_ceil(self.size), hi.map(|h| h.div_ceil(self.size)))
    }
}

/// Rotates every point of the inner stream about the origin.
#[derive(Debug)]
pub struct Rotate<S> {
    inner: S,
    cos: f64,
    sin: f64,
}

impl<S> Rotate<S> {
    /// Rotation by `theta` radians counterclockwise.
    pub fn new(inner: S, theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Rotate { inner, cos, sin }
    }
}

impl<S: Iterator<Item = Point2>> Iterator for Rotate<S> {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        let p = self.inner.next()?;
        Some(Point2::new(
            p.x * self.cos - p.y * self.sin,
            p.x * self.sin + p.y * self.cos,
        ))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Scales every point of the inner stream (anisotropic allowed).
#[derive(Debug)]
pub struct Scale<S> {
    inner: S,
    sx: f64,
    sy: f64,
}

impl<S> Scale<S> {
    /// Independent x/y scaling.
    pub fn new(inner: S, sx: f64, sy: f64) -> Self {
        Scale { inner, sx, sy }
    }

    /// Uniform scaling.
    pub fn uniform(inner: S, s: f64) -> Self {
        Scale {
            inner,
            sx: s,
            sy: s,
        }
    }
}

impl<S: Iterator<Item = Point2>> Iterator for Scale<S> {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        let p = self.inner.next()?;
        Some(Point2::new(p.x * self.sx, p.y * self.sy))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Translates every point of the inner stream.
#[derive(Debug)]
pub struct Translate<S> {
    inner: S,
    offset: Vec2,
}

impl<S> Translate<S> {
    /// Translation by `offset`.
    pub fn new(inner: S, offset: Vec2) -> Self {
        Translate { inner, offset }
    }
}

impl<S: Iterator<Item = Point2>> Iterator for Translate<S> {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        Some(self.inner.next()? + self.offset)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Attaches timestamps to a point stream, turning `Point2` items into
/// `(Point2, f64)` pairs for the windowed ingestion paths
/// (`WindowedSummary::insert_at` / `ShardedIngest::run_stream_windowed_at`).
///
/// Two arrival patterns:
///
/// * [`uniform`](Timestamped::uniform) — one point every `dt` (a steady
///   sensor);
/// * [`bursty`](Timestamped::bursty) — points arrive in flushes of
///   `burst_len` spaced `dt_within` apart, with `gap` between flushes (a
///   sensor that buffers and reports in bursts). Bursty clocks stress
///   time-based windows: a whole flush expires at once, so bucket expiry
///   happens in slabs rather than a steady trickle.
#[derive(Debug)]
pub struct Timestamped<S> {
    inner: S,
    t0: f64,
    dt_within: f64,
    burst_len: usize,
    gap: f64,
    i: usize,
}

impl<S> Timestamped<S> {
    /// One point every `dt` time units starting at `t0` (`dt >= 0`).
    pub fn uniform(inner: S, t0: f64, dt: f64) -> Self {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be finite and >= 0");
        Timestamped {
            inner,
            t0,
            dt_within: dt,
            burst_len: 1,
            gap: dt,
            i: 0,
        }
    }

    /// Bursts of `burst_len` points spaced `dt_within` apart, with `gap`
    /// between a burst's last point and the next burst's first point.
    pub fn bursty(inner: S, t0: f64, burst_len: usize, dt_within: f64, gap: f64) -> Self {
        assert!(burst_len >= 1, "a burst holds at least one point");
        assert!(
            dt_within >= 0.0 && gap >= 0.0 && dt_within.is_finite() && gap.is_finite(),
            "spacings must be finite and >= 0"
        );
        Timestamped {
            inner,
            t0,
            dt_within,
            burst_len,
            gap,
            i: 0,
        }
    }

    /// The timestamp of point `i` under this arrival pattern.
    fn time_of(&self, i: usize) -> f64 {
        let burst = (i / self.burst_len) as f64;
        let within = (i % self.burst_len) as f64;
        self.t0
            + burst * ((self.burst_len - 1) as f64 * self.dt_within + self.gap)
            + within * self.dt_within
    }
}

impl<S: Iterator<Item = Point2>> Iterator for Timestamped<S> {
    type Item = (Point2, f64);
    fn next(&mut self) -> Option<(Point2, f64)> {
        let p = self.inner.next()?;
        let t = self.time_of(self.i);
        self.i += 1;
        Some((p, t))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Interleaves two streams round-robin (models two sensors reporting into
/// one channel); ends when both are exhausted.
#[derive(Debug)]
pub struct Interleave<A, B> {
    a: A,
    b: B,
    turn_a: bool,
}

impl<A, B> Interleave<A, B> {
    /// Round-robin interleaving starting with `a`.
    pub fn new(a: A, b: B) -> Self {
        Interleave { a, b, turn_a: true }
    }
}

impl<A, B> Iterator for Interleave<A, B>
where
    A: Iterator<Item = Point2>,
    B: Iterator<Item = Point2>,
{
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.turn_a {
            self.turn_a = false;
            self.a.next().or_else(|| self.b.next())
        } else {
            self.turn_a = true;
            self.b.next().or_else(|| self.a.next())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{CirclePoints, Square};
    use core::f64::consts::FRAC_PI_2;

    #[test]
    fn rotate_quarter_turn() {
        let pts: Vec<Point2> = Rotate::new(CirclePoints::new(4, 1.0), FRAC_PI_2).collect();
        // First circle point (1,0) becomes (0,1).
        assert!(pts[0].distance(Point2::new(0.0, 1.0)) < 1e-12);
    }

    #[test]
    fn rotation_preserves_norms() {
        let orig: Vec<Point2> = Square::new(1, 200, 1.0).collect();
        let rot: Vec<Point2> = Rotate::new(Square::new(1, 200, 1.0), 0.7).collect();
        for (a, b) in orig.iter().zip(&rot) {
            assert!((a.distance(Point2::ORIGIN) - b.distance(Point2::ORIGIN)).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_and_translate() {
        let pts: Vec<Point2> = Translate::new(
            Scale::new(CirclePoints::new(1, 1.0), 2.0, 3.0),
            Vec2::new(10.0, 20.0),
        )
        .collect();
        assert!(pts[0].distance(Point2::new(12.0, 20.0)) < 1e-12);
    }

    #[test]
    fn chunks_exact_and_ragged() {
        let chunks: Vec<Vec<Point2>> = Chunks::new(CirclePoints::new(10, 1.0), 4).collect();
        assert_eq!(chunks.iter().map(Vec::len).collect::<Vec<_>>(), [4, 4, 2]);
        let rejoined: Vec<Point2> = chunks.concat();
        let direct: Vec<Point2> = CirclePoints::new(10, 1.0).collect();
        assert_eq!(rejoined, direct, "chunking must preserve order and content");
        // Exact multiple: no trailing empty chunk.
        let even: Vec<Vec<Point2>> = Chunks::new(CirclePoints::new(8, 1.0), 4).collect();
        assert_eq!(even.len(), 2);
        // Empty stream yields no chunks.
        assert_eq!(Chunks::new(CirclePoints::new(0, 1.0), 4).count(), 0);
        // Size hint is consistent.
        assert_eq!(
            Chunks::new(CirclePoints::new(10, 1.0), 4).size_hint(),
            (3, Some(3))
        );
    }

    #[test]
    fn timestamped_uniform_and_bursty_clocks() {
        let uni: Vec<(Point2, f64)> =
            Timestamped::uniform(CirclePoints::new(4, 1.0), 10.0, 0.5).collect();
        assert_eq!(uni.len(), 4);
        let ts: Vec<f64> = uni.iter().map(|&(_, t)| t).collect();
        assert_eq!(ts, [10.0, 10.5, 11.0, 11.5]);

        // Bursts of 3 points 0.1 apart, 5.0 between bursts.
        let bursty: Vec<f64> = Timestamped::bursty(CirclePoints::new(7, 1.0), 0.0, 3, 0.1, 5.0)
            .map(|(_, t)| t)
            .collect();
        let want = [0.0, 0.1, 0.2, 5.2, 5.3, 5.4, 10.4];
        assert_eq!(bursty.len(), want.len());
        for (got, want) in bursty.iter().zip(want) {
            assert!((got - want).abs() < 1e-12, "{got} != {want}");
        }
        // Timestamps are always non-decreasing (the windowed-ingestion
        // requirement).
        assert!(bursty.windows(2).all(|w| w[0] <= w[1]));
        // The points themselves pass through untouched.
        let direct: Vec<Point2> = CirclePoints::new(4, 1.0).collect();
        let tagged: Vec<Point2> = uni.iter().map(|&(p, _)| p).collect();
        assert_eq!(tagged, direct);
    }

    #[test]
    fn interleave_alternates_and_drains() {
        let a = CirclePoints::new(3, 1.0);
        let b = CirclePoints::new(1, 2.0);
        let pts: Vec<Point2> = Interleave::new(a, b).collect();
        assert_eq!(pts.len(), 4);
        // Second element comes from b (radius 2).
        assert!((pts[1].distance(Point2::ORIGIN) - 2.0).abs() < 1e-12);
        // Remaining a-points drain after b is exhausted.
        assert!((pts[3].distance(Point2::ORIGIN) - 1.0).abs() < 1e-12);
    }
}
