//! The stream distributions themselves.
//!
//! Each generator yields exactly `n` points, deterministically for a given
//! seed. Sampling inside shapes uses rejection (disk) or direct transforms
//! (ellipse via scaled disk), so points are uniform by area.

use geom::{Point2, Vec2};
use rand::rngs::StdRng;
use rand::Rng;

use crate::rng;

macro_rules! finite_iter {
    ($name:ident) => {
        impl ExactSizeIterator for $name {}
    };
}

/// Uniform points in a disk of given radius centred at the origin.
#[derive(Debug)]
pub struct Disk {
    rng: StdRng,
    remaining: usize,
    radius: f64,
}

impl Disk {
    /// `n` uniform points in the disk of radius `radius`.
    pub fn new(seed: u64, n: usize, radius: f64) -> Self {
        Disk {
            rng: rng(seed),
            remaining: n,
            radius,
        }
    }
}

impl Iterator for Disk {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Rejection sampling: uniform by area, no sqrt bias.
        loop {
            let x: f64 = self.rng.gen_range(-1.0..=1.0);
            let y: f64 = self.rng.gen_range(-1.0..=1.0);
            if x * x + y * y <= 1.0 {
                return Some(Point2::new(x * self.radius, y * self.radius));
            }
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}
finite_iter!(Disk);

/// Uniform points in an axis-aligned square `[-half, half]²`.
#[derive(Debug)]
pub struct Square {
    rng: StdRng,
    remaining: usize,
    half: f64,
}

impl Square {
    /// `n` uniform points in the square of half-side `half`.
    pub fn new(seed: u64, n: usize, half: f64) -> Self {
        Square {
            rng: rng(seed),
            remaining: n,
            half,
        }
    }
}

impl Iterator for Square {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let x: f64 = self.rng.gen_range(-self.half..=self.half);
        let y: f64 = self.rng.gen_range(-self.half..=self.half);
        Some(Point2::new(x, y))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}
finite_iter!(Square);

/// Uniform points in an ellipse with semi-major axis `aspect` and semi-minor
/// axis 1, rotated by `rotation` radians (Table 1 uses aspect ratio 16 and
/// rotations that are fractions of `θ0`).
#[derive(Debug)]
pub struct Ellipse {
    inner: Disk,
    aspect: f64,
    rotation: f64,
}

impl Ellipse {
    /// `n` uniform points in the rotated ellipse.
    pub fn new(seed: u64, n: usize, aspect: f64, rotation: f64) -> Self {
        Ellipse {
            inner: Disk::new(seed, n, 1.0),
            aspect,
            rotation,
        }
    }
}

impl Iterator for Ellipse {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        let p = self.inner.next()?;
        // Scale the unit disk along x, then rotate: uniform by area.
        let v = Vec2::new(p.x * self.aspect, p.y).rotate(self.rotation);
        Some(Point2::ORIGIN + v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}
finite_iter!(Ellipse);

/// The paper's changing distribution (Table 1, part 4): `n/2` points from a
/// near-vertical ellipse, then `n/2` points from a near-horizontal ellipse
/// that completely contains the first.
#[derive(Debug)]
pub struct Changing {
    first: Ellipse,
    second: Ellipse,
}

impl Changing {
    /// Builds the two-phase stream. `rotation` perturbs both ellipse
    /// orientations (as in the table's `θ0/4` etc. rows); `aspect` is the
    /// ellipse aspect ratio (the paper uses 16).
    pub fn new(seed: u64, n: usize, aspect: f64, rotation: f64) -> Self {
        use core::f64::consts::FRAC_PI_2;
        let half = n / 2;
        // First: near-vertical, semi-major `aspect/4` so the later
        // horizontal ellipse (semi-minor `aspect/3` > `aspect/4`) contains it.
        let first = Ellipse {
            inner: Disk::new(seed, half, 1.0),
            aspect: aspect / 4.0,
            rotation: FRAC_PI_2 + rotation,
        };
        // Second: near-horizontal, fattened so it contains the first:
        // x-semi-axis `aspect`, y-semi-axis `aspect/3`.
        let second = Scale2 {
            inner: Disk::new(seed ^ 0x5eed, n - half, 1.0),
            sx: aspect,
            sy: aspect / 3.0,
            rotation,
        };
        // Flatten Scale2 into an Ellipse-shaped struct by reusing fields:
        // keep as dedicated iterator below instead.
        Changing {
            first,
            second: second.into_ellipse(),
        }
    }
}

/// Helper: an anisotropically scaled disk (both axes free), used by
/// [`Changing`] for its containing second phase.
#[derive(Debug)]
struct Scale2 {
    inner: Disk,
    sx: f64,
    sy: f64,
    rotation: f64,
}

impl Scale2 {
    /// Represent as an `Ellipse` whose unit disk is pre-scaled on y by
    /// embedding the y scale into the disk radius: not possible exactly, so
    /// `Changing` stores a Scale2 disguised via this conversion that keeps
    /// both scales. (Implementation detail: we simply reuse `Ellipse` with
    /// aspect = sx/sy and an outer uniform scale of sy.)
    fn into_ellipse(self) -> Ellipse {
        let sy = self.sy;
        Ellipse {
            inner: Disk {
                rng: self.inner.rng,
                remaining: self.inner.remaining,
                radius: sy,
            },
            aspect: self.sx / self.sy,
            rotation: self.rotation,
        }
    }
}

impl Iterator for Changing {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        self.first.next().or_else(|| self.second.next())
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.first.len() + self.second.len();
        (n, Some(n))
    }
}
finite_iter!(Changing);

/// `n` points evenly spaced on a circle — the lower-bound instance of
/// Theorem 5.5: any `r`-point sample of `2r` such points has Hausdorff
/// error `Ω(D/r²)`.
#[derive(Debug)]
pub struct CirclePoints {
    i: usize,
    n: usize,
    radius: f64,
}

impl CirclePoints {
    /// `n` evenly spaced points on the circle of radius `radius`.
    pub fn new(n: usize, radius: f64) -> Self {
        CirclePoints { i: 0, n, radius }
    }
}

impl Iterator for CirclePoints {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.i >= self.n {
            return None;
        }
        let t = core::f64::consts::TAU * self.i as f64 / self.n as f64;
        self.i += 1;
        Some(Point2::new(self.radius * t.cos(), self.radius * t.sin()))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.i;
        (left, Some(left))
    }
}
finite_iter!(CirclePoints);

/// Isotropic Gaussian cloud (standard deviation `sigma`), via Box–Muller.
#[derive(Debug)]
pub struct Gaussian {
    rng: StdRng,
    remaining: usize,
    sigma: f64,
}

impl Gaussian {
    /// `n` Gaussian points with standard deviation `sigma` per axis.
    pub fn new(seed: u64, n: usize, sigma: f64) -> Self {
        Gaussian {
            rng: rng(seed),
            remaining: n,
            sigma,
        }
    }
}

impl Iterator for Gaussian {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt() * self.sigma;
        let t = core::f64::consts::TAU * u2;
        Some(Point2::new(r * t.cos(), r * t.sin()))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}
finite_iter!(Gaussian);

/// Uniform points in an annulus (ring) between two radii — stresses the
/// summaries with a hull whose vertices keep being displaced outward.
#[derive(Debug)]
pub struct Annulus {
    rng: StdRng,
    remaining: usize,
    r_inner: f64,
    r_outer: f64,
}

impl Annulus {
    /// `n` uniform points with `r_inner <= |p| <= r_outer`.
    pub fn new(seed: u64, n: usize, r_inner: f64, r_outer: f64) -> Self {
        assert!(0.0 <= r_inner && r_inner < r_outer);
        Annulus {
            rng: rng(seed),
            remaining: n,
            r_inner,
            r_outer,
        }
    }
}

impl Iterator for Annulus {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        loop {
            let x: f64 = self.rng.gen_range(-self.r_outer..=self.r_outer);
            let y: f64 = self.rng.gen_range(-self.r_outer..=self.r_outer);
            let d2 = x * x + y * y;
            if d2 <= self.r_outer * self.r_outer && d2 >= self.r_inner * self.r_inner {
                return Some(Point2::new(x, y));
            }
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}
finite_iter!(Annulus);

/// Points scattered near a line segment (a "long skinny" stream whose width
/// is far below its diameter — the case §3.2 warns about for uniform
/// sampling).
#[derive(Debug)]
pub struct SegmentCloud {
    rng: StdRng,
    remaining: usize,
    a: Point2,
    b: Point2,
    jitter: f64,
}

impl SegmentCloud {
    /// `n` points uniform along `a..b` with perpendicular jitter up to
    /// `jitter`.
    pub fn new(seed: u64, n: usize, a: Point2, b: Point2, jitter: f64) -> Self {
        SegmentCloud {
            rng: rng(seed),
            remaining: n,
            a,
            b,
            jitter,
        }
    }
}

impl Iterator for SegmentCloud {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let t: f64 = self.rng.gen_range(0.0..=1.0);
        let j: f64 = self.rng.gen_range(-self.jitter..=self.jitter);
        let along = self.a.lerp(self.b, t);
        let perp = (self.b - self.a)
            .perp()
            .normalized()
            .unwrap_or(Vec2::new(0.0, 1.0));
        Some(along + perp * j)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}
finite_iter!(SegmentCloud);

/// A Gaussian cloud whose centre **drifts** along a segment over the
/// stream: point `i` is jittered around `from.lerp(to, i/(n-1))`. The
/// focused workload for sliding windows — the recent window hull is a
/// tight blob around the current centre while the whole-stream hull
/// covers the entire track, so windowed and global answers diverge by
/// construction. Pair with [`Timestamped::bursty`](crate::Timestamped)
/// for the drift-plus-burst arrival pattern.
#[derive(Debug)]
pub struct Drift {
    inner: Gaussian,
    i: usize,
    n: usize,
    from: Point2,
    to: Point2,
}

impl Drift {
    /// `n` points drifting from `from` to `to` with Gaussian jitter of
    /// standard deviation `sigma` around the moving centre.
    pub fn new(seed: u64, n: usize, from: Point2, to: Point2, sigma: f64) -> Self {
        Drift {
            inner: Gaussian::new(seed, n, sigma),
            i: 0,
            n,
            from,
            to,
        }
    }
}

impl Iterator for Drift {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        let jitter = self.inner.next()?;
        let frac = if self.n <= 1 {
            0.0
        } else {
            self.i as f64 / (self.n - 1) as f64
        };
        self.i += 1;
        let centre = self.from.lerp(self.to, frac);
        Some(centre + (jitter - Point2::ORIGIN))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}
finite_iter!(Drift);

/// Outward Archimedean spiral: point `i` at radius `r0 + i·dr`, angle
/// `i·dθ` with `dθ` an irrational fraction of the circle. Adversarial for
/// incremental hulls — *every* point is outside the previous hull.
#[derive(Debug)]
pub struct Spiral {
    i: usize,
    n: usize,
    r0: f64,
    dr: f64,
}

impl Spiral {
    /// `n` spiral points starting at radius `r0` growing by `dr` per point.
    pub fn new(n: usize, r0: f64, dr: f64) -> Self {
        Spiral { i: 0, n, r0, dr }
    }
}

impl Iterator for Spiral {
    type Item = Point2;
    fn next(&mut self) -> Option<Point2> {
        if self.i >= self.n {
            return None;
        }
        let golden = 2.399963229728653; // 2π / φ², the sunflower angle
        let r = self.r0 + self.dr * self.i as f64;
        let t = golden * self.i as f64;
        self.i += 1;
        Some(Point2::new(r * t.cos(), r * t.sin()))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.i;
        (left, Some(left))
    }
}
finite_iter!(Spiral);

#[cfg(test)]
mod tests {
    use super::*;
    use geom::ConvexPolygon;

    #[test]
    fn disk_points_are_in_disk() {
        for p in Disk::new(3, 1000, 2.5) {
            assert!(p.distance(Point2::ORIGIN) <= 2.5 + 1e-12);
        }
    }

    #[test]
    fn square_points_are_in_square() {
        for p in Square::new(3, 1000, 1.5) {
            assert!(p.x.abs() <= 1.5 && p.y.abs() <= 1.5);
        }
    }

    #[test]
    fn ellipse_respects_aspect_and_rotation() {
        // Unrotated: |x| <= 16, |y| <= 1.
        for p in Ellipse::new(3, 1000, 16.0, 0.0) {
            assert!(p.x.abs() <= 16.0 + 1e-9);
            assert!(p.y.abs() <= 1.0 + 1e-9);
            assert!((p.x / 16.0).powi(2) + p.y.powi(2) <= 1.0 + 1e-9);
        }
        // Rotated by 90°: axes swap.
        let pts: Vec<Point2> = Ellipse::new(3, 1000, 16.0, core::f64::consts::FRAC_PI_2).collect();
        let max_x = pts.iter().map(|p| p.x.abs()).fold(0.0, f64::max);
        let max_y = pts.iter().map(|p| p.y.abs()).fold(0.0, f64::max);
        assert!(max_x <= 1.0 + 1e-9);
        assert!(max_y > 8.0, "major axis should be vertical now");
    }

    #[test]
    fn changing_second_phase_contains_first() {
        let n = 4000;
        let pts: Vec<Point2> = Changing::new(11, n, 16.0, 0.05).collect();
        assert_eq!(pts.len(), n);
        let first = &pts[..n / 2];
        let second = &pts[n / 2..];
        // The hull of the second phase must contain every first-phase point
        // (the paper's construction: the horizontal ellipse completely
        // contains the vertical one). Check via the ideal ellipse equation
        // instead of sampled hulls to avoid flakiness.
        let rot = -0.05f64;
        for p in first.iter().chain(second.iter()) {
            let v = geom::Vec2::new(p.x, p.y).rotate(rot);
            let inside = (v.x / 16.0).powi(2) + (v.y / (16.0 / 3.0)).powi(2);
            assert!(
                inside <= 1.0 + 1e-9,
                "point {p:?} escapes the second ellipse"
            );
        }
        // And the first phase really is the smaller vertical ellipse.
        let max_first_y = first.iter().map(|p| p.y.abs()).fold(0.0, f64::max);
        let max_second_x = second.iter().map(|p| p.x.abs()).fold(0.0, f64::max);
        assert!(max_first_y <= 16.0 / 4.0 + 1.0);
        assert!(max_second_x > 10.0);
    }

    #[test]
    fn circle_points_all_on_hull() {
        let pts: Vec<Point2> = CirclePoints::new(64, 3.0).collect();
        let hull = ConvexPolygon::hull_of(&pts);
        assert_eq!(hull.len(), 64, "every circle point is a hull vertex");
        for p in &pts {
            assert!((p.distance(Point2::ORIGIN) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn annulus_bounds() {
        for p in Annulus::new(9, 500, 1.0, 2.0) {
            let d = p.distance(Point2::ORIGIN);
            assert!((1.0 - 1e-12..=2.0 + 1e-12).contains(&d));
        }
    }

    #[test]
    fn spiral_every_point_extends_hull() {
        // The adversarial property: every arriving point lies strictly
        // outside the hull of all previous points (radii strictly increase),
        // so an incremental hull must do work on every single insertion.
        let pts: Vec<Point2> = Spiral::new(120, 1.0, 0.05).collect();
        for i in 3..pts.len() {
            let hull = ConvexPolygon::hull_of(&pts[..i]);
            assert!(
                !hull.contains_linear(pts[i]),
                "point {i} should be outside the hull of its predecessors"
            );
        }
    }

    #[test]
    fn segment_cloud_is_skinny() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(100.0, 0.0);
        let pts: Vec<Point2> = SegmentCloud::new(2, 2000, a, b, 0.5).collect();
        let hull = ConvexPolygon::hull_of(&pts);
        let d = geom::calipers::diameter(&hull).unwrap().2;
        let w = geom::calipers::width(&hull);
        assert!(d > 90.0);
        assert!(w <= 1.0 + 1e-9);
    }

    #[test]
    fn drift_tracks_its_centre() {
        let from = Point2::new(0.0, 0.0);
        let to = Point2::new(100.0, 0.0);
        let pts: Vec<Point2> = Drift::new(13, 5000, from, to, 0.5).collect();
        assert_eq!(pts.len(), 5000);
        // Deterministic per seed.
        let again: Vec<Point2> = Drift::new(13, 5000, from, to, 0.5).collect();
        assert_eq!(pts, again);
        // Early points hug `from`, late points hug `to`: the windowed-hull
        // property this workload exists for.
        let head = &pts[..500];
        let tail = &pts[4500..];
        let mean_x = |s: &[Point2]| s.iter().map(|p| p.x).sum::<f64>() / s.len() as f64;
        assert!(mean_x(head) < 10.0, "head mean x = {}", mean_x(head));
        assert!(mean_x(tail) > 90.0, "tail mean x = {}", mean_x(tail));
        // Jitter stays tight around the moving centre.
        for (i, p) in pts.iter().enumerate() {
            let centre = from.lerp(to, i as f64 / 4999.0);
            assert!(p.distance(centre) < 5.0, "point {i} strayed: {p:?}");
        }
    }

    #[test]
    fn gaussian_is_centred() {
        let pts: Vec<Point2> = Gaussian::new(5, 20000, 1.0).collect();
        let mx = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        let my = pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64;
        assert!(mx.abs() < 0.05, "mean x = {mx}");
        assert!(my.abs() < 0.05, "mean y = {my}");
        let var = pts.iter().map(|p| p.x * p.x + p.y * p.y).sum::<f64>() / (2.0 * pts.len() as f64);
        assert!((var - 1.0).abs() < 0.1, "variance = {var}");
    }
}
