//! Interleaved multi-tenant traffic: `(stream id, point)` pairs with the
//! hot/cold skew real fleets show — a small fraction of streams carries
//! most of the traffic while the long tail goes idle between touches.
//! This is the workload a governed tenant engine is built for: the hot
//! set must stay resident, the tail must spill, and both arrive
//! interleaved on the same wire.

use geom::Point2;
use rand::rngs::StdRng;
use rand::Rng;

use crate::rng;

/// Deterministic interleaved multi-tenant traffic generator.
///
/// Yields exactly `n` `(stream, point)` pairs over `streams` stream ids
/// (`0..streams`). Each draw first picks hot vs cold by the configured
/// traffic share, then a stream uniformly within the class, then a point
/// from that stream's own distribution: a unit-radius ring-blob whose
/// centre is derived by hashing the stream id, so every stream has a
/// distinct, stationary geometry and a non-trivial hull.
#[derive(Debug)]
pub struct TenantTraffic {
    rng: StdRng,
    remaining: usize,
    streams: u64,
    hot_streams: u64,
    hot_share: f64,
    spread: f64,
}

impl TenantTraffic {
    /// `n` pairs over `streams` ids with the default 10% / 90% skew: the
    /// first 10% of ids (at least one) receive 90% of the traffic.
    pub fn new(seed: u64, streams: u64, n: usize) -> Self {
        TenantTraffic {
            rng: rng(seed),
            remaining: n,
            streams: streams.max(1),
            hot_streams: (streams / 10).max(1).min(streams.max(1)),
            hot_share: 0.9,
            spread: 100.0,
        }
    }

    /// Overrides the skew: `hot_fraction` of the ids (clamped to
    /// `[1/streams, 1]`) receive `hot_share` (clamped to `[0, 1]`) of the
    /// traffic. `with_skew(1.0, _)` or `with_skew(_, 0.0)`-style settings
    /// degenerate gracefully to uniform traffic.
    pub fn with_skew(mut self, hot_fraction: f64, hot_share: f64) -> Self {
        let frac = hot_fraction.clamp(0.0, 1.0);
        self.hot_streams = ((self.streams as f64 * frac) as u64)
            .max(1)
            .min(self.streams);
        self.hot_share = hot_share.clamp(0.0, 1.0);
        self
    }

    /// Overrides how far apart stream centres are scattered (default 100).
    pub fn with_spread(mut self, spread: f64) -> Self {
        self.spread = spread.abs();
        self
    }

    /// Total stream ids.
    pub fn streams(&self) -> u64 {
        self.streams
    }

    /// Ids in the hot class (`0..hot_streams`).
    pub fn hot_streams(&self) -> u64 {
        self.hot_streams
    }

    /// The deterministic centre of `stream`'s point cloud.
    pub fn center(&self, stream: u64) -> Point2 {
        let h = splitmix64(stream.wrapping_add(0x5EED));
        // Two independent uniform [0,1) lanes from one mix.
        let x = (h >> 11) as f64 / (1u64 << 53) as f64;
        let y = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
        Point2::new((x - 0.5) * 2.0 * self.spread, (y - 0.5) * 2.0 * self.spread)
    }
}

/// SplitMix64 — the workspace's standard deterministic mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Iterator for TenantTraffic {
    type Item = (u64, Point2);
    fn next(&mut self) -> Option<(u64, Point2)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let cold_streams = self.streams - self.hot_streams;
        let hot: f64 = self.rng.gen_range(0.0..1.0);
        let stream = if cold_streams == 0 || hot < self.hot_share {
            self.rng.gen_range(0..self.hot_streams)
        } else {
            self.hot_streams + self.rng.gen_range(0..cold_streams)
        };
        let c = self.center(stream);
        // A ring-blob: angle uniform, radius in [0.5, 1] — points spread
        // around the stream's own hull instead of collapsing to a dot.
        let ang: f64 = self.rng.gen_range(0.0..core::f64::consts::TAU);
        let rad: f64 = self.rng.gen_range(0.5..=1.0);
        let p = Point2::new(c.x + rad * ang.cos(), c.y + rad * ang.sin());
        Some((stream, p))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TenantTraffic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_exact_length() {
        let a: Vec<(u64, Point2)> = TenantTraffic::new(42, 100, 1000).collect();
        let b: Vec<(u64, Point2)> = TenantTraffic::new(42, 100, 1000).collect();
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c: Vec<(u64, Point2)> = TenantTraffic::new(43, 100, 1000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn skew_concentrates_traffic() {
        let traffic: Vec<(u64, Point2)> = TenantTraffic::new(7, 1000, 20_000).collect();
        let hot_streams = TenantTraffic::new(7, 1000, 0).hot_streams();
        let hot_points = traffic.iter().filter(|(s, _)| *s < hot_streams).count();
        let share = hot_points as f64 / traffic.len() as f64;
        assert!(
            (0.85..0.95).contains(&share),
            "hot share {share} should be near 0.9"
        );
        // Every id stays in range.
        assert!(traffic.iter().all(|(s, _)| *s < 1000));
    }

    #[test]
    fn uniform_when_skew_disabled() {
        let traffic: Vec<(u64, Point2)> = TenantTraffic::new(7, 50, 5000)
            .with_skew(1.0, 0.5)
            .collect();
        let mut counts = [0usize; 50];
        for (s, _) in &traffic {
            counts[*s as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 20), "roughly uniform coverage");
    }

    #[test]
    fn points_cluster_near_their_stream_center() {
        let gen = TenantTraffic::new(11, 20, 0);
        let traffic: Vec<(u64, Point2)> = TenantTraffic::new(11, 20, 2000).collect();
        for (s, p) in traffic {
            let c = gen.center(s);
            let d = ((p.x - c.x).powi(2) + (p.y - c.y).powi(2)).sqrt();
            assert!(d <= 1.0 + 1e-9, "stream {s}: point {d} from centre");
            assert!(d >= 0.5 - 1e-9);
        }
    }
}
