//! Per-point processing cost of every summary as a function of `r`
//! (paper §3.1 and §5.3: `O(r)` naive, `O(log r)` amortized for the
//! searchable uniform hull and the adaptive hull).
//!
//! Every summary is constructed through `SummaryBuilder` and driven as
//! `dyn HullSummary` — one generic loop over every backend instead of a
//! hand-rolled arm per concrete type.

use adaptive_hull::{HullSummary, SummaryBuilder, SummaryKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geom::Point2;
use streamgen::{Disk, Ellipse, Spiral};

fn workload(name: &str, n: usize) -> Vec<Point2> {
    match name {
        "disk" => Disk::new(11, n, 1.0).collect(),
        "ellipse" => Ellipse::new(12, n, 16.0, 0.1).collect(),
        "spiral" => Spiral::new(n, 1.0, 0.001).collect(),
        _ => unreachable!(),
    }
}

/// The `r` sweep per kind. The heavier structures (global rebalance,
/// cluster assignment) get a single representative point; `r` does not
/// affect the exact hull.
fn r_sweep(kind: SummaryKind) -> &'static [u32] {
    match kind {
        SummaryKind::AdaptiveFixedBudget | SummaryKind::Cluster => &[16],
        SummaryKind::Exact => &[16],
        _ => &[16, 64, 256],
    }
}

fn bench_summaries(c: &mut Criterion) {
    let n = 50_000;
    for wname in ["disk", "ellipse", "spiral"] {
        let pts = workload(wname, n);
        let mut group = c.benchmark_group(format!("per_point/{wname}"));
        group.throughput(Throughput::Elements(n as u64));

        for &kind in &SummaryKind::ALL {
            for &r in r_sweep(kind) {
                group.bench_with_input(BenchmarkId::new(kind.label(), r), &r, |b, &r| {
                    let builder = SummaryBuilder::new(kind).with_r(r);
                    b.iter(|| {
                        let mut h = builder.build();
                        h.insert_batch(&pts);
                        h.points_seen()
                    })
                });
            }
        }
        group.finish();
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_summaries
}
criterion_main!(benches);
