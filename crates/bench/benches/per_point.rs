//! Per-point processing cost of every summary as a function of `r`
//! (paper §3.1 and §5.3: `O(r)` naive, `O(log r)` amortized for the
//! searchable uniform hull and the adaptive hull).

use adaptive_hull::{
    AdaptiveHull, ExactHull, FixedBudgetAdaptiveHull, HullSummary, NaiveUniformHull, RadialHull,
    UniformHull,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geom::Point2;
use streamgen::{Disk, Ellipse, Spiral};

fn workload(name: &str, n: usize) -> Vec<Point2> {
    match name {
        "disk" => Disk::new(11, n, 1.0).collect(),
        "ellipse" => Ellipse::new(12, n, 16.0, 0.1).collect(),
        "spiral" => Spiral::new(n, 1.0, 0.001).collect(),
        _ => unreachable!(),
    }
}

fn bench_summaries(c: &mut Criterion) {
    let n = 50_000;
    for wname in ["disk", "ellipse", "spiral"] {
        let pts = workload(wname, n);
        let mut group = c.benchmark_group(format!("per_point/{wname}"));
        group.throughput(Throughput::Elements(n as u64));

        for r in [16u32, 64, 256] {
            group.bench_with_input(BenchmarkId::new("uniform_naive", r), &r, |b, &r| {
                b.iter(|| {
                    let mut h = NaiveUniformHull::new(r);
                    for &p in &pts {
                        h.insert(p);
                    }
                    h.points_seen()
                })
            });
            group.bench_with_input(BenchmarkId::new("uniform_searchable", r), &r, |b, &r| {
                b.iter(|| {
                    let mut h = UniformHull::new(r);
                    for &p in &pts {
                        h.insert(p);
                    }
                    h.points_seen()
                })
            });
            group.bench_with_input(BenchmarkId::new("adaptive", r), &r, |b, &r| {
                b.iter(|| {
                    let mut h = AdaptiveHull::with_r(r);
                    for &p in &pts {
                        h.insert(p);
                    }
                    h.points_seen()
                })
            });
            group.bench_with_input(BenchmarkId::new("radial", r), &r, |b, &r| {
                b.iter(|| {
                    let mut h = RadialHull::new(r);
                    for &p in &pts {
                        h.insert(p);
                    }
                    h.points_seen()
                })
            });
        }
        // Fixed-budget adaptive is heavier (global rebalance); bench at one r.
        group.sample_size(10);
        group.bench_function("adaptive_fixed_budget/16", |b| {
            b.iter(|| {
                let mut h = FixedBudgetAdaptiveHull::new(16);
                for &p in &pts {
                    h.insert(p);
                }
                h.points_seen()
            })
        });
        group.bench_function("exact", |b| {
            b.iter(|| {
                let mut h = ExactHull::new();
                for &p in &pts {
                    h.insert(p);
                }
                h.points_seen()
            })
        });
        group.finish();
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_summaries
}
criterion_main!(benches);
