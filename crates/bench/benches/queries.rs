//! Query costs on sampled hulls (paper §6: `O(r)` for diameter/width/
//! overlap, `O(log r)` for directional extent, membership, separation
//! probes).

use adaptive_hull::{queries, AdaptiveHull, HullSummary};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geom::{ConvexPolygon, Point2, Vec2};
use streamgen::{Ellipse, Translate};

fn build_hull(r: u32, seed: u64, dx: f64) -> ConvexPolygon {
    let mut h = AdaptiveHull::with_r(r);
    for p in Translate::new(Ellipse::new(seed, 20_000, 8.0, 0.3), Vec2::new(dx, 0.0)) {
        h.insert(p);
    }
    h.hull()
}

fn bench_queries(c: &mut Criterion) {
    for r in [16u32, 64, 256] {
        let a = build_hull(r, 21, 0.0);
        let b = build_hull(r, 22, 20.0);
        let mut group = c.benchmark_group("queries");

        group.bench_with_input(BenchmarkId::new("diameter", r), &a, |bch, a| {
            bch.iter(|| queries::diameter(a).map(|(_, _, d)| d))
        });
        group.bench_with_input(BenchmarkId::new("width", r), &a, |bch, a| {
            bch.iter(|| queries::width(a))
        });
        group.bench_with_input(BenchmarkId::new("directional_extent", r), &a, |bch, a| {
            let dir = Vec2::from_angle(0.7);
            bch.iter(|| queries::directional_extent(a, dir))
        });
        group.bench_with_input(BenchmarkId::new("contains_point", r), &a, |bch, a| {
            let q = Point2::new(0.1, 0.1);
            bch.iter(|| queries::contains_point(a, q))
        });
        group.bench_with_input(
            BenchmarkId::new("min_distance", r),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| queries::min_distance(a, b)),
        );
        group.bench_with_input(
            BenchmarkId::new("overlap_area", r),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| queries::overlap_area(a, b)),
        );
        group.finish();
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_queries
}
criterion_main!(benches);
