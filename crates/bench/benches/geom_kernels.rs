//! Microbenchmarks of the geometry substrate: the primitives on the
//! per-point hot path (orientation predicate, point location, tangents,
//! static hulls, calipers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geom::{calipers, hull, locate, predicates, tangent, ConvexPolygon, Point2, Vec2};

fn regular_ngon(n: usize, radius: f64) -> ConvexPolygon {
    let verts: Vec<Point2> = (0..n)
        .map(|i| {
            let t = core::f64::consts::TAU * i as f64 / n as f64;
            Point2::new(radius * t.cos(), radius * t.sin())
        })
        .collect();
    ConvexPolygon::from_ccw(verts).unwrap()
}

fn lcg_points(seed: u64, n: usize) -> Vec<Point2> {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point2::new(next() * 10.0 - 5.0, next() * 10.0 - 5.0))
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    // orient2d: generic (filter path) and degenerate (exact path).
    c.bench_function("orient2d/filter_path", |b| {
        let (p, q, r) = (
            Point2::new(0.1, 0.7),
            Point2::new(-3.0, 2.5),
            Point2::new(1.5, -0.25),
        );
        b.iter(|| predicates::orient2d_sign(p, q, r))
    });
    c.bench_function("orient2d/exact_path", |b| {
        let a = Point2::new(12.0, 12.0);
        let q = Point2::new(24.0, 24.0);
        let r = Point2::new(0.5, 0.5);
        b.iter(|| predicates::orient2d_sign(a, q, r))
    });

    for n in [16usize, 256, 4096] {
        let poly = regular_ngon(n, 2.0);
        c.bench_with_input(BenchmarkId::new("contains_log", n), &poly, |b, poly| {
            let q = Point2::new(0.3, 0.4);
            b.iter(|| locate::contains(poly, q))
        });
        c.bench_with_input(BenchmarkId::new("extreme_vertex", n), &poly, |b, poly| {
            let d = Vec2::from_angle(1.234);
            b.iter(|| locate::extreme_vertex(poly, d))
        });
        c.bench_with_input(BenchmarkId::new("visible_chain", n), &poly, |b, poly| {
            let q = Point2::new(5.0, 1.0);
            b.iter(|| tangent::visible_chain(poly, q))
        });
        c.bench_with_input(
            BenchmarkId::new("diameter_calipers", n),
            &poly,
            |b, poly| b.iter(|| calipers::diameter(poly)),
        );
        c.bench_with_input(BenchmarkId::new("width_calipers", n), &poly, |b, poly| {
            b.iter(|| calipers::width(poly))
        });
    }

    for n in [1_000usize, 100_000] {
        let pts = lcg_points(77, n);
        c.bench_with_input(BenchmarkId::new("monotone_chain", n), &pts, |b, pts| {
            b.iter(|| hull::monotone_chain(pts))
        });
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_kernels
}
criterion_main!(benches);
