//! Ablation (paper §5.3): exact binary-heap unrefinement queue vs the
//! Matias power-of-two bucket queue (`PriQ(r) = O(log r)` vs `O(1)`),
//! on a growing stream where the perimeter keeps increasing and
//! unrefinement actually fires (outward spiral).

use adaptive_hull::adaptive::{AdaptiveHullConfig, QueueKind};
use adaptive_hull::{AdaptiveHull, HullSummary};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geom::Point2;
use streamgen::{Ellipse, Spiral};

fn bench_queues(c: &mut Criterion) {
    let n = 50_000;
    let spiral: Vec<Point2> = Spiral::new(n, 1.0, 0.002).collect();
    let ellipse: Vec<Point2> = Ellipse::new(31, n, 16.0, 0.2).collect();

    for (wname, pts) in [("spiral", &spiral), ("ellipse", &ellipse)] {
        let mut group = c.benchmark_group(format!("queue_ablation/{wname}"));
        group.throughput(Throughput::Elements(n as u64));
        for r in [64u32, 256, 1024] {
            for (label, kind) in [("heap", QueueKind::Heap), ("bucket", QueueKind::Bucket)] {
                group.bench_with_input(BenchmarkId::new(label, r), &(r, kind), |b, &(r, kind)| {
                    b.iter(|| {
                        let mut h = AdaptiveHull::new(AdaptiveHullConfig::new(r).with_queue(kind));
                        for &p in pts {
                            h.insert(p);
                        }
                        h.adaptive_direction_count()
                    })
                });
            }
        }
        group.finish();
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_queues
}
criterion_main!(benches);
