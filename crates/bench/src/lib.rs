//! # sh-bench — the experiment harness
//!
//! Shared machinery for regenerating every table and figure of the paper:
//! workload construction (with the seeds recorded in `EXPERIMENTS.md`),
//! metric collection, and plain-text table/CSV formatting. The binaries
//! (`table1`, `lower_bound`, `error_scaling`, `figures`) are thin wrappers
//! over this module, and the Criterion benches reuse the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use adaptive_hull::metrics::{self, ProbeStats, TriangleStats};
use adaptive_hull::{
    ExactHull, FixedBudgetAdaptiveHull, FrozenHull, HullSummary, NaiveUniformHull, SummaryBuilder,
};
use geom::Point2;
use streamgen::{Changing, Disk, Ellipse, Square};

/// Default stream length: the paper uses 10⁵ points per experiment.
pub const TABLE1_N: usize = 100_000;

/// Default seed for every Table 1 workload (recorded in EXPERIMENTS.md).
pub const TABLE1_SEED: u64 = 20040614; // PODS 2004 publication date homage

/// The paper's `r` for the uniform hull in Table 1 (adaptive uses `r/2`).
pub const TABLE1_R: u32 = 32;

/// One row of a Table-1-style comparison.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Workload label (e.g. "square rotated by θ0/4").
    pub label: String,
    /// Left algorithm (uniform or partial) metrics.
    pub left: RowMetrics,
    /// Right algorithm (adaptive) metrics.
    pub right: RowMetrics,
}

/// Metrics for one algorithm on one workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowMetrics {
    /// Max uncertainty triangle height.
    pub max_height: f64,
    /// Mean uncertainty triangle height.
    pub avg_height: f64,
    /// Max distance of an arriving point from the current hull.
    pub max_outside: f64,
    /// Percent of points outside the current hull on arrival.
    pub pct_outside: f64,
    /// Final sample size.
    pub samples: usize,
}

impl RowMetrics {
    fn from_parts(tri: TriangleStats, probe: ProbeStats, samples: usize) -> Self {
        RowMetrics {
            max_height: tri.max_height,
            avg_height: tri.mean_height,
            max_outside: probe.max_distance,
            pct_outside: probe.percent_outside(),
            samples,
        }
    }
}

/// The Table 1 workloads, in paper order. `theta0` is `2π/TABLE1_R`.
pub fn table1_workloads(n: usize, seed: u64) -> Vec<(String, Vec<Point2>)> {
    let theta0 = core::f64::consts::TAU / TABLE1_R as f64;
    let mut out: Vec<(String, Vec<Point2>)> = Vec::new();
    out.push(("disk".into(), Disk::new(seed, n, 1.0).collect()));
    for (name, frac) in [
        ("0", 0.0),
        ("theta0/4", 0.25),
        ("theta0/3", 1.0 / 3.0),
        ("theta0/2", 0.5),
    ] {
        let rot = theta0 * frac;
        out.push((
            format!("square rot {name}"),
            streamgen::Rotate::new(Square::new(seed ^ 0x51, n, 1.0), rot).collect(),
        ));
    }
    for (name, frac) in [
        ("0", 0.0),
        ("theta0/4", 0.25),
        ("theta0/3", 1.0 / 3.0),
        ("theta0/2", 0.5),
    ] {
        let rot = theta0 * frac;
        out.push((
            format!("ellipse rot {name}"),
            Ellipse::new(seed ^ 0xe1, n, 16.0, rot).collect(),
        ));
    }
    out
}

/// The changing-distribution workloads (Table 1 part 4).
pub fn changing_workloads(n: usize, seed: u64) -> Vec<(String, Vec<Point2>)> {
    let theta0 = core::f64::consts::TAU / TABLE1_R as f64;
    [
        ("0", 0.0),
        ("theta0/4", 0.25),
        ("theta0/3", 1.0 / 3.0),
        ("theta0/2", 0.5),
    ]
    .into_iter()
    .map(|(name, frac)| {
        (
            format!("changing ellipse rot {name}"),
            Changing::new(seed ^ 0xc4, 2 * n, 16.0, theta0 * frac).collect(),
        )
    })
    .collect()
}

/// Runs the uniform(2r)-vs-adaptive(r) comparison on one workload.
pub fn compare_uniform_adaptive(points: &[Point2], r: u32) -> (RowMetrics, RowMetrics) {
    let warmup = points.len() / 100;
    let mut uni = NaiveUniformHull::new(2 * r);
    let probe_u = metrics::run_with_probe_warmup(&mut uni, points, warmup);
    let tri_u = metrics::triangle_stats(&metrics::naive_uniform_uncertainty_triangles(&uni));
    let left = RowMetrics::from_parts(tri_u, probe_u, uni.sample_size());

    let mut ada = FixedBudgetAdaptiveHull::new(r);
    let probe_a = metrics::run_with_probe_warmup(&mut ada, points, warmup);
    let tri_a = metrics::triangle_stats(&ada.uncertainty_triangles());
    let right = RowMetrics::from_parts(tri_a, probe_a, ada.sample_size());
    (left, right)
}

/// Runs the partial(train-then-freeze)-vs-adaptive comparison on a
/// two-phase workload (Table 1 part 4): the partial scheme trains on the
/// first half and freezes its directions for the second half.
pub fn compare_partial_adaptive(points: &[Point2], r: u32) -> (RowMetrics, RowMetrics) {
    let half = points.len() / 2;
    let warmup = points.len() / 100;

    // Partial: adaptive on the first half...
    let mut trainer = FixedBudgetAdaptiveHull::new(r);
    let mut probe = ProbeStats::default();
    let p1 = metrics::run_with_probe_warmup(&mut trainer, &points[..half], warmup);
    // ...then frozen directions on the second half.
    let mut frozen = FrozenHull::from_directions(trainer.directions());
    let p2 = metrics::run_with_probe(&mut frozen, &points[half..]);
    probe.total = p1.total + p2.total;
    probe.outside = p1.outside + p2.outside;
    probe.sum_distance = p1.sum_distance + p2.sum_distance;
    probe.max_distance = p1.max_distance.max(p2.max_distance);
    // Uncertainty triangles of the frozen hull: the (stale) trained
    // direction fan applied to the final extrema.
    let tri = frozen_triangle_stats(&frozen);
    let left = RowMetrics::from_parts(tri, probe, frozen.sample_size());

    // Fully adaptive over the whole stream.
    let mut ada = FixedBudgetAdaptiveHull::new(r);
    let probe_a = metrics::run_with_probe_warmup(&mut ada, points, warmup);
    let tri_a = metrics::triangle_stats(&ada.uncertainty_triangles());
    let right = RowMetrics::from_parts(tri_a, probe_a, ada.sample_size());
    (left, right)
}

/// Uncertainty statistics for a frozen hull: group its (direction-sorted)
/// extrema into ownership runs, then measure each hull edge's triangle.
fn frozen_triangle_stats(frozen: &FrozenHull) -> TriangleStats {
    use geom::UncertaintyTriangle;
    let n = frozen.direction_count();
    if n == 0 {
        return TriangleStats::default();
    }
    // Directions are stored in angular order by construction.
    let pairs: Vec<(geom::Vec2, Point2)> = (0..n)
        .filter_map(|i| match (frozen.direction(i), frozen.extremum(i)) {
            (Some(u), Some(e)) => Some((u, e)),
            _ => None,
        })
        .collect();
    if pairs.len() < 2 {
        return TriangleStats::default();
    }
    let mut tris: Vec<UncertaintyTriangle> = Vec::new();
    for i in 0..pairs.len() {
        let (u1, p1) = pairs[i];
        let (u2, p2) = pairs[(i + 1) % pairs.len()];
        if p1 == p2 {
            continue;
        }
        tris.push(UncertaintyTriangle::new(p1, p2, u1, u2));
    }
    metrics::triangle_stats(&tris)
}

/// Formats a Table-1-style block as aligned plain text.
pub fn format_table(title: &str, rows: &[Table1Row], left_name: &str, right_name: &str) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "## {title}");
    let _ = writeln!(
        s,
        "{:<28} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9} {:>8} {:>8} {:>5} {:>5}",
        "workload",
        format!("maxH {left_name}"),
        format!("maxH {right_name}"),
        format!("avgH {left_name}"),
        format!("avgH {right_name}"),
        format!("maxD {left_name}"),
        format!("maxD {right_name}"),
        format!("%out {left_name}"),
        format!("%out {right_name}"),
        format!("n {left_name}"),
        format!("n {right_name}"),
    );
    for row in rows {
        let _ = writeln!(
            s,
            "{:<28} {:>11.5} {:>11.5} {:>11.5} {:>11.5} {:>9.4} {:>9.4} {:>8.2} {:>8.2} {:>5} {:>5}",
            row.label,
            row.left.max_height,
            row.right.max_height,
            row.left.avg_height,
            row.right.avg_height,
            row.left.max_outside,
            row.right.max_outside,
            row.left.pct_outside,
            row.right.pct_outside,
            row.left.samples,
            row.right.samples,
        );
    }
    s
}

/// Final Hausdorff error of any summary against the exact hull of the
/// same stream. Takes a trait object so the whole harness works over
/// summaries chosen at runtime.
pub fn final_error(summary: &dyn HullSummary, points: &[Point2]) -> f64 {
    let mut exact = ExactHull::new();
    exact.insert_batch(points);
    metrics::hausdorff_error(summary.hull_ref(), exact.hull_ref())
}

/// Outcome of streaming one workload through one runtime-chosen summary.
#[derive(Clone, Debug)]
#[must_use = "a summary run carries the measured error and timing; dropping it discards the experiment"]
pub struct SummaryRun {
    /// The summary's reported name.
    pub name: &'static str,
    /// Final Hausdorff error against the exact hull of the stream.
    pub error: f64,
    /// The summary's own live error bound, when it has one. Soundness
    /// (`error <= error_bound`) is asserted by the conformance tests.
    pub error_bound: Option<f64>,
    /// Final sample size.
    pub samples: usize,
}

/// Streams `points` through a summary built from `builder` and measures
/// it against `truth` (the exact hull of the same stream, computed once
/// by the caller and shared across kinds and `r` values) — the generic,
/// builder-driven path used by `error_scaling` and the Criterion benches.
pub fn run_builder(
    builder: &SummaryBuilder,
    points: &[Point2],
    truth: &geom::ConvexPolygon,
) -> SummaryRun {
    let mut summary = builder.build();
    summary.insert_batch(points);
    SummaryRun {
        name: summary.name(),
        error: metrics::hausdorff_error(summary.hull_ref(), truth),
        error_bound: summary.error_bound(),
        samples: summary.sample_size(),
    }
}

/// Writes a string to `target/experiments/<name>` (creating directories)
/// and echoes the path.
pub fn write_output(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write experiment output");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_requested_sizes() {
        let w = table1_workloads(1000, 1);
        assert_eq!(w.len(), 9);
        for (name, pts) in &w {
            assert_eq!(pts.len(), 1000, "{name}");
        }
        let c = changing_workloads(500, 1);
        assert_eq!(c.len(), 4);
        for (_, pts) in &c {
            assert_eq!(pts.len(), 1000);
        }
    }

    #[test]
    fn compare_runs_end_to_end_small() {
        let pts: Vec<Point2> = Ellipse::new(3, 3000, 16.0, 0.05).collect();
        let (uni, ada) = compare_uniform_adaptive(&pts, 16);
        assert!(uni.samples <= 32 && ada.samples <= 33);
        assert!(uni.max_height > 0.0 && ada.max_height > 0.0);
        // The headline: adaptive no worse than uniform on its best-case
        // workload (rotated skinny ellipse).
        assert!(ada.max_height <= uni.max_height * 1.5);
    }

    #[test]
    fn run_builder_is_generic_over_kinds() {
        use adaptive_hull::SummaryKind;
        let pts: Vec<Point2> = Disk::new(9, 2000, 1.0).collect();
        let mut exact = ExactHull::new();
        exact.insert_batch(&pts);
        let truth = exact.hull();
        for &kind in &SummaryKind::ALL {
            let run = run_builder(&SummaryBuilder::new(kind).with_r(16), &pts, &truth);
            assert_eq!(run.name, kind.label());
            assert!(run.samples >= 1, "{kind}");
            if let Some(bound) = run.error_bound {
                assert!(
                    run.error <= bound + 1e-9,
                    "{kind}: error {} exceeds its own bound {bound}",
                    run.error
                );
            }
        }
    }

    #[test]
    fn table_formatting_is_stable() {
        let rows = vec![Table1Row {
            label: "disk".into(),
            left: RowMetrics {
                max_height: 1.0,
                ..Default::default()
            },
            right: RowMetrics {
                max_height: 2.0,
                ..Default::default()
            },
        }];
        let s = format_table("T", &rows, "uni", "ada");
        assert!(s.contains("disk"));
        assert!(s.contains("maxH uni"));
    }
}
