//! A minimal, dependency-free JSON reader for the bench tooling.
//!
//! The workspace is offline-vendored and keeps zero external runtime
//! dependencies, so the schema checker and throughput regression gate
//! (`check_schema` bin) parse their JSON with this module instead of
//! serde. It supports the full JSON grammar the bench writers emit
//! (objects, arrays, finite numbers, strings with basic escapes, bools,
//! null) and fails with positioned errors on anything malformed.

use core::fmt;
use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the bench outputs).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &'static str) -> JsonError {
    JsonError { offset, message }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, "unexpected character"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes.len() - *pos >= lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    let n: f64 = text.parse().map_err(|_| err(start, "bad number"))?;
    if !n.is_finite() {
        return Err(err(start, "non-finite number"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    _ => return Err(err(*pos, "unsupported escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole code point.
                let s =
                    core::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let ch = s.chars().next().ok_or(err(*pos, "unterminated string"))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_document_shape() {
        let doc = parse(
            r#"{
              "bench": "throughput", "n": 20000, "threads": [1, 2],
              "results": [
                {"workload": "interior", "backend": "exact",
                 "points_per_sec_batch": 1.23e7, "scaling_vs_1": null,
                 "ok": true}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("throughput"));
        assert_eq!(doc.get("n").unwrap().as_num(), Some(20000.0));
        let rows = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("points_per_sec_batch").unwrap().as_num(),
            Some(1.23e7)
        );
        assert_eq!(rows[0].get("scaling_vs_1"), Some(&Json::Null));
        assert_eq!(rows[0].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": }",
            "01x",
            "\"unterminated",
            "{} trailing",
            "nul",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parses_numbers_strings_and_nesting() {
        let v = parse(r#"[-1.5, 0, 2e-3, "a\nb", [[]], {"k": {"j": false}}]"#).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_num(), Some(-1.5));
        assert_eq!(items[2].as_num(), Some(0.002));
        assert_eq!(items[3].as_str(), Some("a\nb"));
        assert_eq!(
            items[5].get("k").unwrap().get("j"),
            Some(&Json::Bool(false))
        );
    }
}
